#!/usr/bin/env python3
"""Online capacity estimation on a lossy, interfered link.

Demonstrates the measurement pipeline of Section 5 of the paper:

1. a link with a prescribed channel loss rate carries broadcast probes
   while a neighbouring link blasts backlogged UDP traffic (collisions!);
2. the channel-loss estimator separates channel losses from collision
   losses using the sliding-window minimum curve;
3. Eq. (6) converts the estimated channel loss into a max-UDP-throughput
   estimate, which is compared against the ground truth (the throughput
   the link actually achieves when transmitting alone, backlogged) and
   against the Ad Hoc Probe packet-pair baseline.

Run with:  python examples/capacity_estimation_demo.py
"""

from __future__ import annotations

from repro.core import CapacityModel, estimate_channel_loss_rate
from repro.net.adhoc_probe import AdHocProbe
from repro.sim import MeshNetwork, carrier_sense_pair, measure_isolated, no_shadowing_propagation

CHANNEL_LOSS = 0.25          # prescribed ground-truth channel loss of the link
PROBING_PERIOD_S = 0.25
PROBING_WINDOW = 400


def main() -> None:
    topo = carrier_sense_pair()
    network = MeshNetwork(
        topo.positions,
        seed=3,
        propagation=no_shadowing_propagation(),
        data_rate_mbps=11,
        link_error_override={(0, 1): CHANNEL_LOSS},
    )
    measured_link = (0, 1)
    flow = network.add_udp_flow([0, 1], payload_bytes=1470)
    interferer = network.add_udp_flow([2, 3], payload_bytes=1470)

    # Ground truth: max UDP throughput of the link transmitting alone.
    truth = measure_isolated(network, flow, duration_s=3.0)
    print(f"ground-truth maxUDP throughput : {truth.throughput_bps / 1e6:.2f} Mb/s "
          f"(UDP loss rate {truth.loss_rate:.2f})")

    # Online phase: probes + interfering traffic + Ad Hoc Probe packets.
    network.enable_probing(period_s=PROBING_PERIOD_S)
    adhoc = AdHocProbe(network.sim, network.node(0), network.node(1), pair_interval_s=0.5)
    adhoc.start(num_pairs=120)
    interferer.start()
    network.run(PROBING_WINDOW * PROBING_PERIOD_S + 5.0)
    interferer.stop()

    probing = network.probing
    data_series = probing.loss_series(0, 1, "data", last_n=PROBING_WINDOW)
    ack_series = probing.loss_series(1, 0, "ack", last_n=PROBING_WINDOW)
    data_estimate = estimate_channel_loss_rate(data_series)
    ack_estimate = estimate_channel_loss_rate(ack_series)

    print(f"\nmeasured probe loss (DATA)     : {data_estimate.measured_loss_rate:.3f}")
    print(f"estimated channel loss (DATA)  : {data_estimate.channel_loss_rate:.3f} "
          f"(estimator case {data_estimate.case}, W*={data_estimate.selected_window})")
    print(f"estimated channel loss (ACK)   : {ack_estimate.channel_loss_rate:.3f}")

    capacity_model = CapacityModel(payload_bytes=1470, rate=network.link_rate(measured_link))
    p_link = 1 - (1 - data_estimate.channel_loss_rate) * (1 - ack_estimate.channel_loss_rate)
    online_capacity = capacity_model.max_udp_throughput_bps(p_link)
    adhoc_estimate = adhoc.capacity_estimate_bps() or 0.0

    print(f"\nonline capacity estimate (Eq.6): {online_capacity / 1e6:.2f} Mb/s")
    print(f"Ad Hoc Probe estimate          : {adhoc_estimate / 1e6:.2f} Mb/s")
    print(f"nominal (loss-free) throughput : {capacity_model.nominal_throughput_bps() / 1e6:.2f} Mb/s")
    print(
        "\nThe Eq.(6) estimate tracks the ground truth despite the interfering\n"
        "traffic, while Ad Hoc Probe reports something close to the nominal\n"
        "rate and over-estimates the lossy link (cf. Figure 11 of the paper)."
    )


if __name__ == "__main__":
    main()
