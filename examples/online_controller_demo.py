#!/usr/bin/env python3
"""The full online optimization loop on the 18-node testbed.

Builds a mixed-rate (1 / 11 Mb/s) multi-flow scenario on the synthetic
testbed, runs the probing/estimation/optimization/rate-control loop
periodically, and reports how the achieved throughputs track the
optimized targets over successive control cycles — the operational mode
of Section 6 of the paper.

Run with:  python examples/online_controller_demo.py
"""

from __future__ import annotations

from repro.analysis import jain_fairness_index
from repro.core import OnlineOptimizer, PROPORTIONAL_FAIR
from repro.sim.scenarios import random_multiflow_scenario

PROBE_WARMUP_S = 60.0
CYCLE_MEASURE_S = 15.0
NUM_CYCLES = 3


def main() -> None:
    scenario = random_multiflow_scenario(seed=7, num_flows=4, rate_mode="mixed", transport="udp")
    network = scenario.network
    print(f"scenario {scenario.name}")
    for route in scenario.routes:
        rates = [network.link_rate(link).name for link in route.links]
        print(f"  flow {route.flow_id}: {' -> '.join(map(str, route.path))}  ({', '.join(rates)})")

    network.enable_probing(period_s=0.5)
    print(f"\nwarming up the probing system for {PROBE_WARMUP_S:.0f} s of virtual time...")
    network.run(PROBE_WARMUP_S)

    controller = OnlineOptimizer(
        network, scenario.flows, utility=PROPORTIONAL_FAIR, probing_window=120
    )
    for flow in scenario.flows:
        flow.start()

    for cycle in range(1, NUM_CYCLES + 1):
        decision = controller.run_cycle()
        network.run(CYCLE_MEASURE_S)
        start, end = network.now - CYCLE_MEASURE_S + 3.0, network.now
        achieved = [flow.throughput_bps(start, end) for flow in scenario.flows]
        targets = [decision.target_outputs_bps[flow.flow_id] for flow in scenario.flows]
        print(f"\ncontrol cycle {cycle}:")
        for flow, target, got in zip(scenario.flows, targets, achieved):
            ratio = got / target if target > 0 else 1.0
            print(
                f"  flow {flow.flow_id}: target {target / 1e3:7.1f} kb/s, "
                f"achieved {got / 1e3:7.1f} kb/s ({100 * ratio:5.1f}%)"
            )
        print(
            f"  aggregate {sum(achieved) / 1e3:.1f} kb/s, "
            f"Jain fairness index {jain_fairness_index(achieved):.3f}, "
            f"{decision.region.num_extreme_points} extreme points in the model"
        )


if __name__ == "__main__":
    main()
