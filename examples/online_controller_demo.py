#!/usr/bin/env python3
"""The full online optimization loop on the 18-node testbed.

Declares a mixed-rate (1 / 11 Mb/s) multi-flow scenario on the synthetic
testbed and lets the :class:`repro.Experiment` runner drive the
probing/estimation/optimization/rate-control loop for several control
cycles — the operational mode of Section 6 of the paper.  A multi-seed
:class:`repro.BatchRunner` sweep of the same experiment follows, showing
how a whole evaluation matrix is enumerated from one spec — and then the
same sweep again through a :class:`repro.ResultCache`, where every cell
is a content-addressed lookup and no worker process is spawned.

Run with:  python examples/online_controller_demo.py
"""

from __future__ import annotations

import tempfile
import time

from repro import (
    BatchRunner,
    ControllerSpec,
    Experiment,
    ExperimentSpec,
    ProbingSpec,
    ResultCache,
    ScenarioSpec,
    seed_sweep,
)

SPEC = ExperimentSpec(
    scenario=ScenarioSpec(
        scenario="random_multiflow", seed=7, num_flows=4, rate_mode="mixed", transport="udp"
    ),
    probing=ProbingSpec(period_s=0.5, warmup_s=60.0),
    controller=ControllerSpec(alpha=1.0, probing_window=120),
    cycles=3,
    cycle_measure_s=15.0,
    settle_s=3.0,
    label="online-controller",
)


def main() -> None:
    print(f"experiment: {SPEC.describe()}")
    experiment = Experiment(SPEC)
    scenario = experiment.build()
    for flow in scenario.flows:
        rates = [scenario.network.link_rate(link).name for link in flow.links]
        print(f"  flow {flow.flow_id}: {' -> '.join(map(str, flow.path))}  ({', '.join(rates)})")

    print(f"\nwarming up the probing system for {SPEC.probing.warmup_s:.0f} s of virtual time...")
    result = experiment.run(scenario)

    for cycle in result.cycles:
        print(f"\ncontrol cycle {cycle.index + 1}:")
        for flow_id in result.flow_ids:
            target = cycle.target_bps[flow_id]
            got = cycle.achieved_bps[flow_id]
            ratio = got / target if target > 0 else 1.0
            print(
                f"  flow {flow_id}: target {target / 1e3:7.1f} kb/s, "
                f"achieved {got / 1e3:7.1f} kb/s ({100 * ratio:5.1f}%)"
            )
        extreme_points = (
            cycle.decision.region.num_extreme_points if cycle.decision is not None else 0
        )
        print(
            f"  aggregate {cycle.aggregate_bps / 1e3:.1f} kb/s, "
            f"utility {cycle.utility:.2f}, "
            f"{extreme_points} extreme points in the model"
        )

    # The same experiment as a 3-seed sweep: one spec, a whole matrix.
    # Attaching a ResultCache makes repeated sweeps content-addressed
    # lookups: the warm run below simulates nothing and spawns no workers.
    print("\nsweeping the same experiment across 3 scenario seeds...")
    with tempfile.TemporaryDirectory() as cache_dir:
        cache = ResultCache(cache_dir)
        sweep = seed_sweep(SPEC, [7, 8, 9])
        start = time.perf_counter()
        batch = BatchRunner(sweep, cache=cache).run()
        cold_s = time.perf_counter() - start
        print(batch.report("online-controller seed sweep").render())

        start = time.perf_counter()
        warm = BatchRunner(sweep, cache=cache).run()
        warm_s = time.perf_counter() - start
        assert warm.to_dicts() == batch.to_dicts()
        print(
            f"\nwarm re-sweep: {warm.cache_hits}/{len(warm)} cells from cache, "
            f"bit-identical, {cold_s:.1f} s -> {warm_s:.2f} s "
            f"({cold_s / max(warm_s, 1e-9):.0f}x)"
        )


if __name__ == "__main__":
    main()
