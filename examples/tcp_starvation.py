#!/usr/bin/env python3
"""TCP starvation at a mesh gateway, with and without rate control.

Reproduces the scenario of Figure 13 of the paper: a 1-hop and a 2-hop
TCP flow send upstream to a gateway.  Without rate control the 2-hop
flow starves because its ACKs collide with the 1-hop flow's data.  The
online optimizer with a proportional-fairness objective removes the
starvation at a modest cost in aggregate throughput; the
maximum-throughput objective reproduces the starvation (it is optimal to
starve the expensive flow).

Run with:  python examples/tcp_starvation.py
"""

from __future__ import annotations

from repro.analysis import jain_fairness_index
from repro.core import MAX_THROUGHPUT, OnlineOptimizer, PROPORTIONAL_FAIR
from repro.sim.scenarios import starvation_scenario

MEASURE_S = 25.0
PROBE_WARMUP_S = 60.0


def run_variant(label: str, utility=None, seed: int = 0) -> tuple[float, float]:
    scenario = starvation_scenario(seed=seed, data_rate_mbps=1)
    network = scenario.network
    if utility is not None:
        network.enable_probing(period_s=0.5)
        network.run(PROBE_WARMUP_S)
        controller = OnlineOptimizer(
            network, scenario.flows, utility=utility, probing_window=100
        )
        controller.run_cycle()
    scenario.two_hop.start()
    scenario.one_hop.start()
    network.run(MEASURE_S)
    start, end = network.now - (MEASURE_S - 5.0), network.now
    two_hop = scenario.two_hop.throughput_bps(start, end)
    one_hop = scenario.one_hop.throughput_bps(start, end)
    jfi = jain_fairness_index([two_hop, one_hop])
    print(
        f"{label:10s}  2-hop flow: {two_hop / 1e3:6.1f} kb/s   "
        f"1-hop flow: {one_hop / 1e3:6.1f} kb/s   total: {(two_hop + one_hop) / 1e3:6.1f} kb/s   "
        f"Jain index: {jfi:.2f}"
    )
    return two_hop, one_hop


def main() -> None:
    print("Upstream TCP starvation scenario (1 Mb/s links), cf. Figure 13\n")
    run_variant("TCP-noRC", utility=None)
    run_variant("TCP-Max", utility=MAX_THROUGHPUT)
    run_variant("TCP-Prop", utility=PROPORTIONAL_FAIR)
    print(
        "\nTCP-noRC and TCP-Max starve the 2-hop flow; TCP-Prop trades a little"
        "\naggregate throughput for a fair share, as in the paper."
    )


if __name__ == "__main__":
    main()
