#!/usr/bin/env python3
"""Quickstart: optimize two UDP flows on a small mesh.

Builds a three-node chain, lets the broadcast probing system measure the
links for a while, runs one cycle of the online optimizer (proportional
fairness) and verifies that the programmed rates are actually delivered.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import OnlineOptimizer, PROPORTIONAL_FAIR
from repro.sim import MeshNetwork, chain_topology, no_shadowing_propagation


def main() -> None:
    # 1. Build a small mesh: three nodes in a line, 11 Mb/s links.
    network = MeshNetwork(
        chain_topology(3, spacing_m=60.0),
        seed=1,
        propagation=no_shadowing_propagation(),
        data_rate_mbps=11,
    )

    # 2. Two UDP flows sharing the relay: a 2-hop flow and a 1-hop flow.
    two_hop = network.add_udp_flow([0, 1, 2])
    one_hop = network.add_udp_flow([1, 2])

    # 3. Let the network-layer broadcast probes measure the links.
    network.enable_probing(period_s=0.5)
    print("measuring links with broadcast probes (60 s of virtual time)...")
    network.run(60.0)

    # 4. One online optimization cycle: estimate capacities, build the
    #    conflict graph, maximize proportional-fair utility, program rates.
    controller = OnlineOptimizer(
        network, [two_hop, one_hop], utility=PROPORTIONAL_FAIR, probing_window=100
    )
    decision = controller.run_cycle()

    print("\nper-link online estimates:")
    for link, estimate in decision.link_estimates.items():
        print(
            f"  link {link}: channel loss {estimate.channel_loss:.3f}, "
            f"capacity {estimate.capacity_bps / 1e6:.2f} Mb/s"
        )
    print("\noptimized output rates:")
    for flow in (two_hop, one_hop):
        target = decision.target_outputs_bps[flow.flow_id]
        print(f"  flow {flow.flow_id} ({' -> '.join(map(str, flow.path))}): {target / 1e3:.0f} kb/s")

    # 5. Start the flows at the programmed rates and check what they achieve.
    two_hop.start()
    one_hop.start()
    network.run(10.0)
    start, end = network.now - 8.0, network.now
    print("\nachieved throughput:")
    for flow in (two_hop, one_hop):
        achieved = flow.throughput_bps(start, end)
        target = decision.target_outputs_bps[flow.flow_id]
        print(
            f"  flow {flow.flow_id}: {achieved / 1e3:.0f} kb/s "
            f"({100 * achieved / max(target, 1):.0f}% of the optimized rate)"
        )


if __name__ == "__main__":
    main()
