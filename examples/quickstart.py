#!/usr/bin/env python3
"""Quickstart: optimize two UDP flows on a small mesh, declaratively.

Declares a three-node chain scenario with a 2-hop and a 1-hop UDP flow,
runs it through the :class:`repro.Experiment` runner (probe warmup, one
online optimization cycle, measurement) and prints the typed results:
per-link online estimates, optimized rates and achieved throughput.
Finishes by re-running the identical spec through a
:class:`repro.ResultCache`, where the second run is a content-addressed
lookup instead of a simulation.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
import time

from repro import (
    ControllerSpec,
    Experiment,
    ExperimentSpec,
    FlowSpec,
    ProbingSpec,
    ResultCache,
    ScenarioSpec,
)


def main() -> None:
    # 1.-3. Declare the whole experiment: a three-node chain at 11 Mb/s,
    #    two UDP flows sharing the relay, 60 s of probe warmup and one
    #    proportional-fair optimization cycle.
    spec = ExperimentSpec(
        scenario=ScenarioSpec(
            scenario="chain",
            seed=1,
            flows=(FlowSpec("udp", (0, 1, 2)), FlowSpec("udp", (1, 2))),
        ),
        probing=ProbingSpec(period_s=0.5, warmup_s=60.0),
        controller=ControllerSpec(alpha=1.0, probing_window=100),
        cycles=1,
        cycle_measure_s=10.0,
        settle_s=2.0,
        label="quickstart",
    )

    # 4. Run it: estimate capacities, build the conflict graph, maximize
    #    proportional-fair utility, program rates, measure.
    print("measuring links with broadcast probes (60 s of virtual time)...")
    result = Experiment(spec).run()
    cycle = result.final_cycle
    decision = cycle.decision

    print("\nper-link online estimates:")
    for link, estimate in decision.link_estimates.items():
        print(
            f"  link {link}: channel loss {estimate.channel_loss:.3f}, "
            f"capacity {estimate.capacity_bps / 1e6:.2f} Mb/s"
        )
    print("\noptimized output rates:")
    for flow_id in result.flow_ids:
        path = result.flow_paths[flow_id]
        target = cycle.target_bps[flow_id]
        print(f"  flow {flow_id} ({' -> '.join(map(str, path))}): {target / 1e3:.0f} kb/s")

    # 5. The runner already measured what the programmed rates achieve.
    print("\nachieved throughput:")
    for flow_id in result.flow_ids:
        achieved = cycle.achieved_bps[flow_id]
        target = cycle.target_bps[flow_id]
        print(
            f"  flow {flow_id}: {achieved / 1e3:.0f} kb/s "
            f"({100 * achieved / max(target, 1):.0f}% of the optimized rate)"
        )
    print(
        f"\naggregate {result.aggregate_bps / 1e3:.0f} kb/s, "
        f"Jain fairness index {result.jain_index:.3f}, "
        f"{result.events_processed} simulator events in {result.wall_time_s:.2f} s"
    )

    # 6. Results are content-addressed by their spec: store the run we
    #    already have and re-running the same experiment becomes a cache
    #    lookup instead of a simulation (set REPRO_CACHE_DIR to enable
    #    this everywhere by default).
    with tempfile.TemporaryDirectory() as cache_dir:
        cache = ResultCache(cache_dir)
        cache.put(result)
        start = time.perf_counter()
        cached = Experiment(spec, keep_decisions=False).run(cache=cache)
        lookup_s = time.perf_counter() - start
        assert cached.to_dict(include_runtime=False) == result.to_dict(
            include_runtime=False
        )
        print(
            f"\ncached re-run: bit-identical result in {1e3 * lookup_s:.1f} ms "
            f"(cache hit rate {cache.stats.hit_rate:.0%})"
        )


if __name__ == "__main__":
    main()
