"""Figure 3 — CDF of Link Interference Ratios of random link pairs.

The paper measures LIR for 141 link pairs at 1 and 11 Mb/s and observes
that most values are either below 0.7 (clearly interfering) or above
0.95 (effectively independent), which motivates the binary LIR model.
This benchmark measures random link pairs on the simulated substrate and
reports the same distribution summary.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ExperimentReport, cdf_fraction_below, format_cdf_summary

from _common import measure_random_pairs
from conftest import run_once

PAIRS_PER_RATE = 14
MEASURE_S = 0.8


def _collect():
    samples = {}
    for rate in (1, 11):
        samples[rate] = measure_random_pairs(
            PAIRS_PER_RATE, rate_mbps=rate, seed=rate, duration_s=MEASURE_S
        )
    return samples


def test_fig03_lir_distribution(benchmark):
    samples = run_once(benchmark, _collect)
    report = ExperimentReport(
        "Figure 3", "CDF of LIRs of random link pairs at 1 and 11 Mb/s"
    )
    for rate, pairs in samples.items():
        lirs = np.array([p.lir for p in pairs])
        assert lirs.size >= 8, "not enough usable link pairs were measured"
        report.add(format_cdf_summary(f"LIR @ {rate} Mb/s", lirs))
        below_07 = cdf_fraction_below(lirs, 0.7)
        above_095 = 1.0 - cdf_fraction_below(lirs, 0.95)
        middle = 1.0 - below_07 - above_095
        report.add(
            f"  {rate} Mb/s: {below_07:.0%} of pairs have LIR<0.7, "
            f"{above_095:.0%} have LIR>0.95, {middle:.0%} in between"
        )
        # Paper's observation: the distribution is bimodal — the middle band
        # (non-binary interference) is the minority.
        assert middle <= 0.5
    report.add_comparison(
        "shape", "bimodal: most pairs <0.7 or >0.95", "see per-rate lines above"
    )
    report.emit()
