"""Shared configuration for the benchmark harness.

Every module in this directory regenerates one table or figure of the
paper's evaluation.  Heavy simulations run exactly once per benchmark
(``rounds=1``); the printed ``ExperimentReport`` blocks are what ends up
in ``bench_output.txt`` and in EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


#: Cold/warm wall clocks of every figure benchmark that went through
#: :func:`run_cold_then_warm`, keyed by benchmarked test name.  Collected
#: here (the one choke point that times figure sweeps) so that
#: ``test_sim_core.py`` — which sorts after the ``test_fig*`` modules —
#: can fold the session's figure timings into ``BENCH_sim.json``.
FIGURE_WALL_CLOCKS: dict[str, dict[str, float]] = {}


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


def run_cold_then_warm(benchmark, func, cache):
    """Benchmark ``func`` once cold (populating ``cache``), re-run it warm,
    and record the cache speedup in the benchmark's ``extra_info``.

    The cold run is what pytest-benchmark times (so figure timings stay
    comparable with earlier BENCH_*.json records); the warm run re-executes
    the identical sweep against the now-populated cache.  Returns
    ``(cold, warm, cold_wall_s, warm_wall_s)`` so callers can assert the
    two runs are bit-identical.
    """
    import time

    start = time.perf_counter()
    cold = run_once(benchmark, func)
    cold_wall_s = time.perf_counter() - start
    start = time.perf_counter()
    warm = func()
    warm_wall_s = time.perf_counter() - start
    FIGURE_WALL_CLOCKS[benchmark.name] = {
        "cold_wall_s": round(cold_wall_s, 3),
        "warm_wall_s": round(warm_wall_s, 3),
    }
    benchmark.extra_info["result_cache"] = {
        "cold_wall_s": round(cold_wall_s, 3),
        "warm_wall_s": round(warm_wall_s, 3),
        "warm_speedup": round(cold_wall_s / max(warm_wall_s, 1e-9), 1),
        **{k: round(v, 3) if isinstance(v, float) else v
           for k, v in cache.stats.as_dict().items()},
    }
    return cold, warm, cold_wall_s, warm_wall_s


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Re-print every emitted paper-vs-measured report after the run.

    Per-test stdout is captured by pytest; this hook makes the experiment
    reports part of the terminal summary so ``bench_output.txt`` contains
    them alongside the benchmark timings.
    """
    from repro.analysis.reporting import drain_emitted_reports

    reports = drain_emitted_reports()
    if not reports:
        return
    terminalreporter.write_sep("=", "paper vs measured reports")
    for report in reports:
        terminalreporter.write_line("")
        terminalreporter.write_line(report.render())
