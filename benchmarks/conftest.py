"""Shared configuration for the benchmark harness.

Every module in this directory regenerates one table or figure of the
paper's evaluation.  Heavy simulations run exactly once per benchmark
(``rounds=1``); the printed ``ExperimentReport`` blocks are what ends up
in ``bench_output.txt`` and in EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Re-print every emitted paper-vs-measured report after the run.

    Per-test stdout is captured by pytest; this hook makes the experiment
    reports part of the terminal summary so ``bench_output.txt`` contains
    them alongside the benchmark timings.
    """
    from repro.analysis.reporting import drain_emitted_reports

    reports = drain_emitted_reports()
    if not reports:
        return
    terminalreporter.write_sep("=", "paper vs measured reports")
    for report in reports:
        terminalreporter.write_line("")
        terminalreporter.write_line(report.render())
