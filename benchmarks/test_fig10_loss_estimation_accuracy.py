"""Figure 10 — accuracy of the channel-loss estimator across many links.

Links with prescribed (known) channel loss rates carry probes while
backlogged interfering traffic adds collision losses; the estimator's
output is compared against the ground truth.  The paper reports an error
below 5% for ~70% of the runs, an overall RMSE of ~0.05 for S=1280
probes, and only slightly worse accuracy as the probing window shrinks
to ~200 probes.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ExperimentReport, cdf_fraction_below, format_table, rmse
from repro.core import estimate_channel_loss_rate
from repro.sim import MeshNetwork, no_shadowing_propagation
from repro.sim.topology import grid_topology

from conftest import run_once

#: Ground-truth channel loss prescribed on each measured link.
TRUE_LOSSES = [0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50]
PROBE_PERIOD_S = 0.1
FULL_WINDOW = 400
WINDOWS = [100, 200, 400]


def _collect():
    # A 4x4 grid: measured links are horizontal first-row links (0->1,
    # 1->2, ...), every other row carries backlogged interfering traffic.
    positions = grid_topology(4, 4, spacing_m=55.0)
    overrides = {}
    measured_links = []
    pairs = [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7), (8, 9), (9, 10)]
    for link, loss in zip(pairs, TRUE_LOSSES):
        overrides[link] = loss
        measured_links.append((link, loss))
    network = MeshNetwork(
        positions,
        seed=17,
        propagation=no_shadowing_propagation(),
        data_rate_mbps=11,
        link_error_override=overrides,
    )
    interferers = [network.add_udp_flow(path, payload_bytes=1470) for path in ([12, 13], [14, 15])]
    network.enable_probing(period_s=PROBE_PERIOD_S)
    for flow in interferers:
        flow.start()
    network.run(FULL_WINDOW * PROBE_PERIOD_S + 5.0)
    series = {
        link: network.probing.loss_series(link[0], link[1], "data", last_n=FULL_WINDOW)
        for link, _ in measured_links
    }
    return measured_links, series


def test_fig10_estimation_accuracy(benchmark):
    measured_links, series = run_once(benchmark, _collect)
    report = ExperimentReport("Figure 10", "channel-loss estimation accuracy vs probing window")
    rows = []
    errors_by_window: dict[int, list[float]] = {w: [] for w in WINDOWS}
    truths, estimates = [], []
    for (link, truth) in measured_links:
        full = series[link]
        estimate = estimate_channel_loss_rate(full)
        truths.append(truth)
        estimates.append(estimate.channel_loss_rate)
        rows.append([str(link), truth, estimate.measured_loss_rate, estimate.channel_loss_rate, estimate.case])
        for window in WINDOWS:
            sliced = full[-window:]
            errors_by_window[window].append(
                abs(estimate_channel_loss_rate(sliced).channel_loss_rate - truth)
            )
    report.add(format_table(["link", "true p_ch", "measured p", "estimated p_ch", "case"], rows))
    overall_rmse = rmse(estimates, truths)
    abs_errors = np.abs(np.array(estimates) - np.array(truths))
    within_5pct = 1.0 - cdf_fraction_below(-abs_errors, -0.05)
    report.add_comparison("(a) RMSE at the full window", "0.0497", f"{overall_rmse:.3f}")
    report.add_comparison("(a) runs with error below 5%", "~70%", f"{float(np.mean(abs_errors <= 0.05)):.0%}")
    rmse_rows = [[w, float(np.sqrt(np.mean(np.array(errors_by_window[w]) ** 2)))] for w in WINDOWS]
    report.add(format_table(["window S", "RMSE"], rmse_rows, title="(b) RMSE vs probing window size"))
    report.emit()
    del within_5pct
    # Shape: accuracy within a few percent on average, and shrinking the
    # window does not blow the error up.
    assert overall_rmse < 0.12
    assert rmse_rows[0][1] < 0.18
