"""Figure 6 / Section 4.4 — expected FP/FN error of the binary LIR model
as a function of the threshold, computed over a measured LIR distribution.

The paper derives the error geometrically (areas A1/A2 of Figure 6) and
reports an expected FP error of ~2% and FN error of ~13.3% at the chosen
threshold of 0.95 for its testbed's LIR distribution.
"""

from __future__ import annotations


from repro.analysis import ExperimentReport, format_table
from repro.core import expected_errors, threshold_sweep

from _common import measure_random_pairs
from conftest import run_once

PAIRS_PER_RATE = 10
MEASURE_S = 0.8
THRESHOLDS = [0.7, 0.8, 0.9, 0.95, 0.99]


def _collect_samples():
    samples = []
    for rate in (1, 11):
        for pair in measure_random_pairs(PAIRS_PER_RATE, rate, seed=100 + rate, duration_s=MEASURE_S):
            samples.append(pair.as_sample())
    return samples


def test_fig06_expected_errors_vs_threshold(benchmark):
    samples = run_once(benchmark, _collect_samples)
    assert len(samples) >= 12
    sweep = threshold_sweep(samples, THRESHOLDS)
    at_paper_threshold = expected_errors(samples, 0.95)
    report = ExperimentReport(
        "Figure 6 / Sec. 4.4", "expected FP/FN error of the binary LIR model vs threshold"
    )
    report.add(
        format_table(
            ["threshold", "E[FP]", "E[FN]", "classified interfering"],
            [
                [e.threshold, e.expected_false_positive, e.expected_false_negative,
                 f"{e.num_classified_interfering}/{e.num_samples}"]
                for e in sweep
            ],
        )
    )
    report.add_comparison("E[FP] at threshold 0.95", "~2%", f"{at_paper_threshold.expected_false_positive:.1%}")
    report.add_comparison("E[FN] at threshold 0.95", "~13.3%", f"{at_paper_threshold.expected_false_negative:.1%}")
    report.emit()
    # Shape: FP decreases and FN increases with the threshold; at 0.95 the
    # FP error is small.
    fps = [e.expected_false_positive for e in sweep]
    fns = [e.expected_false_negative for e in sweep]
    assert all(b <= a + 1e-9 for a, b in zip(fps, fps[1:]))
    assert all(b >= a - 1e-9 for a, b in zip(fns, fns[1:]))
    assert at_paper_threshold.expected_false_positive < 0.10
