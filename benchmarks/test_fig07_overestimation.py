"""Figure 7 — network validation: estimated vs achieved throughput.

Multi-flow ETT-routed configurations on the testbed are driven at the
proportionally fair rates computed from the online model; the benchmark
reports how the achieved throughputs compare with the estimates (the
paper: most points on y=x, maximum error 38%, only a handful of points
below y=0.8x).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ExperimentReport, format_cdf_summary
from repro.core import OnlineOptimizer, PROPORTIONAL_FAIR
from repro.sim.scenarios import random_multiflow_scenario

from conftest import run_once

SCENARIOS = [
    dict(seed=7, num_flows=4, rate_mode="11"),
    dict(seed=3, num_flows=4, rate_mode="mixed"),
    dict(seed=11, num_flows=3, rate_mode="mixed"),
]
PROBE_WARMUP_S = 50.0
MEASURE_S = 10.0


def run_validation_scenario(spec, scale: float = 1.0, utility=PROPORTIONAL_FAIR):
    """Run one configuration and return (estimated, achieved) per flow."""
    scenario = random_multiflow_scenario(transport="udp", **spec)
    network = scenario.network
    network.enable_probing(period_s=0.5)
    network.run(PROBE_WARMUP_S)
    controller = OnlineOptimizer(network, scenario.flows, utility=utility, probing_window=90)
    decision = controller.optimize()
    estimated = []
    achieved = []
    for flow in scenario.flows:
        target = decision.target_outputs_bps[flow.flow_id] * scale
        loss = decision.path_losses[flow.flow_id]
        flow.source.set_rate(target / max(1.0 - loss, 1e-6))
        estimated.append(target)
        flow.start()
    network.run(MEASURE_S)
    start, end = network.now - MEASURE_S + 2.0, network.now
    for flow in scenario.flows:
        achieved.append(flow.throughput_bps(start, end))
        flow.stop()
    return np.array(estimated), np.array(achieved)


def _run_all():
    points = []
    for spec in SCENARIOS:
        estimated, achieved = run_validation_scenario(spec)
        points.extend(zip(estimated, achieved))
    return points


def test_fig07_overestimation_scatter(benchmark):
    points = run_once(benchmark, _run_all)
    estimated = np.array([p[0] for p in points])
    achieved = np.array([p[1] for p in points])
    ratios = achieved / np.maximum(estimated, 1.0)
    report = ExperimentReport("Figure 7", "estimated vs achieved flow throughput (over-estimation)")
    for est, got in points:
        report.add(f"  estimated {est/1e3:8.1f} kb/s   achieved {got/1e3:8.1f} kb/s   ratio {got/max(est,1):.2f}")
    report.add(format_cdf_summary("achieved/estimated", ratios))
    fraction_above_08 = float(np.mean(ratios >= 0.8))
    report.add_comparison(
        "points at or above y=0.8x", "all but ~10 of the tested points", f"{fraction_above_08:.0%}"
    )
    report.emit()
    # Shape: the majority of flows achieve at least 80% of the estimate and
    # the median is close to the y=x line.
    assert fraction_above_08 >= 0.5
    assert float(np.median(ratios)) >= 0.7
