"""Figure 13 — two-flow upstream TCP starvation, with and without rate
control.

A 1-hop and a 2-hop TCP flow send upstream to a gateway at 1 Mb/s.  The
paper shows: TCP-noRC and TCP-Max achieve (near-)maximum aggregate
throughput but starve the 2-hop flow; TCP-Prop lifts the starving flow
at some cost in aggregate throughput; rate control also stabilises both
flows.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ExperimentReport, format_table, jain_fairness_index
from repro.core import MAX_THROUGHPUT, OnlineOptimizer, PROPORTIONAL_FAIR
from repro.sim.scenarios import starvation_scenario

from conftest import run_once

PROBE_WARMUP_S = 50.0
MEASURE_S = 20.0
RUNS_PER_VARIANT = 2


def _run_variant(utility, seed):
    scenario = starvation_scenario(seed=seed, data_rate_mbps=1)
    network = scenario.network
    if utility is not None:
        network.enable_probing(period_s=0.5)
        network.run(PROBE_WARMUP_S)
        controller = OnlineOptimizer(
            network, scenario.flows, utility=utility, probing_window=90
        )
        controller.run_cycle()
    scenario.two_hop.start()
    scenario.one_hop.start()
    network.run(MEASURE_S)
    start, end = network.now - (MEASURE_S - 5.0), network.now
    return (
        scenario.two_hop.throughput_bps(start, end),
        scenario.one_hop.throughput_bps(start, end),
    )


def _run_all():
    variants = {"TCP-noRC": None, "TCP-Max": MAX_THROUGHPUT, "TCP-Prop": PROPORTIONAL_FAIR}
    results = {}
    for name, utility in variants.items():
        runs = [_run_variant(utility, seed) for seed in range(RUNS_PER_VARIANT)]
        results[name] = runs
    return results


def test_fig13_tcp_starvation(benchmark):
    results = run_once(benchmark, _run_all)
    report = ExperimentReport("Figure 13", "upstream TCP starvation with and without rate control")
    rows = []
    summary = {}
    for name, runs in results.items():
        two_hop = float(np.mean([r[0] for r in runs]))
        one_hop = float(np.mean([r[1] for r in runs]))
        total = two_hop + one_hop
        jfi = jain_fairness_index([two_hop, one_hop])
        summary[name] = dict(two_hop=two_hop, one_hop=one_hop, total=total, jfi=jfi)
        rows.append([name, two_hop / 1e3, one_hop / 1e3, total / 1e3, jfi])
    report.add(format_table(["variant", "2-hop kb/s", "1-hop kb/s", "total kb/s", "Jain index"], rows))
    report.add_comparison(
        "TCP-noRC / TCP-Max starve the 2-hop flow", "2-hop flow near zero",
        f"noRC 2-hop = {summary['TCP-noRC']['two_hop']/1e3:.1f} kb/s",
    )
    report.add_comparison(
        "TCP-Prop lifts the starving flow", "2-hop flow gets a substantial share",
        f"Prop 2-hop = {summary['TCP-Prop']['two_hop']/1e3:.1f} kb/s",
    )
    report.emit()
    # Shape assertions.
    assert summary["TCP-noRC"]["two_hop"] < 0.15 * summary["TCP-noRC"]["one_hop"]
    assert summary["TCP-Prop"]["two_hop"] > 3.0 * summary["TCP-noRC"]["two_hop"]
    assert summary["TCP-Prop"]["jfi"] > summary["TCP-noRC"]["jfi"]
    assert summary["TCP-Max"]["total"] > 0.75 * summary["TCP-noRC"]["total"]
