"""Figure 13 — two-flow upstream TCP starvation, with and without rate
control.

A 1-hop and a 2-hop TCP flow send upstream to a gateway at 1 Mb/s.  The
paper shows: TCP-noRC and TCP-Max achieve (near-)maximum aggregate
throughput but starve the 2-hop flow; TCP-Prop lifts the starving flow
at some cost in aggregate throughput; rate control also stabilises both
flows.

The three variants are declared as :class:`ExperimentSpec`s over the
registered ``starvation`` scenario and executed by the batch runner —
twice: once cold through a fresh :class:`ResultCache` and once warm, so
the benchmark records the cache hit-rate and the warm-vs-cold wall
clock alongside the figure itself.
"""

from __future__ import annotations

import numpy as np

from repro import (
    BatchRunner,
    ControllerSpec,
    ExperimentSpec,
    ProbingSpec,
    ResultCache,
    ScenarioSpec,
)
from repro.analysis import ExperimentReport, format_table, jain_fairness_index

from conftest import run_cold_then_warm

PROBE_WARMUP_S = 50.0
MEASURE_S = 20.0
RUNS_PER_VARIANT = 2

VARIANTS = {
    "TCP-noRC": ControllerSpec(enabled=False),
    "TCP-Max": ControllerSpec(alpha=0.0, probing_window=90),
    "TCP-Prop": ControllerSpec(alpha=1.0, probing_window=90),
}


def _spec(name: str, controller: ControllerSpec, seed: int) -> ExperimentSpec:
    return ExperimentSpec(
        scenario=ScenarioSpec(scenario="starvation", seed=seed, data_rate_mbps=1),
        probing=ProbingSpec(warmup_s=PROBE_WARMUP_S),
        controller=controller,
        cycles=1,
        cycle_measure_s=MEASURE_S,
        settle_s=5.0,
        label=name,
    )


def _run_all(cache):
    specs = [
        _spec(name, controller, seed)
        for name, controller in VARIANTS.items()
        for seed in range(RUNS_PER_VARIANT)
    ]
    # The serial backend is pinned so figure timings stay comparable
    # across hosts and with earlier BENCH_*.json records.
    batch = BatchRunner(specs, backend="serial", cache=cache).run()
    results: dict[str, list[tuple[float, float]]] = {}
    for spec, result in zip(specs, batch):
        two_hop, one_hop = result.meta["two_hop"], result.meta["one_hop"]
        throughputs = result.flow_throughputs_bps
        results.setdefault(spec.label, []).append(
            (throughputs[two_hop], throughputs[one_hop])
        )
    return results, batch


def test_fig13_tcp_starvation(benchmark, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cold, warm, cold_s, warm_s = run_cold_then_warm(
        benchmark, lambda: _run_all(cache), cache
    )
    results, cold_batch = cold
    _, warm_batch = warm
    # A warm sweep is served entirely from the cache, bit-identically.
    assert warm_batch.cache_hits == len(warm_batch)
    assert warm_batch.to_dicts() == cold_batch.to_dicts()
    report = ExperimentReport("Figure 13", "upstream TCP starvation with and without rate control")
    report.add(
        f"result cache: cold {cold_s:.1f} s -> warm {warm_s:.2f} s "
        f"({cold_s / max(warm_s, 1e-9):.0f}x), "
        f"warm hit rate {warm_batch.cache_hit_rate:.0%} of {len(warm_batch)} cells"
    )
    report.add(
        f"planner: {warm_batch.backend} backend, cold executed "
        f"{cold_batch.planner.executed}/{cold_batch.planner.unique} unique cells "
        f"of {cold_batch.planner.total} submitted, "
        f"warm executed {warm_batch.planner.executed}"
    )
    # The planner never dispatches a cache-resolved (or duplicated) cell.
    assert warm_batch.planner.executed == 0
    rows = []
    summary = {}
    for name, runs in results.items():
        two_hop = float(np.mean([r[0] for r in runs]))
        one_hop = float(np.mean([r[1] for r in runs]))
        total = two_hop + one_hop
        jfi = jain_fairness_index([two_hop, one_hop])
        summary[name] = dict(two_hop=two_hop, one_hop=one_hop, total=total, jfi=jfi)
        rows.append([name, two_hop / 1e3, one_hop / 1e3, total / 1e3, jfi])
    report.add(format_table(["variant", "2-hop kb/s", "1-hop kb/s", "total kb/s", "Jain index"], rows))
    report.add_comparison(
        "TCP-noRC / TCP-Max starve the 2-hop flow", "2-hop flow near zero",
        f"noRC 2-hop = {summary['TCP-noRC']['two_hop']/1e3:.1f} kb/s",
    )
    report.add_comparison(
        "TCP-Prop lifts the starving flow", "2-hop flow gets a substantial share",
        f"Prop 2-hop = {summary['TCP-Prop']['two_hop']/1e3:.1f} kb/s",
    )
    report.emit()
    # Shape assertions.
    assert summary["TCP-noRC"]["two_hop"] < 0.15 * summary["TCP-noRC"]["one_hop"]
    assert summary["TCP-Prop"]["two_hop"] > 3.0 * summary["TCP-noRC"]["two_hop"]
    assert summary["TCP-Prop"]["jfi"] > summary["TCP-noRC"]["jfi"]
    assert summary["TCP-Max"]["total"] > 0.75 * summary["TCP-noRC"]["total"]
