"""Figure 9 — the two operating cases of the channel-loss estimator.

Case 1: losses are (mostly) uniform channel losses, the sliding-minimum
curve reaches the measured loss rate quickly and the estimator returns
the measured rate.  Case 2: an interfering transmitter adds bursty
collision losses, the curve saturates well below the measured rate and
the log-fit knee recovers the channel-only component.
"""

from __future__ import annotations

from repro.analysis import ExperimentReport
from repro.core import estimate_channel_loss_rate
from repro.sim import MeshNetwork, information_asymmetry_pair, no_shadowing_propagation
from repro.sim.topology import reduced_carrier_sense_radio

from conftest import run_once

CHANNEL_LOSS = 0.12
PROBE_PERIOD_S = 0.1
WINDOW = 400


def _collect_series():
    # IA layout with a reduced carrier-sense range: the interfering
    # transmitter (node 2) is hidden from the probing sender (node 0), so
    # its traffic collides with probes at receiver 1 — the collision-burst
    # regime the estimator must filter out.
    topo = information_asymmetry_pair(link1_len_m=65.0, link2_len_m=50.0, tx_gap_m=185.0)
    network = MeshNetwork(
        topo.positions,
        seed=9,
        radio=reduced_carrier_sense_radio(11),
        propagation=no_shadowing_propagation(),
        data_rate_mbps=11,
        link_error_override={(0, 1): CHANNEL_LOSS},
    )
    interferer = network.add_udp_flow([2, 3], payload_bytes=1470)
    network.enable_probing(period_s=PROBE_PERIOD_S)

    # Phase 1: no interference -> uniform channel losses only.
    network.run(WINDOW * PROBE_PERIOD_S + 2.0)
    clean_series = network.probing.loss_series(0, 1, "data", last_n=WINDOW)

    # Phase 2: the hidden interferer transmits in bursts (an on/off
    # backlogged source), adding bursty collision losses on top of the
    # same channel loss process — the pattern the estimator must filter.
    burst_cycles = 2
    on_s = 0.3 * WINDOW * PROBE_PERIOD_S / burst_cycles
    off_s = 0.7 * WINDOW * PROBE_PERIOD_S / burst_cycles
    for _ in range(burst_cycles):
        interferer.start()
        network.run(on_s)
        interferer.stop()
        network.run(off_s)
    network.run(2.0)
    interfered_series = network.probing.loss_series(0, 1, "data", last_n=WINDOW)
    return clean_series, interfered_series


def test_fig09_estimator_cases(benchmark):
    clean_series, interfered_series = run_once(benchmark, _collect_series)
    clean = estimate_channel_loss_rate(clean_series)
    interfered = estimate_channel_loss_rate(interfered_series)
    report = ExperimentReport("Figure 9", "channel-loss estimator: the two operating cases")
    report.add(
        f"(a) no interference : measured p={clean.measured_loss_rate:.3f}, "
        f"estimate p_ch={clean.channel_loss_rate:.3f} (case {clean.case}, W*={clean.selected_window}), "
        f"ground truth {CHANNEL_LOSS:.3f}"
    )
    report.add(
        f"(b) with interference: measured p={interfered.measured_loss_rate:.3f}, "
        f"estimate p_ch={interfered.channel_loss_rate:.3f} (case {interfered.case}, "
        f"W*={interfered.selected_window}), ground truth {CHANNEL_LOSS:.3f}"
    )
    report.add_comparison(
        "estimator filters collisions out",
        "p_ch(W*) well below measured p under interference",
        f"{interfered.channel_loss_rate:.3f} vs {interfered.measured_loss_rate:.3f}",
    )
    report.emit()
    # Shape: without interference the estimate tracks the ground truth;
    # with interference the measured rate inflates but the estimate stays
    # near the channel-only loss.
    assert abs(clean.channel_loss_rate - CHANNEL_LOSS) < 0.1
    assert interfered.measured_loss_rate > clean.measured_loss_rate + 0.05
    assert interfered.channel_loss_rate < interfered.measured_loss_rate
    assert abs(interfered.channel_loss_rate - CHANNEL_LOSS) < 0.2
