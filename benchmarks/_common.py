"""Shared measurement helpers for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.lir_error import PairSample
from repro.sim import MeshNetwork, no_shadowing_propagation, random_link_pair
from repro.sim.measurement import PairMeasurement, measure_pair
from repro.sim.topology import LinkPairTopology, classify_pair


@dataclass
class MeasuredPair:
    """One measured link pair plus its topology class and data rate."""

    topology_class: str
    rate_mbps: float
    measurement: PairMeasurement

    @property
    def lir(self) -> float:
        return self.measurement.lir

    def as_sample(self) -> PairSample:
        m = self.measurement
        return PairSample(c11=m.c11, c22=m.c22, c31=m.c31, c32=m.c32)


def build_pair_network(
    topology: LinkPairTopology, rate_mbps: float, seed: int, **kwargs
) -> MeshNetwork:
    """A deterministic two-link network for a given pair topology."""
    return MeshNetwork(
        topology.positions,
        seed=seed,
        propagation=no_shadowing_propagation(),
        data_rate_mbps=rate_mbps,
        **kwargs,
    )


def measure_pair_topology(
    topology: LinkPairTopology,
    rate_mbps: float,
    seed: int = 1,
    duration_s: float = 1.0,
    rate2_mbps: float | None = None,
) -> MeasuredPair:
    """Run the two-phase pair measurement on one topology."""
    network = build_pair_network(topology, rate_mbps, seed)
    if rate2_mbps is not None:
        network.set_link_rate((2, 3), rate2_mbps)
    flow1 = network.add_udp_flow([0, 1], payload_bytes=1470)
    flow2 = network.add_udp_flow([2, 3], payload_bytes=1470)
    measurement = measure_pair(network, flow1, flow2, duration_s=duration_s)
    topo_class = classify_pair(network.medium, topology.link1, topology.link2)
    return MeasuredPair(
        topology_class=topo_class, rate_mbps=rate_mbps, measurement=measurement
    )


def measure_random_pairs(
    num_pairs: int,
    rate_mbps: float,
    seed: int = 0,
    duration_s: float = 1.0,
    usable_snr_db: float = 14.0,
) -> list[MeasuredPair]:
    """Measure LIRs of random link pairs (the Figure 3 methodology).

    Pairs whose links are not individually usable at the chosen rate are
    skipped (the paper only measures working links).
    """
    rng = np.random.default_rng(seed)
    results: list[MeasuredPair] = []
    attempts = 0
    while len(results) < num_pairs and attempts < num_pairs * 8:
        attempts += 1
        topology = random_link_pair(rng)
        network = build_pair_network(topology, rate_mbps, seed=attempts)
        usable = True
        for tx, rx in topology.links:
            snr = network.medium.rx_power_dbm(tx, rx) - network.medium.capture.noise_floor_dbm
            if snr < usable_snr_db:
                usable = False
        if not usable:
            continue
        flow1 = network.add_udp_flow([0, 1], payload_bytes=1470)
        flow2 = network.add_udp_flow([2, 3], payload_bytes=1470)
        measurement = measure_pair(network, flow1, flow2, duration_s=duration_s)
        if measurement.c11 <= 0 or measurement.c22 <= 0:
            continue
        results.append(
            MeasuredPair(
                topology_class=classify_pair(network.medium, topology.link1, topology.link2),
                rate_mbps=rate_mbps,
                measurement=measurement,
            )
        )
    return results
