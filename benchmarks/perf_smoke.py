"""Perf-smoke canary: engine dispatch rate vs the committed record.

Run as a script (CI's non-blocking ``perf-smoke`` job, or locally)::

    PYTHONPATH=src python benchmarks/perf_smoke.py

Measures the raw kernel dispatch rate — the same self-rescheduling
microbenchmark ``benchmarks/test_sim_core.py`` records as
``engine_events_per_s`` — and exits nonzero when the best of three runs
falls more than ``TOLERANCE`` below the reference: the local
``BENCH_sim.json`` when one exists (it is a gitignored artifact of a
benchmark run), else ``REFERENCE_RATE`` recorded below from the last
full benchmark session.  The threshold is deliberately loose: shared
runners carry real noise, and the job that runs this is
``continue-on-error`` — the point is a loud early warning between full
benchmark runs, not a merge gate.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.engine import Simulator

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_sim.json"

#: Dispatch rate from the last full benchmark session on the reference
#: box — the fallback when no local BENCH_sim.json artifact exists
#: (fresh checkouts, CI).  Refresh alongside benchmark reruns.
REFERENCE_RATE = 1_260_303.0

#: Fraction of the reference rate the measurement must reach.
TOLERANCE = 0.70
EVENTS = 200_000
RUNS = 3


def engine_events_per_s(events: int = EVENTS) -> float:
    """Best-effort raw dispatch rate (one run)."""
    sim = Simulator()
    remaining = events

    def tick() -> None:
        nonlocal remaining
        remaining -= 1
        if remaining > 0:
            sim.schedule(1e-6, tick)

    sim.schedule(1e-6, tick)
    start = time.perf_counter()
    sim.run()
    return events / (time.perf_counter() - start)


def main() -> int:
    if BENCH_PATH.exists():
        committed = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
        recorded = float(committed["engine_events_per_s"])
        source = "local BENCH_sim.json"
    else:
        recorded = REFERENCE_RATE
        source = "recorded reference"
    measured = max(engine_events_per_s() for _ in range(RUNS))
    floor = TOLERANCE * recorded
    verdict = "ok" if measured >= floor else "REGRESSION"
    print(
        f"engine_events_per_s: measured {measured:,.0f} "
        f"vs {source} {recorded:,.0f} "
        f"(floor {floor:,.0f} = {TOLERANCE:.0%}) -> {verdict}"
    )
    if measured < floor:
        print(
            "engine dispatch rate regressed more than "
            f"{1 - TOLERANCE:.0%} against the {source} — profile with "
            "`python -m repro.sim.profile fig14-cell` and bisect the "
            "scheduler/engine hot path.",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
