"""Figure 14 — TCP performance across multi-hop, multi-flow scenarios
with and without rate control.

Reports the four panels of the figure: (a) aggregate throughput of
rate-controlled TCP relative to plain TCP, (b) Jain fairness index,
(c) flow-isolation feasibility (achieved over optimized rate) and
(d) stability across repeated runs of the same configuration.

The whole scenarios x variants x repeated-runs matrix is enumerated as
:class:`ExperimentSpec`s over the registered ``random_multiflow``
scenario and executed by the batch runner; stability repeats re-seed
only the traffic randomness (``run_seed``), keeping topology and routes
fixed, exactly as the paper's repeated testbed runs do.
"""

from __future__ import annotations

import numpy as np

from repro import (
    BatchRunner,
    ControllerSpec,
    ExperimentSpec,
    ProbingSpec,
    ResultCache,
    ScenarioSpec,
)
from repro.analysis import (
    ExperimentReport,
    format_table,
    jain_fairness_index,
    stability_deviations,
)

from conftest import run_cold_then_warm

SCENARIO_SPECS = [
    dict(seed=7, num_flows=3, rate_mode="11"),
    dict(seed=3, num_flows=3, rate_mode="mixed"),
]
PROBE_WARMUP_S = 45.0
MEASURE_S = 12.0
RUNS = 2

VARIANTS = {
    "noRC": ControllerSpec(enabled=False),
    "Max": ControllerSpec(alpha=0.0, probing_window=80, payload_bytes=1460),
    "Prop": ControllerSpec(alpha=1.0, probing_window=80, payload_bytes=1460),
}


def _spec(scenario_kwargs: dict, controller: ControllerSpec, run_seed: int) -> ExperimentSpec:
    return ExperimentSpec(
        scenario=ScenarioSpec(
            scenario="random_multiflow", transport="tcp", run_seed=run_seed, **scenario_kwargs
        ),
        probing=ProbingSpec(warmup_s=PROBE_WARMUP_S),
        controller=controller,
        cycles=1,
        cycle_measure_s=MEASURE_S,
        settle_s=2.0,
    )


def _run_all(cache):
    data: dict[str, list[list[tuple[list[float], list[float] | None]]]] = {}
    payloads: list[dict] = []
    hits = cells = 0
    for name, controller in VARIANTS.items():
        per_scenario = []
        for scenario_kwargs in SCENARIO_SPECS:
            specs = [
                _spec(scenario_kwargs, controller, run_seed=1000 + r) for r in range(RUNS)
            ]
            # Serial backend pinned: figure timings stay comparable with
            # earlier BENCH_*.json records regardless of the environment.
            batch = BatchRunner(specs, backend="serial", cache=cache).run()
            payloads.extend(batch.to_dicts())
            hits, cells = hits + batch.cache_hits, cells + len(batch)
            runs = []
            for result in batch:
                final = result.final_cycle
                achieved = [final.achieved_bps[f] for f in result.flow_ids]
                targets = (
                    [final.target_bps[f] for f in result.flow_ids]
                    if final.target_bps
                    else None
                )
                runs.append((achieved, targets))
            per_scenario.append(runs)
        data[name] = per_scenario
    return data, payloads, hits, cells


def test_fig14_tcp_multiflow(benchmark, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cold, warm, cold_s, warm_s = run_cold_then_warm(
        benchmark, lambda: _run_all(cache), cache
    )
    data, cold_payloads, _, cells = cold
    _, warm_payloads, warm_hits, _ = warm
    # The acceptance bar of the cache subsystem: a repeated sweep over the
    # whole fig14 grid is served from the cache bit-identically and at
    # least 5x faster than simulating it.
    assert warm_hits == cells
    assert warm_payloads == cold_payloads
    assert cold_s / max(warm_s, 1e-9) >= 5.0
    report = ExperimentReport("Figure 14", "multi-flow TCP with and without rate control")
    report.add(
        f"result cache: cold {cold_s:.1f} s -> warm {warm_s:.2f} s "
        f"({cold_s / max(warm_s, 1e-9):.0f}x over {cells} grid cells), "
        f"warm hit rate {warm_hits / cells:.0%} (serial backend, "
        f"cache-aware planner)"
    )

    def mean_achieved(runs):
        return np.mean([sum(achieved) for achieved, _ in runs])

    rows = []
    ratios_max, ratios_prop, jfi_norc, jfi_prop = [], [], [], []
    feasibility = []
    stability_rc, stability_norc = [], []
    for index in range(len(SCENARIO_SPECS)):
        base = mean_achieved(data["noRC"][index])
        for name in ("noRC", "Max", "Prop"):
            runs = data[name][index]
            aggregate = mean_achieved(runs)
            mean_flow_rates = np.mean([achieved for achieved, _ in runs], axis=0)
            jfi = jain_fairness_index(mean_flow_rates)
            rows.append([f"scenario {index}", name, aggregate / 1e3, aggregate / max(base, 1.0), jfi])
            if name == "Max":
                ratios_max.append(aggregate / max(base, 1.0))
            if name == "Prop":
                ratios_prop.append(aggregate / max(base, 1.0))
                jfi_prop.append(jfi)
                for achieved, targets in runs:
                    feasibility.extend(
                        a / max(t, 1.0) for a, t in zip(achieved, targets)
                    )
            if name == "noRC":
                jfi_norc.append(jfi)
            # Stability: per-flow relative deviation across repeated runs.
            per_flow = np.array([achieved for achieved, _ in runs])
            for flow_index in range(per_flow.shape[1]):
                deviations = stability_deviations(per_flow[:, flow_index])
                (stability_norc if name == "noRC" else stability_rc).extend(deviations)

    report.add(format_table(
        ["scenario", "variant", "aggregate kb/s", "vs noRC", "Jain index"], rows
    ))
    report.add_comparison("(a) TCP-Max aggregate vs noRC", "up to 1.45x", f"{max(ratios_max):.2f}x")
    report.add_comparison(
        "(a) TCP-Prop aggregate vs noRC", ">=0.8x in 80% of scenarios",
        f"{[round(r, 2) for r in ratios_prop]}",
    )
    report.add_comparison(
        "(b) fairness", "TCP-Prop improves the Jain index over noRC",
        f"mean JFI prop={float(np.mean(jfi_prop)):.2f} vs noRC={float(np.mean(jfi_norc)):.2f}",
    )
    report.add_comparison(
        "(c) feasibility", "70% of flows achieve >=90% of their optimized rate",
        f"{float(np.mean([f >= 0.9 for f in feasibility])):.0%} of flows >=0.9 "
        f"(median ratio {float(np.median(feasibility)):.2f})",
    )
    report.add_comparison(
        "(d) stability", "70% of RC flows deviate <10% across runs (40% for noRC)",
        f"RC mean deviation {float(np.mean(stability_rc)):.2f}, "
        f"noRC mean deviation {float(np.mean(stability_norc)):.2f}",
    )
    report.emit()
    # Shape assertions: rate control does not collapse aggregate throughput,
    # proportional fairness does not reduce fairness, and most flows reach a
    # large fraction of their optimized rates.
    assert max(ratios_max) > 0.7
    assert float(np.mean(jfi_prop)) >= float(np.mean(jfi_norc)) - 0.05
    assert float(np.median(feasibility)) > 0.5
