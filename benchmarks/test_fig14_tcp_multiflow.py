"""Figure 14 — TCP performance across multi-hop, multi-flow scenarios
with and without rate control.

Reports the four panels of the figure: (a) aggregate throughput of
rate-controlled TCP relative to plain TCP, (b) Jain fairness index,
(c) flow-isolation feasibility (achieved over optimized rate) and
(d) stability across repeated runs of the same configuration.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    ExperimentReport,
    format_table,
    jain_fairness_index,
    stability_deviations,
)
from repro.core import MAX_THROUGHPUT, OnlineOptimizer, PROPORTIONAL_FAIR
from repro.sim.scenarios import random_multiflow_scenario

from conftest import run_once

SCENARIO_SPECS = [
    dict(seed=7, num_flows=3, rate_mode="11"),
    dict(seed=3, num_flows=3, rate_mode="mixed"),
]
PROBE_WARMUP_S = 45.0
MEASURE_S = 12.0
RUNS = 2


def _run_one(spec, utility, run_seed):
    scenario = random_multiflow_scenario(transport="tcp", run_seed=run_seed, **spec)
    network = scenario.network
    targets = None
    if utility is not None:
        network.enable_probing(period_s=0.5)
        network.run(PROBE_WARMUP_S)
        controller = OnlineOptimizer(
            network, scenario.flows, utility=utility, probing_window=80,
            payload_bytes=1460,
        )
        decision = controller.run_cycle()
        targets = [decision.target_outputs_bps[f.flow_id] for f in scenario.flows]
    for flow in scenario.flows:
        flow.start()
    network.run(MEASURE_S)
    start, end = network.now - MEASURE_S + 2.0, network.now
    achieved = [flow.throughput_bps(start, end) for flow in scenario.flows]
    return achieved, targets


def _run_all():
    data = {}
    for name, utility in (("noRC", None), ("Max", MAX_THROUGHPUT), ("Prop", PROPORTIONAL_FAIR)):
        per_scenario = []
        for spec in SCENARIO_SPECS:
            runs = [_run_one(spec, utility, run_seed=1000 + r) for r in range(RUNS)]
            per_scenario.append(runs)
        data[name] = per_scenario
    return data


def test_fig14_tcp_multiflow(benchmark):
    data = run_once(benchmark, _run_all)
    report = ExperimentReport("Figure 14", "multi-flow TCP with and without rate control")

    def mean_achieved(runs):
        return np.mean([sum(achieved) for achieved, _ in runs])

    rows = []
    ratios_max, ratios_prop, jfi_norc, jfi_prop = [], [], [], []
    feasibility = []
    stability_rc, stability_norc = [], []
    for index in range(len(SCENARIO_SPECS)):
        base = mean_achieved(data["noRC"][index])
        for name in ("noRC", "Max", "Prop"):
            runs = data[name][index]
            aggregate = mean_achieved(runs)
            mean_flow_rates = np.mean([achieved for achieved, _ in runs], axis=0)
            jfi = jain_fairness_index(mean_flow_rates)
            rows.append([f"scenario {index}", name, aggregate / 1e3, aggregate / max(base, 1.0), jfi])
            if name == "Max":
                ratios_max.append(aggregate / max(base, 1.0))
            if name == "Prop":
                ratios_prop.append(aggregate / max(base, 1.0))
                jfi_prop.append(jfi)
                for achieved, targets in runs:
                    feasibility.extend(
                        a / max(t, 1.0) for a, t in zip(achieved, targets)
                    )
            if name == "noRC":
                jfi_norc.append(jfi)
            # Stability: per-flow relative deviation across repeated runs.
            per_flow = np.array([achieved for achieved, _ in runs])
            for flow_index in range(per_flow.shape[1]):
                deviations = stability_deviations(per_flow[:, flow_index])
                (stability_norc if name == "noRC" else stability_rc).extend(deviations)

    report.add(format_table(
        ["scenario", "variant", "aggregate kb/s", "vs noRC", "Jain index"], rows
    ))
    report.add_comparison("(a) TCP-Max aggregate vs noRC", "up to 1.45x", f"{max(ratios_max):.2f}x")
    report.add_comparison(
        "(a) TCP-Prop aggregate vs noRC", ">=0.8x in 80% of scenarios",
        f"{[round(r, 2) for r in ratios_prop]}",
    )
    report.add_comparison(
        "(b) fairness", "TCP-Prop improves the Jain index over noRC",
        f"mean JFI prop={float(np.mean(jfi_prop)):.2f} vs noRC={float(np.mean(jfi_norc)):.2f}",
    )
    report.add_comparison(
        "(c) feasibility", "70% of flows achieve >=90% of their optimized rate",
        f"{float(np.mean([f >= 0.9 for f in feasibility])):.0%} of flows >=0.9 "
        f"(median ratio {float(np.median(feasibility)):.2f})",
    )
    report.add_comparison(
        "(d) stability", "70% of RC flows deviate <10% across runs (40% for noRC)",
        f"RC mean deviation {float(np.mean(stability_rc)):.2f}, "
        f"noRC mean deviation {float(np.mean(stability_norc)):.2f}",
    )
    report.emit()
    # Shape assertions: rate control does not collapse aggregate throughput,
    # proportional fairness does not reduce fairness, and most flows reach a
    # large fraction of their optimized rates.
    assert max(ratios_max) > 0.7
    assert float(np.mean(jfi_prop)) >= float(np.mean(jfi_norc)) - 0.05
    assert float(np.median(feasibility)) > 0.5
