"""Figure 4 — false positives / false negatives of the two-point model
per interfering-pair topology class (CS / IA / NF).

For each class the benchmark measures the primary extreme points, builds
the binary-LIR two-point model, samples input-rate vectors inside the
independent region and compares the model's feasibility verdict against
the simulated outcome.  The paper's findings to reproduce: false
positives are rare everywhere; false negatives are near zero for CS and
larger for IA/NF (capture lifts the true region above time sharing).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ExperimentReport, format_table
from repro.core import DEFAULT_LIR_THRESHOLD, TwoLinkRegions
from repro.sim import MeshNetwork, no_shadowing_propagation
from repro.sim.measurement import apply_input_rates, measure_flows, measure_isolated
from repro.sim.topology import (
    carrier_sense_pair,
    information_asymmetry_pair,
    near_far_pair,
    reduced_carrier_sense_radio,
)

from conftest import run_once

MEASURE_S = 0.8
GRID = 3  # GRID x GRID sampled input-rate points per configuration

CONFIGS = [
    ("CS", carrier_sense_pair(), 11, 11, None),
    ("CS", carrier_sense_pair(), 1, 1, None),
    ("CS", carrier_sense_pair(), 1, 11, None),
    ("IA", information_asymmetry_pair(65.0, 50.0, 185.0), 11, 11, -85.0),
    ("IA", information_asymmetry_pair(65.0, 50.0, 185.0), 1, 1, -85.0),
    ("NF", near_far_pair(75.0, 230.0), 11, 11, -85.0),
    ("NF", near_far_pair(75.0, 230.0), 1, 1, -85.0),
]


def _evaluate_config(label, topology, rate1, rate2, cs_threshold):
    radio = None
    if cs_threshold is not None:
        radio = reduced_carrier_sense_radio(rate1, cs_threshold)
    network = MeshNetwork(
        topology.positions,
        seed=hash((label, rate1, rate2)) % 1000,
        radio=radio,
        propagation=no_shadowing_propagation(),
        data_rate_mbps=rate1,
    )
    network.set_link_rate((2, 3), rate2)
    flow1 = network.add_udp_flow([0, 1], payload_bytes=1470)
    flow2 = network.add_udp_flow([2, 3], payload_bytes=1470)
    alone1 = measure_isolated(network, flow1, MEASURE_S)
    alone2 = measure_isolated(network, flow2, MEASURE_S)
    together = measure_flows(network, [flow1, flow2], MEASURE_S)
    regions = TwoLinkRegions(
        c11=max(alone1.throughput_bps, 1.0),
        c22=max(alone2.throughput_bps, 1.0),
        c31=together[0].throughput_bps,
        c32=together[1].throughput_bps,
    )
    interfering = regions.lir < DEFAULT_LIR_THRESHOLD
    fp = fn = tested = 0
    fractions = np.linspace(0.25, 0.95, GRID)
    for f1 in fractions:
        for f2 in fractions:
            x1, x2 = f1 * regions.c11, f2 * regions.c22
            predicted = regions.in_time_sharing(x1, x2) if interfering else regions.in_independent(x1, x2)
            outcome = apply_input_rates(
                network,
                [flow1, flow2],
                [x1, x2],
                loss_rates=[alone1.loss_rate, alone2.loss_rate],
                duration_s=MEASURE_S,
                settle_s=0.3,
                gap_s=0.3,
            )
            tested += 1
            if predicted and not outcome.feasible:
                fp += 1
            elif not predicted and outcome.feasible:
                fn += 1
    return {
        "class": label,
        "rates": f"({rate1},{rate2})",
        "lir": regions.lir,
        "tested": tested,
        "fp_rate": fp / tested,
        "fn_rate": fn / tested,
    }


def _run_all():
    return [_evaluate_config(*config) for config in CONFIGS]


def test_fig04_false_positive_negative_rates(benchmark):
    rows = run_once(benchmark, _run_all)
    report = ExperimentReport(
        "Figure 4", "FP/FN of the binary-LIR two-point model per topology class"
    )
    report.add(
        format_table(
            ["class", "rates (Mb/s)", "LIR", "points", "FP rate", "FN rate"],
            [[r["class"], r["rates"], r["lir"], r["tested"], r["fp_rate"], r["fn_rate"]] for r in rows],
        )
    )
    by_class = {}
    for row in rows:
        by_class.setdefault(row["class"], []).append(row)
    mean_fp = {c: float(np.mean([r["fp_rate"] for r in rs])) for c, rs in by_class.items()}
    mean_fn = {c: float(np.mean([r["fn_rate"] for r in rs])) for c, rs in by_class.items()}
    report.add_comparison("FP everywhere", "rare (94/3026 points ~ 3%)", f"{mean_fp}")
    report.add_comparison("FN", "small for CS, larger for IA/NF", f"{mean_fn}")
    report.emit()
    # Shape assertions: FPs stay rare; CS has (near-)lowest FN.
    assert all(fp <= 0.35 for fp in mean_fp.values())
    assert mean_fn["CS"] <= max(mean_fn.values()) + 1e-9
