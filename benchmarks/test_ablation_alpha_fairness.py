"""Ablation — the throughput/fairness trade-off of the alpha-fair family.

Not a figure of the paper per se, but the design choice its Section 6
relies on: alpha = 0 maximises aggregate throughput (and may starve
multi-hop flows), alpha = 1 is the proportional fairness used by
TCP-Prop, and larger alpha approaches max-min fairness.  The benchmark
sweeps alpha on one measured configuration and reports aggregate
throughput and Jain index of the optimizer's rate allocation.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ExperimentReport, format_table, jain_fairness_index
from repro.core import AlphaFairUtility, OnlineOptimizer
from repro.sim.scenarios import random_multiflow_scenario

from conftest import run_once

ALPHAS = [0.0, 1.0, 2.0, 4.0]
PROBE_WARMUP_S = 45.0


def _run():
    scenario = random_multiflow_scenario(seed=7, num_flows=4, rate_mode="11", transport="udp")
    network = scenario.network
    network.enable_probing(period_s=0.5)
    network.run(PROBE_WARMUP_S)
    allocations = {}
    for alpha in ALPHAS:
        controller = OnlineOptimizer(
            network, scenario.flows, utility=AlphaFairUtility(alpha=alpha), probing_window=80
        )
        decision = controller.optimize()
        allocations[alpha] = np.array(
            [decision.target_outputs_bps[f.flow_id] for f in scenario.flows]
        )
    return allocations


def test_ablation_alpha_fairness(benchmark):
    allocations = run_once(benchmark, _run)
    report = ExperimentReport(
        "Ablation", "alpha-fairness sweep of the optimizer on one configuration"
    )
    rows = []
    aggregates, jfis = {}, {}
    for alpha, rates in allocations.items():
        aggregates[alpha] = float(rates.sum())
        jfis[alpha] = jain_fairness_index(rates)
        rows.append([alpha, float(rates.sum()) / 1e3, jfis[alpha], float(rates.min()) / 1e3])
    report.add(format_table(["alpha", "aggregate kb/s", "Jain index", "min flow kb/s"], rows))
    report.add(
        "alpha=0 maximises aggregate throughput; increasing alpha trades aggregate "
        "throughput for fairness (higher Jain index, higher minimum rate)."
    )
    report.emit()
    assert aggregates[0.0] >= max(aggregates.values()) - 1e-6
    assert jfis[4.0] >= jfis[0.0]
    assert allocations[4.0].min() >= allocations[0.0].min() - 1e-6
