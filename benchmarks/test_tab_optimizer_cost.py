"""Section 6.1 cost figures — extreme-point enumeration and solver time.

The paper reports that its worst-case conflict graph produced about 200
extreme points, enumerated in under 10 ms, and that the convex program
solved in under 3 s (Matlab).  This benchmark times our Bron–Kerbosch
enumeration and the SLSQP/linprog solver on a conflict graph of similar
size.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import ExperimentReport
from repro.core import (
    ConflictGraph,
    FeasibilityRegion,
    PROPORTIONAL_FAIR,
    PairwiseInterferenceMap,
    RateOptimizer,
)
from repro.net.routing import FlowRoute, RoutingMatrix

NUM_LINKS = 24
EDGE_PROBABILITY = 0.55
NUM_FLOWS = 6
LINKS_PER_FLOW = 3


def _build_problem():
    rng = np.random.default_rng(42)
    links = [(2 * i, 2 * i + 1) for i in range(NUM_LINKS)]
    interference = PairwiseInterferenceMap(links)
    for i in range(NUM_LINKS):
        for j in range(i + 1, NUM_LINKS):
            if rng.random() < EDGE_PROBABILITY:
                interference.add_conflict(links[i], links[j])
    graph = ConflictGraph.from_interference_map(interference)
    capacities = {link: float(rng.uniform(0.8e6, 6e6)) for link in links}
    return graph, capacities, links


def _routing_matrix(region: FeasibilityRegion) -> RoutingMatrix:
    """Each flow traverses ``LINKS_PER_FLOW`` of the region's links."""
    matrix = np.zeros((region.num_links, NUM_FLOWS))
    flows = []
    for f in range(NUM_FLOWS):
        used = [(3 * f + k) % region.num_links for k in range(LINKS_PER_FLOW)]
        matrix[used, f] = 1.0
        first, last = region.links[used[0]], region.links[used[-1]]
        flows.append(FlowRoute(f, first[0], last[1], [first[0], last[1]]))
    return RoutingMatrix(links=list(region.links), flows=flows, matrix=matrix)


def _solve_once():
    graph, capacities, links = _build_problem()
    t0 = time.perf_counter()
    independent_sets = graph.independent_sets()
    enumeration_s = time.perf_counter() - t0
    region = FeasibilityRegion.from_capacities_and_conflicts(capacities, graph)
    routing = _routing_matrix(region)
    t1 = time.perf_counter()
    result = RateOptimizer(region, routing, PROPORTIONAL_FAIR).solve()
    solve_s = time.perf_counter() - t1
    return {
        "independent_sets": len(independent_sets),
        "extreme_points": region.num_extreme_points,
        "enumeration_s": enumeration_s,
        "solve_s": solve_s,
        "success": result.success,
    }


def test_optimizer_cost(benchmark):
    stats = benchmark(_solve_once)
    report = ExperimentReport(
        "Sec. 6.1 (optimizer cost)", "extreme-point enumeration and solver runtime"
    )
    report.add(
        f"conflict graph: {NUM_LINKS} links, {stats['independent_sets']} maximal independent sets, "
        f"{stats['extreme_points']} extreme points"
    )
    report.add_comparison("extreme points (worst case)", "~200", str(stats["extreme_points"]))
    report.add_comparison("enumeration time", "< 10 ms", f"{stats['enumeration_s'] * 1e3:.1f} ms")
    report.add_comparison("solver time", "< 3 s (Matlab)", f"{stats['solve_s']:.2f} s")
    report.emit()
    assert stats["success"]
    assert stats["extreme_points"] >= 50
    assert stats["enumeration_s"] < 1.0
    assert stats["solve_s"] < 10.0
