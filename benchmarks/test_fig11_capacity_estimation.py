"""Figure 11 — online capacity estimation vs max UDP throughput vs the
Ad Hoc Probe baseline.

For a set of links of varying quality the benchmark measures (i) the
ground-truth max UDP throughput (isolated, backlogged), (ii) the online
Eq.(6) estimate computed from broadcast-probe channel-loss estimates
taken in the presence of interfering traffic, and (iii) Ad Hoc Probe's
packet-pair estimate.  The paper's finding: the online estimator tracks
maxUDP (RMSE ~12%) while Ad Hoc Probe consistently over-estimates.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ExperimentReport, format_table
from repro.core import CapacityModel, combine_data_ack_losses, estimate_channel_loss_rate
from repro.net.adhoc_probe import AdHocProbe
from repro.sim import MeshNetwork, no_shadowing_propagation
from repro.sim.measurement import measure_isolated
from repro.sim.topology import grid_topology

from conftest import run_once

#: (prescribed channel loss, data rate in Mb/s) of each measured link.
LINK_SPECS = [
    (0.00, 11), (0.05, 11), (0.15, 11), (0.30, 11), (0.45, 11),
    (0.00, 1), (0.10, 1), (0.25, 1), (0.45, 1),
]
PROBE_PERIOD_S = 0.15
WINDOW = 200


def _measure_one(index: int, loss: float, rate_mbps: float):
    positions = grid_topology(2, 3, spacing_m=55.0)
    network = MeshNetwork(
        positions,
        seed=200 + index,
        propagation=no_shadowing_propagation(),
        data_rate_mbps=rate_mbps,
        link_error_override={(0, 1): loss},
    )
    link = (0, 1)
    flow = network.add_udp_flow([0, 1], payload_bytes=1470)
    interferer = network.add_udp_flow([3, 4], payload_bytes=1470)

    max_udp = measure_isolated(network, flow, duration_s=1.5).throughput_bps

    network.enable_probing(period_s=PROBE_PERIOD_S)
    adhoc = AdHocProbe(network.sim, network.node(0), network.node(1), pair_interval_s=0.4)
    adhoc.start(num_pairs=60)
    interferer.start()
    network.run(WINDOW * PROBE_PERIOD_S + 3.0)
    interferer.stop()

    probing = network.probing
    p_data = estimate_channel_loss_rate(
        probing.loss_series(0, 1, "data", last_n=WINDOW)
    ).channel_loss_rate
    p_ack = estimate_channel_loss_rate(
        probing.loss_series(1, 0, "ack", last_n=WINDOW)
    ).channel_loss_rate
    model = CapacityModel(payload_bytes=1470, rate=network.link_rate(link))
    online = model.max_udp_throughput_bps(combine_data_ack_losses(p_data, p_ack))
    adhoc_estimate = adhoc.capacity_estimate_bps() or 0.0
    nominal = model.nominal_throughput_bps()
    return dict(
        loss=loss, rate=rate_mbps, max_udp=max_udp, online=online,
        adhoc=adhoc_estimate, nominal=nominal,
    )


def _run_all():
    return [_measure_one(i, loss, rate) for i, (loss, rate) in enumerate(LINK_SPECS)]


def test_fig11_capacity_estimation(benchmark):
    rows = run_once(benchmark, _run_all)
    report = ExperimentReport(
        "Figure 11", "maxUDP vs online capacity estimate vs Ad Hoc Probe (normalised to nominal)"
    )
    table = []
    online_errors, adhoc_errors = [], []
    for row in rows:
        nominal = row["nominal"]
        table.append([
            f"{row['rate']:g} Mb/s", row["loss"],
            row["max_udp"] / nominal, row["online"] / nominal, row["adhoc"] / nominal,
        ])
        online_errors.append((row["online"] - row["max_udp"]) / max(row["max_udp"], 1.0))
        adhoc_errors.append((row["adhoc"] - row["max_udp"]) / max(row["max_udp"], 1.0))
    report.add(
        format_table(
            ["rate", "true p_ch", "maxUDP/nominal", "online/nominal", "AdHocProbe/nominal"], table
        )
    )
    online_rmse = float(np.sqrt(np.mean(np.array(online_errors) ** 2)))
    adhoc_bias = float(np.mean(adhoc_errors))
    report.add_comparison("online estimator relative RMSE", "~12%", f"{online_rmse:.0%}")
    report.add_comparison(
        "Ad Hoc Probe", "consistently over-estimates (tracks nominal)", f"mean relative bias {adhoc_bias:+.0%}"
    )
    report.emit()
    # Shape: our estimator is far closer to maxUDP than Ad Hoc Probe, which
    # over-estimates on lossy links.
    assert online_rmse < 0.5
    assert adhoc_bias > 0.15
    lossy = [i for i, row in enumerate(rows) if row["loss"] >= 0.25]
    assert all(adhoc_errors[i] > online_errors[i] for i in lossy)
