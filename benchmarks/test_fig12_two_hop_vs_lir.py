"""Figure 12 — the online two-hop interference model vs the binary LIR
reference model.

On a multi-flow configuration the optimizer is run twice with the same
capacities but two different conflict graphs: one built from measured
pairwise LIRs (the Section 4 reference) and one from the two-hop rule of
Section 5.5.  The paper finds the two yield very similar achieved
throughput (two-hop is an excellent online approximation).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ExperimentReport, format_table
from repro.core import (
    BinaryLirClassifier,
    OnlineOptimizer,
    PROPORTIONAL_FAIR,
    PairwiseInterferenceMap,
    link_interference_ratio,
)
from repro.sim.measurement import measure_flows, measure_isolated
from repro.sim.scenarios import random_multiflow_scenario

from conftest import run_once

SCENARIO_SPECS = [dict(seed=7, num_flows=3, rate_mode="11")]
PROBE_WARMUP_S = 45.0
MEASURE_S = 8.0
PAIR_MEASURE_S = 0.8


def _measure_lir_map(network, links):
    """Measured pairwise-LIR conflict relation over the scenario's links."""
    flows = {link: network.add_udp_flow(list(link), payload_bytes=1470, install_route=False)
             for link in links}
    isolated = {
        link: measure_isolated(network, flow, PAIR_MEASURE_S).throughput_bps
        for link, flow in flows.items()
    }
    classifier = BinaryLirClassifier()
    interference = PairwiseInterferenceMap(links)
    for i, link_a in enumerate(links):
        for link_b in links[i + 1:]:
            if set(link_a) & set(link_b):
                interference.add_conflict(link_a, link_b)
                continue
            together = measure_flows(network, [flows[link_a], flows[link_b]], PAIR_MEASURE_S)
            lir = link_interference_ratio(
                isolated[link_a], isolated[link_b],
                together[0].throughput_bps, together[1].throughput_bps,
            )
            if classifier.interferes(lir):
                interference.add_conflict(link_a, link_b)
    return interference


def _run_variant(spec, interference_mode):
    scenario = random_multiflow_scenario(transport="udp", **spec)
    network = scenario.network
    network.enable_probing(period_s=0.5)
    network.run(PROBE_WARMUP_S)
    if interference_mode == "lir":
        mode = _measure_lir_map(network, scenario.links)
    else:
        mode = "two_hop"
    controller = OnlineOptimizer(
        network, scenario.flows, utility=PROPORTIONAL_FAIR,
        probing_window=80, interference_mode=mode,
    )
    decision = controller.run_cycle()
    for flow in scenario.flows:
        flow.start()
    network.run(MEASURE_S)
    start, end = network.now - MEASURE_S + 2.0, network.now
    estimated, achieved = [], []
    for flow in scenario.flows:
        estimated.append(decision.target_outputs_bps[flow.flow_id])
        achieved.append(flow.throughput_bps(start, end))
    return np.array(estimated), np.array(achieved)


def _run_all():
    results = {}
    for mode in ("lir", "two_hop"):
        est_all, got_all = [], []
        for spec in SCENARIO_SPECS:
            est, got = _run_variant(spec, mode)
            est_all.extend(est)
            got_all.extend(got)
        results[mode] = (np.array(est_all), np.array(got_all))
    return results


def test_fig12_two_hop_matches_lir(benchmark):
    results = run_once(benchmark, _run_all)
    report = ExperimentReport(
        "Figure 12", "binary-LIR vs two-hop interference model (achieved/estimated)"
    )
    rows = []
    ratios = {}
    for mode, (est, got) in results.items():
        ratio = got / np.maximum(est, 1.0)
        ratios[mode] = ratio
        rows.append([mode, float(np.mean(ratio)), float(np.min(ratio)),
                     float(np.sqrt(np.mean((1 - np.minimum(ratio, 1.0)) ** 2)))])
    report.add(format_table(["interference model", "mean achieved/est", "min", "RMSE vs y=x"], rows))
    report.add_comparison(
        "two-hop approximation quality", "matches the LIR model closely",
        f"mean ratio LIR={float(np.mean(ratios['lir'])):.2f} vs two-hop={float(np.mean(ratios['two_hop'])):.2f}",
    )
    report.emit()
    # Shape: the two models lead to comparable outcomes (within 30% of each
    # other on average) and neither grossly over-estimates.
    assert abs(float(np.mean(ratios["lir"])) - float(np.mean(ratios["two_hop"]))) < 0.3
