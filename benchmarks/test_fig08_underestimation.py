"""Figure 8 — under-estimation test: scaling the estimated rates.

The estimated proportional-fair rate vector is scaled by 1.0, 1.1, 1.2
and 1.5 and re-applied.  If the model under-estimated the feasibility
region, the scaled rates would still be achieved; the paper finds that
the achieved/estimated ratio degrades as the scale grows (a) and that
scaling recovers at most ~10-20% extra throughput (b).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ExperimentReport, format_table

from conftest import run_once
from test_fig07_overestimation import run_validation_scenario

SCENARIOS = [
    dict(seed=7, num_flows=4, rate_mode="11"),
    dict(seed=3, num_flows=4, rate_mode="mixed"),
]
SCALES = [1.0, 1.1, 1.2, 1.5]


def _run_all():
    results = {scale: [] for scale in SCALES}
    per_flow_base: dict[int, list[float]] = {}
    for index, spec in enumerate(SCENARIOS):
        base_achieved = None
        for scale in SCALES:
            estimated, achieved = run_validation_scenario(spec, scale=scale)
            ratios = achieved / np.maximum(estimated, 1.0)
            results[scale].extend(ratios.tolist())
            if scale == 1.0:
                base_achieved = achieved
            else:
                per_flow_base.setdefault(index, []).extend(
                    (achieved / np.maximum(base_achieved, 1.0)).tolist()
                )
    return results, per_flow_base


def test_fig08_underestimation(benchmark):
    results, scaled_over_unscaled = run_once(benchmark, _run_all)
    report = ExperimentReport(
        "Figure 8", "under-estimation: achieved/estimated ratio for scaled input rates"
    )
    rows = []
    means = {}
    for scale in SCALES:
        ratios = np.array(results[scale])
        means[scale] = float(np.mean(ratios))
        rows.append([scale, float(np.mean(ratios)), float(np.median(ratios)), float(np.min(ratios))])
    report.add(format_table(["scale", "mean ratio", "median ratio", "min ratio"], rows))
    gains = np.array([g for values in scaled_over_unscaled.values() for g in values])
    report.add_comparison(
        "(a) ratio degrades as the scale factor grows",
        "CDFs shift left with scale",
        f"means per scale: { {k: round(v, 2) for k, v in means.items()} }",
    )
    report.add_comparison(
        "(b) extra throughput recovered by scaling",
        "~10% on average, ~20% worst case",
        f"mean scaled/unscaled achieved = {float(np.mean(gains)):.2f}",
    )
    report.emit()
    # Shape: scaling the inputs beyond the estimate does not proportionally
    # increase what is achieved (the mean ratio at 1.5x is clearly below the
    # ratio at 1.0x), i.e. the model is not grossly under-estimating.
    assert means[1.5] < means[1.0]
    assert float(np.mean(gains)) < 1.4
