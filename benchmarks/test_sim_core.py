"""Simulation-core throughput — the hot path's speed, as data.

Not a paper figure: a harness figure.  The sim-core fast path
(precomputed pairwise power tables, the calendar-queue scheduler,
memoized reception resolution, fused carrier-sense update loops) is
justified by wall clock alone — behaviour is pinned byte-identical by
the experiment goldens and the sim trace goldens — so the wall clock
must be recorded where regressions show up as data, not vibes.  Three
rates land in ``BENCH_sim.json`` next to the other ``BENCH_*.json``
records:

* ``engine_events_per_s`` — raw kernel dispatch (schedule + pop + call
  of trivial callbacks), the ceiling everything else sits under;
* ``mesh_events_per_s`` — full-stack event rate (DCF + medium + PHY +
  transport) on a contended chain;
* ``fig14_cell_cold_wall_s`` — one cold Figure 14 cell end to end, the
  unit the figure grids are made of.

When the full benchmark suite runs, the cold/warm wall clocks of the
Figure 13/14 sweeps (recorded by ``conftest.run_cold_then_warm`` into
``FIGURE_WALL_CLOCKS``; the ``test_fig*`` modules sort before this one)
are folded in as well and compared against the pre-optimization
baselines pinned below.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import FIGURE_WALL_CLOCKS, run_once

from repro.analysis import ExperimentReport
from repro.experiment import (
    ControllerSpec,
    ExperimentSpec,
    ProbingSpec,
    ScenarioSpec,
    run_experiment,
)
from repro.sim import MeshNetwork, Simulator, chain_topology

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_sim.json"

#: Cold wall clocks measured on this harness immediately before the
#: fast-path PR (commit 90a51a0), same benchmarks, same machine class.
#: Single-run timings on a shared box carry ~20% noise (day-to-day
#: machine drift has been observed at 2x); judge regressions on the
#: trend — and speedups on same-day A/B pairs — not one sample.
BASELINE_PRE_PR = {
    "fig13_cold_wall_s": 1.1,
    "fig14_cold_wall_s": 22.5,
    "fig14_cell_cold_wall_s": 1.977,
}

#: The pre-PR cell re-measured from a ``90a51a0`` worktree alongside the
#: calendar-queue PR's final measurement (interleaved subprocess runs,
#: min of 6).  This is the honest same-day denominator for the cell
#: speedup: the original 1.977 was recorded on a ~10%-slower day.
BASELINE_PRE_PR_REMEASURED = {
    "fig14_cell_cold_wall_s": 1.808,
}

#: Cold fig14-cell trajectory across the optimization stages.  All but
#: the last entry are history — medians recorded when each stage landed
#: (~20% box noise applies across entries).  The final entry is appended
#: at benchmark time from the *same* measured run that produces the
#: headline ``fig14_cell_cold_wall_s``, so headline and trajectory can
#: never disagree again.
STAGE_HISTORY = [
    {"stage": "pre-PR baseline", "fig14_cell_cold_s": 1.977},
    {
        "stage": "precomputed power tables + PER/airtime memos",
        "fig14_cell_cold_s": 1.42,
    },
    {
        "stage": "tuple-packed event heap + __slots__ events",
        "fig14_cell_cold_s": 1.115,
    },
    {
        "stage": "fused sensed/busy loops + buffered RNG + slots frames",
        "fig14_cell_cold_s": 0.97,
    },
    {
        "stage": "calendar-queue scheduler + fused run_due dispatch",
        "fig14_cell_cold_s": 0.98,
    },
    {
        "stage": "reception-resolution memo + monotone busy/idle flips",
        "fig14_cell_cold_s": 0.91,
    },
]

#: Label of the live stage appended by :func:`test_sim_core_throughput`.
CURRENT_STAGE = "notification elision + pre-bound callbacks + GC pause"

#: One Figure 14 grid cell (random_multiflow / tcp / Prop variant) —
#: the repeated unit whose cost dominates the figure sweeps.
FIG14_CELL = ExperimentSpec(
    scenario=ScenarioSpec(
        scenario="random_multiflow",
        transport="tcp",
        run_seed=1000,
        seed=7,
        num_flows=3,
        rate_mode="11",
    ),
    probing=ProbingSpec(warmup_s=45.0),
    controller=ControllerSpec(alpha=1.0, probing_window=80, payload_bytes=1460),
    cycles=1,
    cycle_measure_s=12.0,
    settle_s=2.0,
    label="sim-core-fig14-cell",
)

ENGINE_EVENTS = 200_000
MESH_SIM_SECONDS = 2.0


def _engine_dispatch_rate() -> tuple[float, int]:
    """Raw kernel throughput: self-rescheduling trivial callbacks."""
    sim = Simulator()
    remaining = ENGINE_EVENTS

    def tick() -> None:
        nonlocal remaining
        remaining -= 1
        if remaining > 0:
            sim.schedule(1e-6, tick)

    sim.schedule(1e-6, tick)
    start = time.perf_counter()
    sim.run()
    wall_s = time.perf_counter() - start
    return ENGINE_EVENTS / wall_s, sim.processed_events


def _mesh_event_rate() -> tuple[float, int]:
    """Full-stack throughput: contended 5-node chain, backlogged UDP."""
    net = MeshNetwork(chain_topology(5), seed=3)
    net.add_udp_flow([0, 1, 2, 3, 4]).start()
    net.add_udp_flow([4, 3, 2]).start()
    start = time.perf_counter()
    net.run(MESH_SIM_SECONDS)
    wall_s = time.perf_counter() - start
    return net.sim.processed_events / wall_s, net.sim.processed_events


def test_sim_core_throughput(benchmark):
    record: dict[str, object] = {}

    def measure() -> dict[str, object]:
        engine_rate, engine_events = _engine_dispatch_rate()
        mesh_rate, mesh_events = _mesh_event_rate()
        start = time.perf_counter()
        run_experiment(FIG14_CELL, keep_decisions=False, cache=False)
        cell_wall_s = time.perf_counter() - start
        record.update(
            {
                "engine_events_per_s": round(engine_rate),
                "engine_events": engine_events,
                "mesh_events_per_s": round(mesh_rate),
                "mesh_events": mesh_events,
                "fig14_cell_cold_wall_s": round(cell_wall_s, 3),
                "fig14_cell_speedup_vs_pre_pr": round(
                    BASELINE_PRE_PR["fig14_cell_cold_wall_s"] / cell_wall_s, 2
                ),
                "fig14_cell_speedup_vs_pre_pr_same_day": round(
                    BASELINE_PRE_PR_REMEASURED["fig14_cell_cold_wall_s"]
                    / cell_wall_s,
                    2,
                ),
            }
        )
        return record

    run_once(benchmark, measure)

    # Fold in the figure sweeps' timings when they ran this session (the
    # test_fig* modules sort before this one; absent on a partial run).
    figures: dict[str, dict[str, float]] = {}
    for test_name, short in (
        ("test_fig13_tcp_starvation", "fig13"),
        ("test_fig14_tcp_multiflow", "fig14"),
    ):
        walls = FIGURE_WALL_CLOCKS.get(test_name)
        if walls is None:
            continue
        figures[short] = dict(walls)
        baseline = BASELINE_PRE_PR[f"{short}_cold_wall_s"]
        figures[short]["speedup_vs_pre_pr"] = round(
            baseline / max(walls["cold_wall_s"], 1e-9), 2
        )

    # The trajectory's final entry is the run just measured: one number
    # feeds both the headline and the stage list, atomically.
    stages = STAGE_HISTORY + [
        {
            "stage": CURRENT_STAGE,
            "fig14_cell_cold_s": record["fig14_cell_cold_wall_s"],
        }
    ]

    benchmark.extra_info["sim_core"] = record
    benchmark.extra_info["figures"] = figures
    benchmark.extra_info["optimization_stages"] = stages

    BENCH_PATH.write_text(
        json.dumps(
            {
                "baseline_pre_pr": BASELINE_PRE_PR,
                "baseline_pre_pr_remeasured": BASELINE_PRE_PR_REMEASURED,
                "engine_events_per_s": record["engine_events_per_s"],
                "mesh_events_per_s": record["mesh_events_per_s"],
                "fig14_cell_cold_wall_s": record["fig14_cell_cold_wall_s"],
                "fig14_cell_speedup_vs_pre_pr": record[
                    "fig14_cell_speedup_vs_pre_pr"
                ],
                "fig14_cell_speedup_vs_pre_pr_same_day": record[
                    "fig14_cell_speedup_vs_pre_pr_same_day"
                ],
                "figures": figures,
                "optimization_stages": stages,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )

    report = ExperimentReport(
        "Simulation core throughput (harness figure)",
        "raw kernel, full-stack chain, and one cold Figure 14 cell",
    )
    report.add_comparison(
        "engine dispatch",
        "O(1) heap ops, no per-event allocation",
        f"{record['engine_events_per_s']:,} events/s",
    )
    report.add_comparison(
        "full stack (5-node chain)",
        "precomputed power tables, fused CS updates",
        f"{record['mesh_events_per_s']:,} events/s",
    )
    report.add_comparison(
        "cold fig14 cell",
        f"<= {BASELINE_PRE_PR['fig14_cell_cold_wall_s'] / 5:.2f}s "
        "(ROADMAP 5x bar)",
        f"{record['fig14_cell_cold_wall_s']:.2f}s "
        f"({record['fig14_cell_speedup_vs_pre_pr']:.2f}x recorded baseline, "
        f"{record['fig14_cell_speedup_vs_pre_pr_same_day']:.2f}x same-day)",
    )
    report.emit()

    # The speed must never have been bought with behaviour: the sim-level
    # goldens re-assert byte-identity right here in the bench run.
    import importlib.util

    golden_dir = (
        Path(__file__).resolve().parents[1] / "tests" / "sim" / "golden"
    )
    spec = importlib.util.spec_from_file_location(
        "sim_golden_regenerate_bench", golden_dir / "regenerate.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    for name in module.GOLDEN_SCENARIOS:
        trace_record, _ = module.compute(name)
        frozen = module.golden_path(name).read_text(encoding="utf-8")
        assert module.canonical_json(trace_record) == frozen, (
            f"sim trace {name!r} drifted during benchmarking"
        )
