"""Figure 5 — an IA pair at 1 Mb/s where capture lifts the feasibility
region well above the time-sharing line, and the three-point model
(adding the simultaneously-backlogged throughputs as an extra extreme
point) recovers the missed area.
"""

from __future__ import annotations

from repro.analysis import ExperimentReport
from repro.core import TwoLinkRegions
from repro.sim import MeshNetwork, no_shadowing_propagation
from repro.sim.measurement import apply_input_rates, measure_pair
from repro.sim.topology import information_asymmetry_pair, reduced_carrier_sense_radio

from conftest import run_once

MEASURE_S = 1.0


def _run():
    topology = information_asymmetry_pair(link1_len_m=65.0, link2_len_m=50.0, tx_gap_m=185.0)
    network = MeshNetwork(
        topology.positions,
        seed=5,
        radio=reduced_carrier_sense_radio(1),
        propagation=no_shadowing_propagation(),
        data_rate_mbps=1,
    )
    flow1 = network.add_udp_flow([0, 1], payload_bytes=1470)
    flow2 = network.add_udp_flow([2, 3], payload_bytes=1470)
    pair = measure_pair(network, flow1, flow2, duration_s=MEASURE_S)
    regions = TwoLinkRegions(c11=pair.c11, c22=pair.c22, c31=pair.c31, c32=pair.c32)
    # Empirically test a point above the time-sharing line but inside the
    # three-point region: it should be achievable thanks to capture.
    x1, x2 = 0.8 * pair.c31, 0.8 * pair.c32
    above_time_share = not regions.in_time_sharing(x1, x2)
    outcome = apply_input_rates(
        network, [flow1, flow2], [x1, x2],
        loss_rates=[pair.loss1, pair.loss2], duration_s=MEASURE_S,
    )
    return pair, regions, above_time_share, outcome


def test_fig05_capture_recovered_by_three_point_model(benchmark):
    pair, regions, above_time_share, outcome = run_once(benchmark, _run)
    missed_fraction = regions.false_negative_error()
    report = ExperimentReport(
        "Figure 5", "IA pair at 1 Mb/s: region missed by the 2-point model"
    )
    report.add(
        f"c11={pair.c11/1e3:.0f} kb/s  c22={pair.c22/1e3:.0f} kb/s  "
        f"c31={pair.c31/1e3:.0f} kb/s  c32={pair.c32/1e3:.0f} kb/s  LIR={pair.lir:.2f}"
    )
    report.add_comparison(
        "fraction of the region missed by the 2-point (time-sharing) model",
        "~40% in the paper's extreme example",
        f"{missed_fraction:.0%}",
    )
    report.add(
        f"test point above the time-sharing line feasible in simulation: {outcome.feasible} "
        f"(achieved {[round(a/1e3) for a in outcome.achieved_bps]} kb/s)"
    )
    report.add("the 3-point model contains that point by construction: True")
    report.emit()
    # Shape: the pair is classified interfering by LIR yet capture lifts the
    # region above time-sharing, and the 3-point model recovers it.
    assert missed_fraction > 0.10
    assert above_time_share
    assert regions.in_three_point(0.8 * pair.c31, 0.8 * pair.c32)
