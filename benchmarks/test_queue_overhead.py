"""Queue overhead — submit→collect throughput per execution backend.

Not a paper figure: a harness figure.  The distributed backends pay for
their fault tolerance in protocol overhead (task files or HTTP round
trips, claim leases, poll ticks); this benchmark measures what that
costs by pushing one sweep of deliberately tiny cells through every
backend and comparing wall clocks against the inline serial reference.
The per-backend numbers land in ``BENCH_queue.json`` next to the
pytest-benchmark records, so queue-layer regressions show up as data,
not vibes:

* ``tasks_per_s`` — end-to-end submit→collect rate for the sweep;
* ``overhead_s_per_task`` — extra seconds per cell over serial (the
  queue machinery's cut: spawning drainers, claiming, heartbeating,
  polling, collecting);
* the planner stats of the sweep (duplicates, measured costs), for
  context.

Byte-identity across the backends is asserted here too — a throughput
number for a backend that returns different bytes would be worse than
useless.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis import ExperimentReport
from repro.experiment import (
    BatchRunner,
    BrokerBackend,
    ControllerSpec,
    ExperimentSpec,
    FlowSpec,
    ScenarioSpec,
    SerialBackend,
    WorkQueueBackend,
    seed_sweep,
)

#: Deliberately tiny cells: the simulation must be cheap enough that the
#: queue protocol, not the physics, dominates the measured difference.
TINY_SPEC = ExperimentSpec(
    scenario=ScenarioSpec(
        scenario="chain", seed=1, flows=(FlowSpec("udp", (0, 1, 2)),)
    ),
    controller=ControllerSpec(enabled=False),
    cycles=1,
    cycle_measure_s=0.3,
    settle_s=0.1,
    label="queue-overhead",
)
NUM_CELLS = 6
WORKERS = 2

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_queue.json"

#: Pre-PR-8 numbers, recorded before the keep-alive BrokerClient landed
#: (one fresh TCP connection per request) and before the broker grew its
#: durability store — the before/after context for the current record.
BASELINE = {
    "broker": {"overhead_s_per_task": 0.24, "tasks_per_s": 4.05},
    "work_queue": {"overhead_s_per_task": 0.224, "tasks_per_s": 4.34},
}


def _canonical(batch) -> str:
    return json.dumps(
        batch.to_dicts(include_runtime=False), sort_keys=True, separators=(",", ":")
    )


def _run_backend(name: str, sweep, tmp_path):
    server = None
    if name == "serial":
        backend = SerialBackend()
    elif name == "work_queue":
        backend = WorkQueueBackend(
            tmp_path / "queue", workers=WORKERS, timeout_s=300.0
        )
    elif name == "broker_durable":
        # The full journal-per-transition price: same sweep, same broker,
        # but every submit/claim/result lands in the store first.
        from repro.experiment.broker import start_broker

        server = start_broker(store_dir=tmp_path / "broker-store")
        backend = BrokerBackend(server.url, workers=WORKERS, timeout_s=300.0)
    else:
        backend = BrokerBackend(workers=WORKERS, timeout_s=300.0)
    try:
        start = time.perf_counter()
        batch = BatchRunner(sweep, backend=backend, cache=False).run()
        wall_s = time.perf_counter() - start
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()
    return batch, wall_s


def test_queue_overhead(benchmark, tmp_path):
    sweep = seed_sweep(TINY_SPEC, range(NUM_CELLS))

    measurements: dict[str, dict] = {}
    reference = None

    def measure_all():
        nonlocal reference
        for name in ("serial", "work_queue", "broker", "broker_durable"):
            batch, wall_s = _run_backend(name, sweep, tmp_path)
            if name == "serial":
                reference = _canonical(batch)
            record = {
                "wall_s": round(wall_s, 3),
                "tasks_per_s": round(NUM_CELLS / wall_s, 2),
                "bytes_match_serial": _canonical(batch) == reference,
                "planner": batch.planner.as_dict(),
            }
            if batch.queue is not None:
                record["queue"] = batch.queue.as_dict()
            measurements[name] = record
        serial_s = measurements["serial"]["wall_s"]
        for name, record in measurements.items():
            record["overhead_s_per_task"] = round(
                max(record["wall_s"] - serial_s, 0.0) / NUM_CELLS, 3
            )
        return measurements

    from conftest import run_once

    run_once(benchmark, measure_all)
    benchmark.extra_info["queue_overhead"] = measurements

    BENCH_PATH.write_text(
        json.dumps(
            {
                "num_cells": NUM_CELLS,
                "workers": WORKERS,
                "cell": TINY_SPEC.label,
                "backends": measurements,
                "baseline_pre_keepalive": BASELINE,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )

    report = ExperimentReport(
        "Queue overhead (harness figure)",
        f"{NUM_CELLS} tiny cells, {WORKERS} workers per distributed backend",
    )
    for name, record in measurements.items():
        report.add_comparison(
            f"{name} submit→collect",
            "bit-identical to serial",
            f"{record['tasks_per_s']:.2f} tasks/s "
            f"(+{record['overhead_s_per_task'] * 1e3:.0f} ms/task overhead)",
        )
    report.emit()

    for name, record in measurements.items():
        assert record["bytes_match_serial"], name
        # Sanity floor, not a performance bar: even on a loaded CI box the
        # queue layer must not add whole seconds per tiny task.
        assert record["overhead_s_per_task"] < 5.0, (name, record)
