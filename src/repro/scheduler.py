"""Event-queue implementations for the simulation kernel.

Two interchangeable schedulers back :class:`repro.engine.Simulator`:

* :class:`HeapScheduler` — the original binary heap of ``(time, seq,
  Event)`` tuples (every comparison at C level, ``seq`` unique so the
  ``Event`` never compares).
* :class:`CalendarScheduler` — a calendar queue tuned for the DCF's
  dense short-horizon timer churn: a window of fixed-width time buckets
  consumed in order (the bucket under the cursor kept sorted, buckets
  ahead plain unsorted lists), plus a spill heap for events beyond the
  window (TCP retransmission timers, probe cycles).  Scheduling into
  the window is an O(1) append instead of an O(log n) sift, and popping
  walks the sorted current bucket with a cursor.

Both preserve the kernel's total order **exactly**: events pop in
``(time, seq)`` order, so the two schedulers are byte-identical in
every simulation — the equivalence property suite
(``tests/test_scheduler_equivalence.py``) and the sim trace goldens
under both schedulers are the proof.

Shared semantics:

* ``push(time, seq, event)`` enqueues; ``seq`` values are unique and
  increase monotonically (the simulator's dispatch counter).
* ``pop_due(limit)`` removes and returns the next *live* entry with
  ``time <= limit``, or ``None``.  Lazily-cancelled entries are
  discarded (and their accounting settled) on the way.
* ``run_due(sim, limit)`` is the fused dispatch loop the unprofiled
  run path uses: it pops due entries and invokes their callbacks
  directly, advancing ``sim.now`` and accumulating into
  ``sim._processed`` (under ``try/finally``, so a raising callback
  loses no accounting).  Keeping the loop inside the scheduler lets
  each implementation cache its own hot state in locals instead of
  paying a method call per event; behaviour is identical to a
  ``pop_due`` loop, which the profiled run path still uses.
* ``note_cancelled()`` accounts a newly cancelled queued event and
  compacts the structure in place once dead entries dominate — the
  same ``(floor, majority)`` policy in both, so the two schedulers'
  raw entry counts agree at every step.
* ``len(scheduler)`` is the raw not-yet-popped entry count (live +
  lazily cancelled); ``live_count()`` is the live subset.

The bucketing function ``idx = int((time - base) * inv_width)`` is
monotone in ``time`` (subtraction, positive multiply and ``int``
truncation are all monotone for the non-negative operands involved), so
bucket order can never contradict time order; float rounding can at
worst land an entry one bucket *early*, which the push-time clamp to
the consume cursor absorbs (the entry joins the current bucket's sorted
remainder, still in exact ``(time, seq)`` position — its ``(time,
seq)`` exceeds every already-consumed entry because the simulator
clamps times to ``now`` and ``seq`` grows monotonically).
"""

from __future__ import annotations

from bisect import insort
from heapq import heapify, heappop, heappush

__all__ = [
    "CalendarScheduler",
    "HeapScheduler",
    "SCHEDULER_KINDS",
    "make_scheduler",
]

#: Compaction policy (shared by both schedulers): rebuild when more than
#: this many entries are cancelled AND they make up over half the raw
#: entry count.  The absolute floor keeps tiny queues from compacting on
#: every cancel; the fraction bounds memory at ~2x the live event count.
_COMPACT_MIN_CANCELLED = 64

#: Default calendar geometry.  The bucket width is a power of two
#: (2**-9 s ~ 1.95 ms) so the ``inv_width`` multiply is exact scaling;
#: 512 buckets give a 1 s window — backoff slots, SIFS/DIFS gaps, frame
#: airtimes, ACK timeouts and most TCP timers all land in the window,
#: while second-scale probe cycles spill to the heap tier.  Width was
#: chosen by sweeping the fig14 cell: ~2 ms buckets batch enough events
#: per slice (at the cell's ~2k events/s) to amortize the per-bucket
#: sort-and-advance work, where sub-millisecond buckets averaged under
#: one event each and paid a bucket transition per pop.
_DEFAULT_BUCKET_WIDTH_S = 2.0**-9
_DEFAULT_BUCKET_COUNT = 512


class HeapScheduler:
    """The classic binary-heap event queue (tuple-packed entries)."""

    __slots__ = ("_heap", "_cancelled")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, object]] = []
        self._cancelled = 0

    def push(self, time: float, seq: int, event: object) -> None:
        heappush(self._heap, (time, seq, event))

    def pop_due(self, limit: float):
        heap = self._heap
        while heap and heap[0][0] <= limit:
            entry = heappop(heap)
            if entry[2].cancelled:
                self._cancelled -= 1
                continue
            return entry
        return None

    def run_due(self, sim, limit: float) -> None:
        """Dispatch every live entry with ``time <= limit`` through
        ``entry.callback()``, maintaining ``sim.now``/``sim._processed``."""
        heap = self._heap
        pop = heappop
        processed = 0
        try:
            # ``heap`` stays a valid alias across callbacks: compaction
            # rebuilds the list in place.
            while heap and heap[0][0] <= limit:
                entry = pop(heap)
                event = entry[2]
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                sim.now = entry[0]
                processed += 1
                event.callback()
        finally:
            sim._processed += processed

    def note_cancelled(self) -> None:
        self._cancelled = cancelled = self._cancelled + 1
        heap = self._heap
        if cancelled > _COMPACT_MIN_CANCELLED and cancelled * 2 > len(heap):
            # In-place rebuild so any live alias of the heap list stays
            # valid.
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapify(heap)
            self._cancelled = 0

    def live_count(self) -> int:
        return sum(1 for entry in self._heap if not entry[2].cancelled)

    def __len__(self) -> int:
        return len(self._heap)


class CalendarScheduler:
    """Calendar queue: a bucketed window over near time, a heap beyond.

    The window covers ``[base, base + buckets * width)``.  Bucket ``i``
    holds entries whose bucketing index is ``i``.  Invariant: the bucket
    *under* the consume cursor is always sorted ascending (sorted once
    when the cursor reaches it) and consumed via an index; late arrivals
    are insorted into its unconsumed tail.  Buckets ahead of the cursor
    are plain unsorted lists, so push is an append.  The window anchors
    at virtual time zero (the simulator clamps event times to ``>=
    now >= 0``) and re-anchors only when it drains with spilled entries
    waiting: the calendar then jumps to the spill heap's minimum and
    migrates the next window's worth of entries into buckets.  Anchoring
    never depends on push order — a far-future timer scheduled before
    the near-term churn (a measurement-end alarm, a TCP retransmission
    clock) spills to the heap tier instead of dragging the window out to
    its own timestamp.  Sparse workloads never walk empty buckets
    between distant events either: a drained window skips straight to
    the migration path.

    Args:
        width_s: bucket width in virtual seconds (a power of two keeps
            the index arithmetic exact scaling).
        buckets: bucket count per window.
    """

    __slots__ = (
        "_width",
        "_inv_width",
        "_nbuckets",
        "_span",
        "_base",
        "_horizon",
        "_buckets",
        "_cur",
        "_cur_bucket",
        "_ptr",
        "_near",
        "_max_idx",
        "_far",
        "_cancelled",
    )

    def __init__(
        self,
        width_s: float = _DEFAULT_BUCKET_WIDTH_S,
        buckets: int = _DEFAULT_BUCKET_COUNT,
    ) -> None:
        if width_s <= 0.0:
            raise ValueError("bucket width must be positive")
        if buckets < 1:
            raise ValueError("bucket count must be at least 1")
        self._width = width_s
        self._inv_width = 1.0 / width_s
        self._nbuckets = buckets
        self._span = width_s * buckets
        self._base = 0.0
        self._horizon = self._span
        self._buckets: list[list[tuple[float, int, object]]] = [
            [] for _ in range(buckets)
        ]
        self._cur = 0
        self._cur_bucket = self._buckets[0]
        self._ptr = 0
        self._near = 0  # unconsumed entries in the bucket window
        # Upper bound on the highest occupied bucket index: compaction
        # and live counting scan [cur+1, max_idx] instead of the whole
        # window (an over-estimate is harmless, a miss would leak).
        self._max_idx = 0
        self._far: list[tuple[float, int, object]] = []
        self._cancelled = 0

    # ------------------------------------------------------------------ push
    def push(self, time: float, seq: int, event: object) -> None:
        if time < self._horizon:
            idx = int((time - self._base) * self._inv_width)
            if idx > self._cur:
                if idx >= self._nbuckets:
                    # float overshoot at the window edge: the top two
                    # partitions merge, which stays monotone.
                    idx = self._nbuckets - 1
                self._buckets[idx].append((time, seq, event))
                if idx > self._max_idx:
                    self._max_idx = idx
            else:
                # Current bucket (or a time before the window base — a
                # float-rounding undershoot, a past-clamped timestamp,
                # or a push right after re-anchoring at the spill
                # minimum): join the sorted remainder in exact order —
                # every consumed entry precedes (time, seq).
                insort(self._cur_bucket, (time, seq, event), lo=self._ptr)
            self._near += 1
        else:
            heappush(self._far, (time, seq, event))

    def _anchor(self, time: float) -> None:
        """Re-anchor the (empty) window so ``time`` lands in bucket 0."""
        self._base = time
        self._horizon = time + self._span
        self._cur = 0
        self._cur_bucket = self._buckets[0]
        self._ptr = 0
        self._max_idx = 0

    # ------------------------------------------------------------------- pop
    def pop_due(self, limit: float):
        while True:
            bucket = self._cur_bucket
            ptr = self._ptr
            if ptr < len(bucket):
                entry = bucket[ptr]
                if entry[0] > limit:
                    return None
                self._ptr = ptr + 1
                self._near -= 1
                if entry[2].cancelled:
                    self._cancelled -= 1
                    continue
                return entry
            if not self._advance(limit):
                return None

    def run_due(self, sim, limit: float) -> None:
        """Dispatch every live entry with ``time <= limit`` through
        ``entry.callback()``, maintaining ``sim.now``/``sim._processed``.

        The ``bucket`` alias stays valid across callbacks: pushes into
        the current bucket insort in place, compaction filters it in
        place, and re-anchoring only happens once the queue is fully
        drained (inside :meth:`_advance`, never inside a callback).
        ``self._ptr`` *is* reloaded every iteration because compaction
        resets it, and ``len(bucket)`` is re-read because late arrivals
        grow the unconsumed tail.
        """
        processed = 0
        try:
            while True:
                bucket = self._cur_bucket
                while True:
                    ptr = self._ptr
                    if ptr >= len(bucket):
                        break
                    entry = bucket[ptr]
                    time = entry[0]
                    if time > limit:
                        return
                    self._ptr = ptr + 1
                    self._near -= 1
                    event = entry[2]
                    if event.cancelled:
                        self._cancelled -= 1
                        continue
                    sim.now = time
                    processed += 1
                    event.callback()
                if not self._advance(limit):
                    return
        finally:
            sim._processed += processed

    def _advance(self, limit: float) -> bool:
        """Move the cursor past the exhausted current bucket.

        Returns True when a new sorted current bucket is in place, False
        when the queue is idle up to ``limit`` (drained, or the next
        spilled entry lies beyond it).
        """
        bucket = self._cur_bucket
        if bucket:
            bucket.clear()
        self._ptr = 0
        if self._near:
            # Somewhere ahead in the window a bucket is non-empty
            # (buckets behind the cursor are consumed and cleared).
            cur = self._cur + 1
            buckets = self._buckets
            while not buckets[cur]:
                cur += 1
            self._cur = cur
            bucket = buckets[cur]
            bucket.sort()
            self._cur_bucket = bucket
            return True
        # Window drained: migrate the spill heap or stay idle in place.
        far = self._far
        if not far or far[0][0] > limit:
            return False
        self._anchor(far[0][0])
        horizon = self._horizon
        buckets = self._buckets
        base = self._base
        inv_width = self._inv_width
        near = 0
        max_idx = 0
        nbuckets_top = self._nbuckets - 1
        while far and far[0][0] < horizon:
            entry = heappop(far)
            idx = int((entry[0] - base) * inv_width)
            if idx > nbuckets_top:
                idx = nbuckets_top  # float overshoot at the window edge
            buckets[idx].append(entry)
            if idx > max_idx:
                max_idx = idx
            near += 1
        self._near = near
        self._max_idx = max_idx
        # Find and sort the first occupied bucket (bucket 0 always
        # holds the migrated minimum, but stay defensive).
        cur = 0
        while not buckets[cur]:
            cur += 1  # pragma: no cover - bucket 0 holds the minimum
        self._cur = cur
        bucket = buckets[cur]
        bucket.sort()
        self._cur_bucket = bucket
        return True

    # ---------------------------------------------------------- cancellation
    def note_cancelled(self) -> None:
        self._cancelled = cancelled = self._cancelled + 1
        if cancelled > _COMPACT_MIN_CANCELLED and cancelled * 2 > (
            self._near + len(self._far)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop lazily-cancelled entries from every tier, in place."""
        live_far = [entry for entry in self._far if not entry[2].cancelled]
        heapify(live_far)
        self._far = live_far
        near = 0
        current = self._cur_bucket
        # The current bucket keeps only its unconsumed live tail;
        # filtering preserves sort order, so the cursor restarts at 0.
        current[:] = [
            entry for entry in current[self._ptr :] if not entry[2].cancelled
        ]
        self._ptr = 0
        near += len(current)
        buckets = self._buckets
        for i in range(self._cur + 1, self._max_idx + 1):
            bucket = buckets[i]
            if bucket:
                bucket[:] = [entry for entry in bucket if not entry[2].cancelled]
                near += len(bucket)
        self._near = near
        self._cancelled = 0

    # --------------------------------------------------------------- queries
    def live_count(self) -> int:
        count = sum(1 for entry in self._far if not entry[2].cancelled)
        current = self._cur_bucket
        count += sum(
            1 for entry in current[self._ptr :] if not entry[2].cancelled
        )
        buckets = self._buckets
        for i in range(self._cur + 1, self._max_idx + 1):
            bucket = buckets[i]
            if bucket:
                count += sum(1 for entry in bucket if not entry[2].cancelled)
        return count

    def __len__(self) -> int:
        return self._near + len(self._far)


#: Registered scheduler kinds, in documentation order.
SCHEDULER_KINDS = ("calendar", "heap")


def make_scheduler(kind: str):
    """Instantiate the scheduler named ``kind`` (see ``SCHEDULER_KINDS``)."""
    if kind == "calendar":
        return CalendarScheduler()
    if kind == "heap":
        return HeapScheduler()
    raise ValueError(
        f"unknown scheduler {kind!r}; expected one of {', '.join(SCHEDULER_KINDS)}"
    )
