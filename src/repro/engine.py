"""Discrete-event simulation kernel.

A minimal, dependency-free event scheduler: the heap holds plain
``(time, seq, Event)`` tuples so every heap comparison happens at C
level (``seq`` is unique, so the ``Event`` object itself is never
compared).  Cancellation is handled lazily by flagging the event and
skipping it when popped, which keeps both ``schedule`` and ``cancel``
O(log n) / O(1); the simulator counts cancelled-but-queued entries and
compacts the heap in place once they dominate it, so a workload that
schedules and cancels in a loop cannot grow the heap without bound.

Every stochastic component of the simulator draws from RNG streams
derived from the simulator seed, so a given scenario replays identically
across runs — a property the test suite and benchmark harness rely on.

Profiling: the run loop has a duck-typed hook (see
:mod:`repro.sim.profile`).  When a profiler is installed — per instance
via :attr:`Simulator.profiler` or process-wide via
:func:`set_default_profiler` — the loop times each callback with the
profiler's own clock and reports ``(callback, elapsed)`` pairs to it.
The engine itself never touches a wall clock (lint rule RPL104); the
clock lives in the profiler module, which is the one sanctioned
exclusion.
"""

from __future__ import annotations

import heapq
import itertools
import zlib
from typing import Callable

import numpy as np

#: Compaction policy: rebuild the heap when more than this many entries
#: are cancelled AND they make up over half the heap.  The absolute
#: floor keeps tiny heaps from compacting on every cancel; the fraction
#: bounds memory at ~2x the live event count.
_COMPACT_MIN_CANCELLED = 64

#: Process-wide fallback profiler (see :func:`set_default_profiler`).
_DEFAULT_PROFILER = None


def set_default_profiler(profiler) -> object:
    """Install ``profiler`` as the fallback for every :class:`Simulator`.

    Returns the previous default so callers can restore it.  Simulators
    with an explicit :attr:`Simulator.profiler` keep their own.  The
    profiler is duck-typed: it needs a ``clock()`` returning seconds as
    a float and a ``record(callback, elapsed_s)`` method.
    """
    global _DEFAULT_PROFILER
    previous = _DEFAULT_PROFILER
    _DEFAULT_PROFILER = profiler
    return previous


def rng_spawn_key(name: str) -> int:
    """Stable 32-bit spawn key for a named RNG stream.

    A CRC32 of the UTF-8 name rather than ``hash(name)``: Python's string
    hash is salted per process (PYTHONHASHSEED), which would give every
    worker of a parallel batch run a different random stream for the same
    component and break run-to-run reproducibility.
    """
    return zlib.crc32(name.encode("utf-8"))


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`."""

    __slots__ = ("time", "seq", "callback", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        sim: "Simulator | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time arrives."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        state = " cancelled" if self.cancelled else ""
        return f"Event(time={self.time!r}, seq={self.seq}{state})"


class Simulator:
    """Event loop with virtual time.

    Args:
        seed: master seed; per-component RNG streams are spawned from it
            via :meth:`rng_stream` so adding a component never perturbs
            the random draws of another.
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.seed = seed
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._rng = np.random.default_rng(seed)
        self._streams: dict[str, np.random.Generator] = {}
        self._processed = 0
        self._cancelled_pending = 0
        #: Optional per-instance profiler (duck-typed, see module docs).
        self.profiler = None

    # ------------------------------------------------------------------ RNG
    def rng_stream(self, name: str) -> np.random.Generator:
        """A named, reproducible RNG stream derived from the master seed."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(
                np.random.SeedSequence(entropy=self.seed, spawn_key=(rng_spawn_key(name),))
            )
        return self._streams[name]

    # ------------------------------------------------------------ scheduling
    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        now = self.now
        if time < now:
            if time < now - 1e-12:
                raise ValueError(f"cannot schedule in the past: {time} < {now}")
            time = now
        seq = next(self._counter)
        event = Event(time, seq, callback, self)
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        time = self.now + delay
        seq = next(self._counter)
        event = Event(time, seq, callback, self)
        heapq.heappush(self._heap, (time, seq, event))
        return event

    # ----------------------------------------------------------- cancellation
    def _note_cancelled(self) -> None:
        """Account a newly cancelled queued event; compact when they dominate."""
        self._cancelled_pending = cancelled = self._cancelled_pending + 1
        heap = self._heap
        if cancelled > _COMPACT_MIN_CANCELLED and cancelled * 2 > len(heap):
            # In-place rebuild so any live alias of the heap list (the
            # run loop holds one) stays valid.
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapq.heapify(heap)
            self._cancelled_pending = 0

    # --------------------------------------------------------------- running
    def run_until(self, end_time: float) -> None:
        """Process events in order until virtual time reaches ``end_time``."""
        profiler = self.profiler if self.profiler is not None else _DEFAULT_PROFILER
        if profiler is not None:
            self._run_until_profiled(end_time, profiler)
            return
        heap = self._heap
        pop = heapq.heappop
        processed = self._processed
        try:
            while heap and heap[0][0] <= end_time:
                time, _seq, event = pop(heap)
                if event.cancelled:
                    self._cancelled_pending -= 1
                    continue
                self.now = time
                processed += 1
                event.callback()
        finally:
            self._processed = processed
        if end_time > self.now:
            self.now = end_time

    def _run_until_profiled(self, end_time: float, profiler) -> None:
        """The run loop with per-callback timing via ``profiler``.

        Kept separate so the unprofiled loop pays nothing; the clock is
        the profiler's own (the engine stays wall-clock free).
        """
        heap = self._heap
        pop = heapq.heappop
        clock = profiler.clock
        record = profiler.record
        while heap and heap[0][0] <= end_time:
            time, _seq, event = pop(heap)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self.now = time
            self._processed += 1
            callback = event.callback
            start = clock()
            callback()
            record(callback, clock() - start)
        if end_time > self.now:
            self.now = end_time

    def run(self) -> None:
        """Process every pending event (use with care: sources that
        reschedule themselves forever will never drain)."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            time, _seq, event = pop(heap)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self.now = time
            self._processed += 1
            event.callback()

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for entry in self._heap if not entry[2].cancelled)

    @property
    def queued_entries(self) -> int:
        """Raw heap size including lazily-cancelled entries (diagnostics)."""
        return len(self._heap)

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._processed
