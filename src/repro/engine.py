"""Discrete-event simulation kernel.

A minimal, dependency-free event scheduler.  The event queue itself is
pluggable (see :mod:`repro.scheduler`): the default is a calendar queue
— a window of fixed-width time buckets tuned for the DCF's dense
short-horizon timer churn — with the original binary heap selectable as
a fallback (``Simulator(scheduler="heap")``).  Both queues pop events
in exactly ``(time, seq)`` order, so the choice can never change a
simulation result; the equivalence property suite and the sim trace
goldens pin this byte-for-byte.

Cancellation is handled lazily by flagging the event and skipping it
when popped, which keeps both ``schedule`` and ``cancel`` cheap; the
scheduler counts cancelled-but-queued entries and compacts in place
once they dominate, so a workload that schedules and cancels in a loop
cannot grow the queue without bound.

Every stochastic component of the simulator draws from RNG streams
derived from the simulator seed, so a given scenario replays identically
across runs — a property the test suite and benchmark harness rely on.

Profiling: the run loop has a duck-typed hook (see
:mod:`repro.sim.profile`).  When a profiler is installed — per instance
via :attr:`Simulator.profiler` or process-wide via
:func:`set_default_profiler` — the loop times each callback with the
profiler's own clock and reports ``(callback, elapsed)`` pairs to it.
The engine itself never touches a wall clock (lint rule RPL104); the
clock lives in the profiler module, which is the one sanctioned
exclusion.
"""

from __future__ import annotations

import os
import zlib
from typing import Callable

import numpy as np

from repro.scheduler import SCHEDULER_KINDS, make_scheduler

#: Environment override for the process-wide default scheduler kind —
#: how the CI ``sim-identity`` matrix runs the identity suites under
#: both queues without plumbing a parameter through every layer.
SCHEDULER_ENV = "REPRO_SIM_SCHEDULER"

#: Built-in default when neither the constructor nor the environment
#: chooses: the calendar queue (the heap remains selectable).
DEFAULT_SCHEDULER = "calendar"

#: Process-wide fallback profiler (see :func:`set_default_profiler`).
_DEFAULT_PROFILER = None


def set_default_profiler(profiler) -> object:
    """Install ``profiler`` as the fallback for every :class:`Simulator`.

    Returns the previous default so callers can restore it.  Simulators
    with an explicit :attr:`Simulator.profiler` keep their own.  The
    profiler is duck-typed: it needs a ``clock()`` returning seconds as
    a float and a ``record(callback, elapsed_s)`` method.
    """
    global _DEFAULT_PROFILER
    previous = _DEFAULT_PROFILER
    _DEFAULT_PROFILER = profiler
    return previous


def rng_spawn_key(name: str) -> int:
    """Stable 32-bit spawn key for a named RNG stream.

    A CRC32 of the UTF-8 name rather than ``hash(name)``: Python's string
    hash is salted per process (PYTHONHASHSEED), which would give every
    worker of a parallel batch run a different random stream for the same
    component and break run-to-run reproducibility.
    """
    return zlib.crc32(name.encode("utf-8"))


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`."""

    __slots__ = ("time", "seq", "callback", "cancelled", "_sched")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        sched=None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._sched = sched

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time arrives."""
        if not self.cancelled:
            self.cancelled = True
            if self._sched is not None:
                self._sched.note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        state = " cancelled" if self.cancelled else ""
        return f"Event(time={self.time!r}, seq={self.seq}{state})"


class Simulator:
    """Event loop with virtual time.

    Args:
        seed: master seed; per-component RNG streams are spawned from it
            via :meth:`rng_stream` so adding a component never perturbs
            the random draws of another.
        scheduler: event-queue kind, ``"calendar"`` or ``"heap"`` (see
            :mod:`repro.scheduler`).  ``None`` (the default) resolves
            the ``REPRO_SIM_SCHEDULER`` environment variable, falling
            back to the calendar queue.  Both kinds dispatch events in
            identical order, so this is a performance knob, never a
            behaviour knob.
    """

    def __init__(self, seed: int = 0, scheduler: str | None = None) -> None:
        self.now: float = 0.0
        self.seed = seed
        if scheduler is None:
            scheduler = os.environ.get(SCHEDULER_ENV) or DEFAULT_SCHEDULER
        if scheduler not in SCHEDULER_KINDS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; "
                f"expected one of {', '.join(SCHEDULER_KINDS)}"
            )
        self.scheduler_kind = scheduler
        self._sched = make_scheduler(scheduler)
        self._push = self._sched.push
        self._pop_due = self._sched.pop_due
        self._run_due = self._sched.run_due
        self._seq = 0
        self._rng = np.random.default_rng(seed)
        self._streams: dict[str, np.random.Generator] = {}
        self._processed = 0
        #: Optional per-instance profiler (duck-typed, see module docs).
        self.profiler = None
        #: Attachment point for run-time monitors (duck-typed, see
        #: :mod:`repro.monitors`).  Follows the profiler-hook pattern:
        #: the run loop never reads it — an attached
        #: :class:`~repro.monitors.MonitorHost` schedules ordinary
        #: events for its sampling windows — so a simulation with no
        #: monitors pays nothing, not even an attribute test per event.
        self.monitors = None

    # ------------------------------------------------------------------ RNG
    def rng_stream(self, name: str) -> np.random.Generator:
        """A named, reproducible RNG stream derived from the master seed."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(
                np.random.SeedSequence(entropy=self.seed, spawn_key=(rng_spawn_key(name),))
            )
        return self._streams[name]

    # ------------------------------------------------------------ scheduling
    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        now = self.now
        if time < now:
            if time < now - 1e-12:
                raise ValueError(f"cannot schedule in the past: {time} < {now}")
            time = now
        self._seq = seq = self._seq + 1
        event = Event(time, seq, callback, self._sched)
        self._push(time, seq, event)
        return event

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        time = self.now + delay
        self._seq = seq = self._seq + 1
        event = Event(time, seq, callback, self._sched)
        self._push(time, seq, event)
        return event

    # --------------------------------------------------------------- running
    def run_until(self, end_time: float) -> None:
        """Process events in order until virtual time reaches ``end_time``."""
        profiler = self.profiler if self.profiler is not None else _DEFAULT_PROFILER
        if profiler is not None:
            self._run_until_profiled(end_time, profiler)
            return
        # The dispatch loop lives in the scheduler (``run_due``) so each
        # queue keeps its hot state in locals instead of paying a
        # ``pop_due`` call per event.
        self._run_due(self, end_time)
        if end_time > self.now:
            self.now = end_time

    def _run_until_profiled(self, end_time: float, profiler) -> None:
        """The run loop with per-callback timing via ``profiler``.

        Kept separate so the unprofiled loop pays nothing; the clock is
        the profiler's own (the engine stays wall-clock free).
        """
        pop_due = self._pop_due
        clock = profiler.clock
        record = profiler.record
        while True:
            entry = pop_due(end_time)
            if entry is None:
                break
            self.now = entry[0]
            self._processed += 1
            callback = entry[2].callback
            start = clock()
            callback()
            record(callback, clock() - start)
        if end_time > self.now:
            self.now = end_time

    def run(self) -> None:
        """Process every pending event (use with care: sources that
        reschedule themselves forever will never drain)."""
        self._run_due(self, float("inf"))

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return self._sched.live_count()

    @property
    def queued_entries(self) -> int:
        """Raw queue size including lazily-cancelled entries (diagnostics)."""
        return len(self._sched)

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._processed
