"""Discrete-event simulation kernel.

A minimal, dependency-free event scheduler: events are (time, sequence,
callback) triples kept in a binary heap.  Cancellation is handled lazily
by flagging the event and skipping it when popped, which keeps both
``schedule`` and ``cancel`` O(log n) / O(1).

Every stochastic component of the simulator draws from RNG streams
derived from the simulator seed, so a given scenario replays identically
across runs — a property the test suite and benchmark harness rely on.
"""

from __future__ import annotations

import heapq
import itertools
import zlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np


def rng_spawn_key(name: str) -> int:
    """Stable 32-bit spawn key for a named RNG stream.

    A CRC32 of the UTF-8 name rather than ``hash(name)``: Python's string
    hash is salted per process (PYTHONHASHSEED), which would give every
    worker of a parallel batch run a different random stream for the same
    component and break run-to-run reproducibility.
    """
    return zlib.crc32(name.encode("utf-8"))


@dataclass(order=True)
class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time arrives."""
        self.cancelled = True


class Simulator:
    """Event loop with virtual time.

    Args:
        seed: master seed; per-component RNG streams are spawned from it
            via :meth:`rng_stream` so adding a component never perturbs
            the random draws of another.
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.seed = seed
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._rng = np.random.default_rng(seed)
        self._streams: dict[str, np.random.Generator] = {}
        self._processed = 0

    # ------------------------------------------------------------------ RNG
    def rng_stream(self, name: str) -> np.random.Generator:
        """A named, reproducible RNG stream derived from the master seed."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(
                np.random.SeedSequence(entropy=self.seed, spawn_key=(rng_spawn_key(name),))
            )
        return self._streams[name]

    # ------------------------------------------------------------ scheduling
    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self.now - 1e-12:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        event = Event(time=max(time, self.now), seq=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self.now + delay, callback)

    # --------------------------------------------------------------- running
    def run_until(self, end_time: float) -> None:
        """Process events in order until virtual time reaches ``end_time``."""
        while self._heap and self._heap[0].time <= end_time:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._processed += 1
            event.callback()
        self.now = max(self.now, end_time)

    def run(self) -> None:
        """Process every pending event (use with care: sources that
        reschedule themselves forever will never drain)."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._processed += 1
            event.callback()

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._processed
