"""repro — reproduction of "Online Optimization of 802.11 Mesh Networks"
(Salonidis, Sotiropoulos, Guérin, Govindan — ACM CoNEXT 2009).

The package is organised as the paper's system is:

* :mod:`repro.phy`, :mod:`repro.mac`, :mod:`repro.net`,
  :mod:`repro.transport`, :mod:`repro.sim` — the substrate: a packet-level
  802.11 DCF mesh simulator standing in for the paper's 18-node testbed.
* :mod:`repro.core` — the contribution: the convex feasibility-region
  model, its online estimation (capacity representation, channel-loss
  estimator, two-hop interference) and the utility-maximising
  rate-control loop.
* :mod:`repro.experiment` — the declarative front door: frozen
  specification dataclasses, a named scenario registry, the
  :class:`Experiment` runner, and a multi-seed :class:`BatchRunner`
  that plans sweeps (dedup, cache resolution, cost ordering) and
  executes them on pluggable backends (serial, process pool, a
  shared-directory work queue remote hosts can drain, or an HTTP
  broker so the fleet needs only a URL in common) — with lease-based
  claims and per-task retries, so a worker killed mid-task costs one
  lease interval, not the sweep.
* :mod:`repro.analysis` — metrics and reporting used by the benchmark
  harness that regenerates every figure of the paper's evaluation.

Quickstart — declare a scenario, run it, read typed results::

    from repro import ControllerSpec, Experiment, ExperimentSpec, FlowSpec, ScenarioSpec

    spec = ExperimentSpec(
        scenario=ScenarioSpec(
            scenario="chain",                 # a registered scenario name
            seed=1,
            flows=(FlowSpec("udp", (0, 1, 2)), FlowSpec("udp", (1, 2))),
        ),
        controller=ControllerSpec(alpha=1.0), # proportional fairness
        cycles=1,
        cycle_measure_s=10.0,
    )
    result = Experiment(spec).run()
    print(result.flow_throughputs_bps, result.jain_index)
    decision = result.final_cycle.decision   # full ControlDecision per cycle

Sweep seeds through a planned, pluggable backend — duplicates simulate
once, cache hits resolve before fan-out, and serial, process-pool and
work-queue execution all return byte-identical results::

    from repro import BatchRunner, seed_sweep

    from repro import WorkQueueBackend

    sweep = seed_sweep(spec, range(4))
    batch = BatchRunner(sweep).run()          # local process pool
    batch = BatchRunner(                      # shared-dir queue: remote
        sweep,                                # hosts join by running
        backend=WorkQueueBackend("/mnt/q"),   # python -m repro.experiment.worker /mnt/q
    ).run()
    print(batch.report().render())

Cache results on disk so repeated sweep cells skip the simulation
(:class:`repro.ResultCache` keys on a content digest of the spec;
exporting ``REPRO_CACHE_DIR`` enables it everywhere by default)::

    from repro import ResultCache

    cache = ResultCache("~/.cache/repro-mesh")
    warm = BatchRunner(seed_sweep(spec, range(4)), cache=cache).run()
    print(warm.cache_hits, cache.stats.hit_rate)

The original imperative path still works — build a
:class:`repro.sim.MeshNetwork`, add flows, enable probing and drive a
:class:`repro.core.OnlineOptimizer` by hand — and is what the spec layer
is built on.
"""

from repro.experiment import (
    BackendError,
    BatchResult,
    BatchRunner,
    BrokerBackend,
    CacheStats,
    ControllerSpec,
    CycleResult,
    ExecutionBackend,
    Experiment,
    ExperimentResult,
    ExperimentSpec,
    FlowSpec,
    NO_RATE_CONTROL,
    PlannerStats,
    ProbingSpec,
    ProcessPoolBackend,
    RadioSpec,
    ResultCache,
    ScenarioSpec,
    SerialBackend,
    SpecError,
    SweepPlan,
    SweepPlanner,
    TopologySpec,
    WorkloadSpec,
    WorkQueueBackend,
    backend_names,
    build_scenario,
    default_cache,
    register_scenario,
    resolve_backend,
    run_experiment,
    scenario_description,
    scenario_names,
    seed_sweep,
    spec_digest,
)

__version__ = "1.10.0"

__all__ = [
    "phy",
    "mac",
    "net",
    "transport",
    "sim",
    "core",
    "analysis",
    "experiment",
    "BackendError",
    "BatchResult",
    "BatchRunner",
    "BrokerBackend",
    "CacheStats",
    "ControllerSpec",
    "CycleResult",
    "ExecutionBackend",
    "Experiment",
    "ExperimentResult",
    "ExperimentSpec",
    "FlowSpec",
    "NO_RATE_CONTROL",
    "PlannerStats",
    "ProbingSpec",
    "ProcessPoolBackend",
    "RadioSpec",
    "ResultCache",
    "ScenarioSpec",
    "SerialBackend",
    "SpecError",
    "SweepPlan",
    "SweepPlanner",
    "TopologySpec",
    "WorkloadSpec",
    "WorkQueueBackend",
    "backend_names",
    "build_scenario",
    "default_cache",
    "register_scenario",
    "resolve_backend",
    "run_experiment",
    "scenario_description",
    "scenario_names",
    "seed_sweep",
    "spec_digest",
    "__version__",
]
