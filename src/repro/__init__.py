"""repro — reproduction of "Online Optimization of 802.11 Mesh Networks"
(Salonidis, Sotiropoulos, Guérin, Govindan — ACM CoNEXT 2009).

The package is organised as the paper's system is:

* :mod:`repro.phy`, :mod:`repro.mac`, :mod:`repro.net`,
  :mod:`repro.transport`, :mod:`repro.sim` — the substrate: a packet-level
  802.11 DCF mesh simulator standing in for the paper's 18-node testbed.
* :mod:`repro.core` — the contribution: the convex feasibility-region
  model, its online estimation (capacity representation, channel-loss
  estimator, two-hop interference) and the utility-maximising
  rate-control loop.
* :mod:`repro.analysis` — metrics and reporting used by the benchmark
  harness that regenerates every figure of the paper's evaluation.

Quickstart::

    from repro.sim import MeshNetwork, testbed_positions, testbed_propagation
    from repro.core import OnlineOptimizer, PROPORTIONAL_FAIR

    net = MeshNetwork(testbed_positions(), seed=1,
                      propagation=testbed_propagation(), data_rate_mbps=11)
    flow = net.add_tcp_flow([0, 1, 4])
    net.enable_probing()
    net.run(120.0)                      # let probes accumulate
    controller = OnlineOptimizer(net, [flow])
    decision = controller.run_cycle()   # estimate, optimize, shape
    flow.start()
    net.run(30.0)
"""

__version__ = "1.0.0"

__all__ = ["phy", "mac", "net", "transport", "sim", "core", "analysis", "__version__"]
