"""CLI: ``python -m repro.lint [paths...]``.

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage error (argparse).
CI runs ``python -m repro.lint src --format json`` as a required job.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.config import LintConfig
from repro.lint.engine import iter_rule_docs, lint_paths, render_text
from repro.lint.rules.schema import find_specs_module, write_fingerprint


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based determinism & atomic-IO analyzer enforcing the "
            "repo's reproducibility invariants (see docs/lint.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--disable",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    parser.add_argument(
        "--schema-fingerprint",
        default=None,
        metavar="PATH",
        help="override the recorded spec-schema fingerprint location "
        "(default: tests/experiment/golden/spec_schema_fingerprint.json)",
    )
    parser.add_argument(
        "--write-schema-fingerprint",
        action="store_true",
        help="recompute and record the spec-schema fingerprint (RPL301), "
        "then exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    config = LintConfig.default()
    if args.schema_fingerprint:
        config = LintConfig(
            rule_scopes=config.rule_scopes,
            rule_excludes=config.rule_excludes,
            blessed_unlink_functions=config.blessed_unlink_functions,
            schema_fingerprint_path=args.schema_fingerprint,
        )

    if args.rules:
        for code, name, summary in iter_rule_docs():
            print(f"{code}  {name:<24} {summary}")
        return 0

    if args.write_schema_fingerprint:
        for raw in args.paths:
            specs_path = find_specs_module(Path(raw))
            if specs_path is not None:
                record = write_fingerprint(
                    specs_path, Path(config.schema_fingerprint_path)
                )
                print(
                    f"recorded spec schema v{record['spec_schema_version']} "
                    f"fingerprint {record['fingerprint'][:12]}... at "
                    f"{config.schema_fingerprint_path}"
                )
                return 0
        print("error: no experiment/specs.py found under the given paths",
              file=sys.stderr)
        return 2

    try:
        report = lint_paths(args.paths, config)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    selected = (
        {code.strip().upper() for code in args.select.split(",") if code.strip()}
        if args.select
        else None
    )
    disabled = (
        {code.strip().upper() for code in args.disable.split(",") if code.strip()}
        if args.disable
        else set()
    )
    report.findings = [
        finding
        for finding in report.findings
        if (selected is None or finding.code in selected)
        and finding.code not in disabled
    ]

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_text(report))
    return 1 if report.findings else 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly without
        # letting the interpreter flush stdout into a second error.
        sys.stderr.close()
        raise SystemExit(0)
