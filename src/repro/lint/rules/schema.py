"""RPL3xx — schema discipline: spec fields cannot move silently.

Every cached result and golden fixture is keyed by
``spec_digest(spec)`` = sha256 of the canonical spec dict mixed with
``SPEC_SCHEMA_VERSION``.  Adding, removing or renaming a field on any
spec dataclass changes every canonical dict — so the version **must**
be bumped, or stale cache entries and goldens silently keep matching
dicts they no longer describe.

``RPL301`` machine-enforces that: the set of canonical field names in
``experiment/specs.py`` is fingerprinted from the AST and cross-checked
against a recorded fingerprint stored alongside the goldens
(``tests/experiment/golden/spec_schema_fingerprint.json``).  A field
change with an unchanged ``SPEC_SCHEMA_VERSION`` is a finding; a version
bump without refreshing the recorded fingerprint is a finding telling
you to run ``python -m repro.lint --write-schema-fingerprint``.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Any, Iterator

from repro.lint.engine import Finding, ProjectContext
from repro.lint.rules import ProjectRule, register

__all__ = [
    "SchemaFingerprintRule",
    "compute_fingerprint",
    "find_specs_module",
    "read_recorded_fingerprint",
    "write_fingerprint",
]


def _is_dataclass_decorator(node: ast.expr) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Name):
        return target.id == "dataclass"
    if isinstance(target, ast.Attribute):
        return target.attr == "dataclass"
    return False


def _is_classvar(annotation: ast.expr) -> bool:
    target = annotation.value if isinstance(annotation, ast.Subscript) else annotation
    if isinstance(target, ast.Name):
        return target.id == "ClassVar"
    if isinstance(target, ast.Attribute):
        return target.attr == "ClassVar"
    return False


def extract_schema(source: str) -> tuple[int | None, dict[str, list[str]]]:
    """``(SPEC_SCHEMA_VERSION, {dataclass: sorted field names})`` parsed
    statically from a ``specs.py`` source text."""
    tree = ast.parse(source)
    version: int | None = None
    classes: dict[str, list[str]] = {}
    for node in tree.body:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "SPEC_SCHEMA_VERSION"
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)
                ):
                    version = node.value.value
        if not isinstance(node, ast.ClassDef):
            continue
        if not any(_is_dataclass_decorator(d) for d in node.decorator_list):
            continue
        fields = [
            stmt.target.id
            for stmt in node.body
            if isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and not stmt.target.id.startswith("_")
            and not _is_classvar(stmt.annotation)
        ]
        classes[node.name] = sorted(fields)
    return version, classes


def compute_fingerprint(classes: dict[str, list[str]]) -> str:
    """Stable content address of the spec field sets."""
    canonical = json.dumps(classes, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def find_specs_module(root: Path) -> Path | None:
    """The ``experiment/specs.py`` under ``root``, if there is one."""
    candidates = sorted(
        path
        for path in root.rglob("specs.py")
        if path.parent.name == "experiment" and "__pycache__" not in path.parts
    )
    return candidates[0] if candidates else None


def read_recorded_fingerprint(path: Path) -> dict[str, Any] | None:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def write_fingerprint(specs_path: Path, record_path: Path) -> dict[str, Any]:
    """Recompute and record the fingerprint (``--write-schema-fingerprint``).

    The record keeps the per-class field lists alongside the digest so a
    mismatch diff is human-readable in review.
    """
    from repro.experiment.fsio import atomic_write_text

    version, classes = extract_schema(specs_path.read_text(encoding="utf-8"))
    record = {
        "spec_schema_version": version,
        "fingerprint": compute_fingerprint(classes),
        "classes": classes,
    }
    record_path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(record_path, json.dumps(record, indent=2, sort_keys=True) + "\n")
    return record


def _diff_classes(
    recorded: dict[str, Any], current: dict[str, list[str]]
) -> str:
    """A compact field-level diff for the finding message."""
    old = recorded if isinstance(recorded, dict) else {}
    changes: list[str] = []
    for name in sorted(set(old) | set(current)):
        before = set(old.get(name, ()) or ())
        after = set(current.get(name, ()))
        added = sorted(after - before)
        removed = sorted(before - after)
        if name not in old:
            changes.append(f"+class {name}")
        elif name not in current:
            changes.append(f"-class {name}")
        elif added or removed:
            parts = [f"+{field}" for field in added] + [f"-{field}" for field in removed]
            changes.append(f"{name}({', '.join(parts)})")
    return "; ".join(changes) if changes else "field sets differ"


@register
class SchemaFingerprintRule(ProjectRule):
    code = "RPL301"
    name = "spec-schema-fingerprint"
    summary = (
        "spec dataclass fields changed without bumping SPEC_SCHEMA_VERSION "
        "(fingerprint cross-check against the recorded golden)"
    )

    def _finding(self, specs_path: Path, line: int, message: str) -> Finding:
        try:
            display = specs_path.resolve().relative_to(Path.cwd()).as_posix()
        except ValueError:
            display = specs_path.as_posix()
        return Finding(path=display, line=line, col=1, code=self.code, message=message)

    def check_project(self, context: ProjectContext) -> Iterator[Finding]:
        specs_path = find_specs_module(context.root)
        if specs_path is None:
            return
        version, classes = extract_schema(specs_path.read_text(encoding="utf-8"))
        fingerprint = compute_fingerprint(classes)
        record_path = Path(context.config.schema_fingerprint_path)
        record = read_recorded_fingerprint(record_path)
        if record is None:
            yield self._finding(
                specs_path,
                1,
                f"no recorded spec-schema fingerprint at {record_path}; "
                "run 'python -m repro.lint --write-schema-fingerprint' and "
                "commit the record alongside the goldens",
            )
            return
        recorded_version = record.get("spec_schema_version")
        recorded_fingerprint = record.get("fingerprint")
        if fingerprint == recorded_fingerprint and version == recorded_version:
            return
        if version == recorded_version:
            yield self._finding(
                specs_path,
                1,
                "spec dataclass fields changed but SPEC_SCHEMA_VERSION is "
                f"still {version} ({_diff_classes(record.get('classes', {}), classes)}); "
                "every digest and cached/golden payload silently keeps "
                "matching stale dicts — bump SPEC_SCHEMA_VERSION, then "
                "refresh with --write-schema-fingerprint",
            )
        else:
            yield self._finding(
                specs_path,
                1,
                f"SPEC_SCHEMA_VERSION is {version} but the recorded "
                f"fingerprint was taken at version {recorded_version}; "
                "regenerate the goldens if needed and refresh the record "
                "with 'python -m repro.lint --write-schema-fingerprint'",
            )
