"""RPL2xx — atomic IO: the shared-directory JSON envelope protocols.

The result cache and the lease queues exchange whole JSON documents
between processes that share nothing but a directory.  Their correctness
rests on two mechanical disciplines:

* every envelope/index write goes through the blessed
  :mod:`repro.experiment.fsio` helpers (unique temp name +
  ``os.replace``) so a reader can never observe a torn file;
* an envelope changes *owner* by rename, and is *deleted* only inside
  the handful of audited repossession/collection helpers — the PR 5
  requeue race came from a write-then-unlink sequence whose trailing
  unlink could destroy a successor's fresh claim.

Scope (see :class:`repro.lint.config.LintConfig.default`): the cache,
queue backend, broker and worker modules.  ``fsio.py`` itself is outside
the scope — it is the one place allowed to open files for writing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding
from repro.lint.rules import FileRule, register
from repro.lint.rules.common import (
    call_name,
    enclosing_function,
    imports_of,
    literal_suffix,
    method_name,
)

#: Method names that hand a whole file's contents over non-atomically.
_WHOLE_FILE_WRITERS = frozenset({"write_text", "write_bytes"})


def _open_mode(node: ast.Call) -> str | None:
    """The constant mode string of an ``open``-style call, if visible."""
    mode_expr: ast.AST | None = None
    if len(node.args) >= 2:
        mode_expr = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode_expr = keyword.value
    if mode_expr is None:
        return "r"
    if isinstance(mode_expr, ast.Constant) and isinstance(mode_expr.value, str):
        return mode_expr.value
    return None


@register
class NonAtomicWriteRule(FileRule):
    code = "RPL201"
    name = "non-atomic-write"
    summary = (
        "direct open('w')/write_text/json.dump in cache/queue/broker "
        "modules — envelope writes must go through fsio (tmp + os.replace)"
    )

    _ADVICE = (
        "; serialize with json.dumps and write via "
        "repro.experiment.fsio.atomic_write_text so readers never see a "
        "torn file"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        imports = imports_of(context)
        for node in self.walk(context):
            if not isinstance(node, ast.Call):
                continue
            if imports.resolve(node.func) == ("json", "dump"):
                yield context.finding(
                    node,
                    self.code,
                    "json.dump() streams JSON into a non-atomic file handle"
                    + self._ADVICE,
                )
                continue
            if method_name(node) in _WHOLE_FILE_WRITERS:
                yield context.finding(
                    node,
                    self.code,
                    f"Path.{method_name(node)}() overwrites in place"
                    + self._ADVICE,
                )
                continue
            is_open = call_name(node) == "open" or imports.resolve(node.func) in (
                ("io", "open"),
                ("os", "fdopen"),
            )
            if not is_open:
                continue
            mode = _open_mode(node)
            if mode is None or not node.args:
                continue
            if any(flag in mode for flag in "wx+"):
                yield context.finding(
                    node,
                    self.code,
                    f"open(..., {mode!r}) writes in place" + self._ADVICE,
                )
            elif "a" in mode and literal_suffix(node.args[0]) == ".json":
                yield context.finding(
                    node,
                    self.code,
                    "appending to a .json envelope can never be atomic"
                    + self._ADVICE,
                )


@register
class EnvelopeUnlinkRule(FileRule):
    code = "RPL202"
    name = "envelope-unlink"
    summary = (
        "os.remove/unlink of queue envelopes outside the blessed "
        "repossession/collection helpers — ownership moves by rename"
    )

    def _is_unlink(self, node: ast.Call, imports) -> bool:
        if imports.resolve(node.func) in (("os", "remove"), ("os", "unlink")):
            return True
        return method_name(node) == "unlink"

    def check(self, context: FileContext) -> Iterator[Finding]:
        imports = imports_of(context)
        blessed = context.config.blessed_unlink_functions
        for node in self.walk(context):
            if not isinstance(node, ast.Call) or not self._is_unlink(node, imports):
                continue
            function = enclosing_function(node)
            if function is not None and function.name in blessed:
                continue
            where = f"function {function.name!r}" if function else "module scope"
            yield context.finding(
                node,
                self.code,
                f"envelope deletion in {where}, which is not a blessed "
                "repossession/collection helper; hand ownership over by "
                "os.replace, or audit the new deletion site into "
                "LintConfig.blessed_unlink_functions (write-then-unlink "
                "is how the PR 5 requeue race lost live claims)",
            )


@register
class BareRenameRule(FileRule):
    code = "RPL203"
    name = "bare-rename"
    summary = (
        "os.rename/Path.rename where atomic-overwrite os.replace is "
        "required — rename raises or races when the target exists"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        imports = imports_of(context)
        for node in self.walk(context):
            if not isinstance(node, ast.Call):
                continue
            if imports.resolve(node.func) == ("os", "rename"):
                yield context.finding(
                    node,
                    self.code,
                    "os.rename() is not atomic-overwrite-portable (it "
                    "raises on Windows when the target exists); use "
                    "os.replace()",
                )
            elif method_name(node) == "rename":
                yield context.finding(
                    node,
                    self.code,
                    "Path.rename() is not atomic-overwrite-portable; use "
                    "Path.replace() / os.replace()",
                )
