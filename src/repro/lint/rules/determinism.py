"""RPL1xx — determinism: same spec, same bytes, on any host.

The engine's reproducibility contract (same spec => same
``spec_digest`` => byte-identical result payload across the serial /
process / work-queue / broker backends) only holds while no code inside
the simulation draws from process-dependent state.  These rules pin the
known ways that property has been — or could be — lost:

* ``RPL101`` — builtin ``hash()`` is salted per process
  (``PYTHONHASHSEED``); the PR 1 seeding bug derived RNG streams from
  ``hash(name)`` and gave every worker a different random stream.
* ``RPL102`` — the ``random`` module's top-level functions share one
  global, process-wide generator.
* ``RPL103`` — unseeded RNG construction (``random.Random()``,
  ``numpy.random.default_rng()`` with no seed) and the legacy
  ``numpy.random`` global-state API (``np.random.seed`` / ``rand`` /
  ``shuffle`` ...).
* ``RPL104`` — wall-clock reads inside simulation/spec code: virtual
  time comes from the event loop, never from the host clock.
* ``RPL105`` — iteration over unordered sources (``set`` /
  ``frozenset`` / ``os.listdir`` / ``os.scandir`` / ``glob`` /
  ``Path.iterdir``) materialized into ordered output without an
  enclosing ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding
from repro.lint.rules import FileRule, register
from repro.lint.rules.common import (
    call_name,
    enclosing_function,
    imports_of,
    method_name,
)

#: ``numpy.random`` attributes that do *not* touch global state: the
#: Generator-era constructors.  Everything else on the module is either
#: the legacy global-state API or a convenience alias for it.
_NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Wall-clock call chains (canonical module terms).
_WALL_CLOCK_CHAINS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "process_time"),
        ("time", "process_time_ns"),
        ("datetime", "datetime", "now"),
        ("datetime", "datetime", "utcnow"),
        ("datetime", "datetime", "today"),
        ("datetime", "date", "today"),
    }
)

#: Calls whose result is an unordered sequence of strings/paths.
_UNORDERED_MODULE_CALLS = frozenset(
    {
        ("os", "listdir"),
        ("os", "scandir"),
        ("glob", "glob"),
        ("glob", "iglob"),
    }
)
_UNORDERED_METHODS = frozenset({"iterdir", "glob", "rglob", "scandir"})

#: Consumers that erase iteration order, making an unordered source safe.
_ORDER_SAFE_CONSUMERS = frozenset(
    {"sorted", "set", "frozenset", "sum", "len", "min", "max", "any", "all",
     "dict", "Counter"}
)

#: Mutating calls in a loop body that bake iteration order into output.
_ORDER_SENSITIVE_METHODS = frozenset(
    {"append", "extend", "insert", "appendleft", "write", "writelines",
     "write_text", "write_bytes"}
)


@register
class BuiltinHashRule(FileRule):
    code = "RPL101"
    name = "builtin-hash"
    summary = (
        "builtin hash() outside __hash__ — salted per process "
        "(PYTHONHASHSEED); derive stable keys via zlib.crc32/hashlib"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in self.walk(context):
            if not isinstance(node, ast.Call) or call_name(node) != "hash":
                continue
            function = enclosing_function(node)
            if function is not None and function.name == "__hash__":
                continue
            yield context.finding(
                node,
                self.code,
                "builtin hash() is salted per process; use zlib.crc32 or "
                "hashlib over stable bytes instead (the PR 1 RNG-seeding bug)",
            )


@register
class GlobalRandomRule(FileRule):
    code = "RPL102"
    name = "global-random"
    summary = (
        "random-module global state in simulation code — draw from a "
        "seeded generator stream instead"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        imports = imports_of(context)
        for node in self.walk(context):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name != "Random":
                        yield context.finding(
                            node,
                            self.code,
                            f"'from random import {alias.name}' binds the "
                            "module's shared global generator; use a seeded "
                            "random.Random or the simulator's rng_stream",
                        )
            if not isinstance(node, ast.Call):
                continue
            chain = imports.resolve(node.func)
            if (
                chain is not None
                and len(chain) == 2
                and chain[0] == "random"
                and chain[1] != "Random"
            ):
                yield context.finding(
                    node,
                    self.code,
                    f"random.{chain[1]}() uses process-global RNG state; "
                    "draw from a seeded generator stream "
                    "(Simulator.rng_stream / numpy default_rng(seed))",
                )


@register
class UnseededRngRule(FileRule):
    code = "RPL103"
    name = "unseeded-rng"
    summary = (
        "unseeded random.Random()/numpy default_rng() or the legacy "
        "numpy.random global-state API in simulation code"
    )

    def _numpy_findings(
        self, context: FileContext, node: ast.Call, chain: tuple[str, ...]
    ) -> Iterator[Finding]:
        attr = chain[2]
        if attr not in _NP_RANDOM_ALLOWED:
            yield context.finding(
                node,
                self.code,
                f"numpy.random.{attr}() is the legacy global-state API; "
                "use numpy.random.default_rng(seed) / SeedSequence streams",
            )
        elif attr == "default_rng" and not node.args and not node.keywords:
            yield context.finding(
                node,
                self.code,
                "numpy.random.default_rng() without a seed draws OS entropy; "
                "pass an explicit seed or SeedSequence",
            )

    def check(self, context: FileContext) -> Iterator[Finding]:
        imports = imports_of(context)
        for node in self.walk(context):
            if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                for alias in node.names:
                    if alias.name not in _NP_RANDOM_ALLOWED:
                        yield context.finding(
                            node,
                            self.code,
                            f"'from numpy.random import {alias.name}' is the "
                            "legacy global-state API; import default_rng / "
                            "SeedSequence instead",
                        )
            if not isinstance(node, ast.Call):
                continue
            chain = imports.resolve(node.func)
            if chain is None:
                continue
            if chain == ("random", "Random") and not node.args and not node.keywords:
                yield context.finding(
                    node,
                    self.code,
                    "random.Random() without a seed is seeded from OS "
                    "entropy; pass an explicit seed",
                )
            elif len(chain) == 3 and chain[:2] == ("numpy", "random"):
                yield from self._numpy_findings(context, node, chain)


@register
class WallClockRule(FileRule):
    code = "RPL104"
    name = "wall-clock"
    summary = (
        "wall-clock reads (time.time/perf_counter/datetime.now) inside "
        "simulation/spec code — virtual time comes from the event loop"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        imports = imports_of(context)
        for node in self.walk(context):
            if not isinstance(node, ast.Call):
                continue
            chain = imports.resolve(node.func)
            if chain in _WALL_CLOCK_CHAINS:
                yield context.finding(
                    node,
                    self.code,
                    f"{'.'.join(chain)}() reads the host clock inside "
                    "simulation/spec code; use the simulator's virtual now "
                    "(results must not depend on host timing)",
                )


def _is_unordered(node: ast.AST, imports) -> str | None:
    """Why ``node`` yields elements in process-dependent order, or None."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if not isinstance(node, ast.Call):
        return None
    name = call_name(node)
    if name in ("set", "frozenset"):
        return f"{name}(...)"
    chain = imports.resolve(node.func)
    if chain in _UNORDERED_MODULE_CALLS:
        return f"{'.'.join(chain)}(...)"
    method = method_name(node)
    if method in _UNORDERED_METHODS:
        return f".{method}(...)"
    return None


def _consuming_call(node: ast.AST) -> ast.Call | None:
    """The call this expression is a direct argument of, if any."""
    parent = getattr(node, "_rpl_parent", None)
    if isinstance(parent, ast.Call) and node in parent.args:
        return parent
    return None


def _order_sensitive_effect(body: list[ast.stmt], imports) -> ast.AST | None:
    """The first statement/expression in a loop body that bakes the
    iteration order into an ordered artifact, skipping nested defs."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop(0)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            return node
        if isinstance(node, ast.Call):
            if method_name(node) in _ORDER_SENSITIVE_METHODS:
                return node
            if imports.resolve(node.func) == ("json", "dump"):
                return node
        stack.extend(ast.iter_child_nodes(node))
    return None


@register
class UnorderedIterationRule(FileRule):
    code = "RPL105"
    name = "unordered-iteration"
    summary = (
        "iteration over set/listdir/glob/iterdir results materialized "
        "into ordered output without an enclosing sorted(...)"
    )

    def _loop_findings(self, context: FileContext, imports) -> Iterator[Finding]:
        for node in self.walk(context):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            reason = _is_unordered(node.iter, imports)
            if reason is None:
                continue
            effect = _order_sensitive_effect(node.body, imports)
            if effect is None:
                continue
            yield context.finding(
                node.iter,
                self.code,
                f"loop over {reason} feeds ordered output (line "
                f"{getattr(effect, 'lineno', '?')}) in process-dependent "
                "order; wrap the source in sorted(...)",
            )

    def _comprehension_findings(
        self, context: FileContext, imports
    ) -> Iterator[Finding]:
        for node in self.walk(context):
            if not isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                continue
            consumer = _consuming_call(node)
            if consumer is not None and call_name(consumer) in _ORDER_SAFE_CONSUMERS:
                continue
            kind = "list" if isinstance(node, ast.ListComp) else "generator"
            for generator in node.generators:
                reason = _is_unordered(generator.iter, imports)
                if reason is not None:
                    yield context.finding(
                        generator.iter,
                        self.code,
                        f"{kind} comprehension over {reason} materializes "
                        "process-dependent order; wrap the source in "
                        "sorted(...) or feed an order-insensitive consumer",
                    )

    def _materialize_findings(
        self, context: FileContext, imports
    ) -> Iterator[Finding]:
        for node in self.walk(context):
            if not isinstance(node, ast.Call) or call_name(node) not in (
                "list",
                "tuple",
            ):
                continue
            if len(node.args) != 1:
                continue
            reason = _is_unordered(node.args[0], imports)
            if reason is None:
                continue
            consumer = _consuming_call(node)
            if consumer is not None and call_name(consumer) in _ORDER_SAFE_CONSUMERS:
                continue
            yield context.finding(
                node,
                self.code,
                f"{call_name(node)}() materializes {reason} in "
                "process-dependent order; use sorted(...) instead",
            )

    def check(self, context: FileContext) -> Iterator[Finding]:
        imports = imports_of(context)
        yield from self._loop_findings(context, imports)
        yield from self._comprehension_findings(context, imports)
        yield from self._materialize_findings(context, imports)


__all__ = [
    "BuiltinHashRule",
    "GlobalRandomRule",
    "UnorderedIterationRule",
    "UnseededRngRule",
    "WallClockRule",
]
