"""Shared AST helpers for the rule families.

The central primitive is :class:`Imports`: a per-file table of what each
local name means in module terms, so rules match *canonical* call chains
(``("numpy", "random", "seed")``) no matter how the module was imported
— ``import numpy as np``, ``from numpy import random as npr`` and
``from numpy.random import seed`` all resolve to the same chain.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, parents

__all__ = [
    "Imports",
    "call_name",
    "enclosing_function",
    "imports_of",
    "literal_suffix",
    "method_name",
]


class Imports:
    """What each local name binds to, in canonical dotted-module terms."""

    def __init__(self, tree: ast.AST) -> None:
        #: local name -> dotted module it refers to (``np`` -> ``numpy``)
        self.modules: dict[str, str] = {}
        #: local name -> (module, original name) for ``from m import n``
        self.names: dict[str, tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.modules[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds ``numpy``
                        root = alias.name.split(".")[0]
                        self.modules[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.names[local] = (node.module, alias.name)

    def resolve(self, node: ast.AST) -> tuple[str, ...] | None:
        """Canonical dotted chain of an attribute/name expression, or
        ``None`` when the root is not a recognized import."""
        chain: list[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        chain.append(node.id)
        chain.reverse()
        root = chain[0]
        if root in self.modules:
            return tuple(self.modules[root].split(".")) + tuple(chain[1:])
        if root in self.names:
            module, original = self.names[root]
            return tuple(module.split(".")) + (original,) + tuple(chain[1:])
        return None


def imports_of(context: FileContext) -> Imports:
    """The file's import table, built once and shared between rules."""
    return context.cached("imports", lambda ctx: Imports(ctx.tree))


def call_name(node: ast.Call) -> str | None:
    """The bare name a call invokes (``sorted(...)`` -> ``"sorted"``)."""
    return node.func.id if isinstance(node.func, ast.Name) else None


def method_name(node: ast.Call) -> str | None:
    """The attribute name of a method-style call (``p.iterdir()`` ->
    ``"iterdir"``), whatever the receiver expression is."""
    return node.func.attr if isinstance(node.func, ast.Attribute) else None


def enclosing_function(node: ast.AST) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """The nearest function definition ``node`` sits inside, if any."""
    for ancestor in parents(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def _last_literal(node: ast.AST) -> str | None:
    """The trailing string literal of a path-ish expression, if one is
    statically visible: a constant, the last piece of an f-string, or
    the right side of ``/`` / ``+`` / ``%`` path arithmetic."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        return _last_literal(node.values[-1])
    if isinstance(node, ast.FormattedValue):
        return None
    if isinstance(node, ast.BinOp):
        return _last_literal(node.right)
    return None


def literal_suffix(node: ast.AST) -> str | None:
    """Best-effort file suffix of a path expression (``".json"``), or
    ``None`` when the target is not statically known."""
    literal = _last_literal(node)
    if literal is None or "." not in literal:
        return None
    return "." + literal.rsplit(".", 1)[1]


def walk_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node
