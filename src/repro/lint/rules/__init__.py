"""Rule registry: one module per rule family, one class per rule code.

Importing this package registers the built-in families — determinism
(``RPL1xx``), atomic IO (``RPL2xx``) and schema discipline
(``RPL3xx``).  Every rule carries a stable code, a short name and a
one-line summary; ``docs/lint.md`` renders its catalog from exactly
these attributes, so code and documentation cannot drift apart.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Type

from repro.lint.engine import FileContext, Finding, ProjectContext

__all__ = [
    "FileRule",
    "ProjectRule",
    "all_rules",
    "file_rules",
    "get_rule",
    "project_rules",
    "register",
]


class FileRule:
    """A rule checked against each scanned file's AST."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def check(self, context: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def walk(self, context: FileContext) -> Iterator[ast.AST]:
        yield from ast.walk(context.tree)


class ProjectRule:
    """A rule checked once per scanned directory root."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def check_project(self, context: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, FileRule | ProjectRule] = {}


def register(
    rule_cls: "Type[FileRule] | Type[ProjectRule]",
) -> "Type[FileRule] | Type[ProjectRule]":
    """Class decorator adding one rule instance to the registry."""
    rule = rule_cls()
    if not rule.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return rule_cls


def _load() -> None:
    # Import for the registration side effect; sorted, stable order.
    from repro.lint.rules import atomic_io, determinism, schema  # noqa: F401


def all_rules() -> "list[FileRule | ProjectRule]":
    _load()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def file_rules() -> list[FileRule]:
    return [rule for rule in all_rules() if isinstance(rule, FileRule)]


def project_rules() -> list[ProjectRule]:
    return [rule for rule in all_rules() if isinstance(rule, ProjectRule)]


def get_rule(code: str) -> "FileRule | ProjectRule":
    _load()
    return _REGISTRY[code]


def rule_codes() -> Iterable[str]:
    _load()
    return sorted(_REGISTRY)
