"""``repro.lint`` — machine-enforcement of the repo's two core invariants.

Every figure this reproduction produces rests on properties that used to
be enforced only by convention and after-the-fact golden tests:

* **byte-identical determinism** — the same spec must produce the same
  ``spec_digest`` and the same result payload across the serial,
  process-pool, work-queue and broker backends, on any host, under any
  ``PYTHONHASHSEED``;
* **crash-safe atomic filesystem protocols** — the result cache and the
  lease queues exchange whole JSON envelopes via unique-tempname writes
  plus ``os.replace``, never partial files, and repossession of a dead
  worker's claim is a rename, never a write-then-unlink.

Both have been violated before (the PR 1 ``hash(name)`` RNG-seeding bug,
the PR 5 write-then-unlink requeue race), so this package checks them
*statically*: a stdlib-``ast`` analyzer with stable rule codes
(``RPL1xx`` determinism, ``RPL2xx`` atomic IO, ``RPL3xx`` schema
discipline), per-path scoping, ``# repro-lint: disable=RPL###``
suppressions, text/JSON output, and a nonzero exit code on findings.

Run it exactly like CI does::

    python -m repro.lint src

See ``docs/lint.md`` for the rule catalog and the suppression policy.
"""

from __future__ import annotations

from repro.lint.config import LintConfig
from repro.lint.engine import Finding, LintReport, lint_paths
from repro.lint.rules import all_rules, get_rule

__all__ = [
    "Finding",
    "LintConfig",
    "LintReport",
    "all_rules",
    "get_rule",
    "lint_paths",
]
