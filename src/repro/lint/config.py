"""Per-path scoping and policy knobs for the analyzer.

A rule that is correct everywhere (``RPL101``: builtin ``hash()``) runs
everywhere; a rule that is only meaningful in specific layers runs only
there — wall-clock calls are fine in the batch orchestration code that
measures wall clock on purpose, but a bug inside the simulation, and
direct file writes are fine in a benchmark script but a protocol
violation inside the cache/queue/broker modules.  The scoping table
below is the single place that records which rule owns which paths.

Paths are matched against a *module path*: the file's path from its
``repro`` package segment onward when there is one (so the same config
works whether the tree is scanned as ``src``, ``src/repro`` or a
checkout root), else the path relative to the scanned root (which is
what fixture trees under ``tests/lint/fixtures`` use).
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["LintConfig", "path_matches", "scope_path"]

#: Determinism scope: the layers whose code runs *inside* a simulation —
#: anything here that draws from global RNG state or the wall clock can
#: silently change results between two runs of the same spec.
_SIM_LAYERS = (
    "repro/sim/**",
    "repro/mac/**",
    "repro/phy/**",
    "repro/net/**",
    "repro/core/**",
    "repro/transport/**",
    # Monitors sample *inside* the event loop; their series are part of
    # experiment payloads, so they are held to the same determinism bar.
    "repro/monitors/**",
    "repro/engine.py",
    "repro/scheduler.py",
)

#: Atomic-IO scope: the modules that speak the shared-directory JSON
#: envelope protocols (result cache, work queue, broker).  ``fsio.py``
#: is deliberately absent — it *is* the blessed helper.
_QUEUE_MODULES = (
    "repro/experiment/cache.py",
    "repro/experiment/backends/**",
    "repro/experiment/broker.py",
    "repro/experiment/broker_store.py",
    "repro/experiment/worker.py",
)


def path_matches(pattern: str, path: str) -> bool:
    """Match a posix module path against one scoping pattern.

    ``"**"`` matches everything, ``"pkg/**"`` matches the package
    subtree, anything else is a plain :mod:`fnmatch` pattern.
    """
    if pattern == "**":
        return True
    if pattern.endswith("/**"):
        prefix = pattern[:-3]
        return path == prefix or path.startswith(prefix + "/")
    return fnmatch.fnmatchcase(path, pattern)


def scope_path(parts: tuple[str, ...], fallback: str) -> str:
    """The module path used for scope matching.

    ``parts`` are the path components of the scanned file; when a
    ``repro`` package segment is present the module path starts there
    (``.../src/repro/sim/x.py`` -> ``repro/sim/x.py``), so fixture trees
    that *embed* a ``repro/...`` layout scope exactly like the real one.
    """
    if "repro" in parts:
        index = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        if index < len(parts) - 1:  # "repro" as a file name doesn't count
            return "/".join(parts[index:])
    return fallback


@dataclass(frozen=True)
class LintConfig:
    """Which rule applies where, plus rule-family policy knobs.

    Attributes:
        rule_scopes: rule code -> include patterns (module paths).  A
            code absent from the mapping applies everywhere.
        rule_excludes: rule code -> exclude patterns; an exclude beats
            an include.
        blessed_unlink_functions: the repossession/collection helpers
            allowed to delete claim/result envelopes (``RPL202``).
            Everything else that unlinks inside the queue protocol
            modules is a finding — deletion is how the PR 5 requeue
            race lost tasks, so new deletion sites must be reviewed
            into this list, not sprinkled ad hoc.
        schema_fingerprint_path: where the recorded spec-schema
            fingerprint lives (``RPL301``), resolved against the
            current working directory when relative — CI and the test
            suite both run the linter from the repo root.
    """

    rule_scopes: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    rule_excludes: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    blessed_unlink_functions: frozenset[str] = frozenset()
    schema_fingerprint_path: str = (
        "tests/experiment/golden/spec_schema_fingerprint.json"
    )

    @classmethod
    def default(cls) -> "LintConfig":
        """The repo's production scoping — what ``python -m repro.lint``
        uses."""
        return cls(
            rule_scopes={
                # RPL101 (builtin hash) applies everywhere: a salted hash
                # feeding anything persistent is wrong in every layer.
                "RPL102": _SIM_LAYERS + ("repro/experiment/registry.py",),
                "RPL103": _SIM_LAYERS + ("repro/experiment/registry.py",),
                "RPL104": _SIM_LAYERS + ("repro/experiment/specs.py",),
                # RPL105 (unordered iteration) applies everywhere: queue
                # collect paths and sim code are equally order-sensitive.
                "RPL201": _QUEUE_MODULES,
                "RPL202": (
                    "repro/experiment/backends/**",
                    "repro/experiment/broker.py",
                    "repro/experiment/broker_store.py",
                    "repro/experiment/worker.py",
                ),
                # RPL203 (os.rename) applies everywhere: every rename in
                # this repo wants os.replace semantics.
            },
            rule_excludes={
                # The simulation profiler is the one sanctioned wall
                # clock inside the sim layers: the engine's run loop
                # calls ``profiler.clock()`` through a duck-typed hook
                # precisely so ``time`` never appears in engine/medium
                # code.  Profiler output is diagnostics, never part of
                # an experiment payload.
                "RPL104": ("repro/sim/profile.py",),
            },
            blessed_unlink_functions=frozenset(
                {
                    # work_queue.py — lease repossession and orphan reaping
                    "requeue_expired_claims",
                    "_reap_stale_files",
                    # work_queue.py — submission withdrawal + result collection
                    "_run_in",
                    "_scan_results",
                    # worker.py — result handover (write result, drop claim)
                    # and the chaos-test kill flag
                    "complete",
                    "_chaos_kill",
                    # queue_common.py — drainer log cleanup
                    "remove_logs",
                    # broker_store.py — journal generations a snapshot
                    # has superseded (checkpoint compaction)
                    "_retire_journals",
                }
            ),
        )

    @classmethod
    def unscoped(cls, **overrides: object) -> "LintConfig":
        """Every rule everywhere — what the fixture meta-tests use, so a
        fixture exercises rule logic without re-creating the package
        layout.  Policy knobs (blessed helpers) keep their defaults.
        """
        base = cls.default()
        kwargs: dict[str, object] = {
            "rule_scopes": {},
            "rule_excludes": {},
            "blessed_unlink_functions": base.blessed_unlink_functions,
            "schema_fingerprint_path": base.schema_fingerprint_path,
        }
        kwargs.update(overrides)
        return cls(**kwargs)  # type: ignore[arg-type]

    def applies(self, code: str, module_path: str) -> bool:
        """Does rule ``code`` apply to ``module_path``?"""
        for pattern in self.rule_excludes.get(code, ()):
            if path_matches(pattern, module_path):
                return False
        includes = self.rule_scopes.get(code)
        if includes is None:
            return True
        return any(path_matches(pattern, module_path) for pattern in includes)
