"""File walker, suppression handling and the rule-driving loop.

The engine owns everything rule modules should not have to repeat: it
walks the requested paths in sorted order, parses each file once,
annotates the tree with parent links (rules climb them to find the
enclosing function or the consuming call), collects
``# repro-lint: disable=...`` suppressions, scopes each rule through
:class:`repro.lint.config.LintConfig`, and returns one sorted
:class:`LintReport`.

Suppression grammar (trailing comment on the *reported* line)::

    candidates = list(tasks.iterdir())  # repro-lint: disable=RPL105

and, as a standalone comment anywhere in the file, a file-wide form::

    # repro-lint: disable-file=RPL104

``disable=all`` silences every rule for that line/file.  Suppressions
are a last resort — the policy in ``docs/lint.md`` is that a false
positive sharpens the rule instead.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.lint.config import LintConfig, scope_path

__all__ = [
    "FileContext",
    "Finding",
    "LintReport",
    "ProjectContext",
    "annotate_parents",
    "lint_paths",
    "parents",
]

#: Engine-level pseudo-code for files the parser rejects: a file that
#: does not parse cannot be proven clean, so it must fail the run.
PARSE_ERROR_CODE = "RPL001"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass
class LintReport:
    """Everything one analyzer run produced."""

    findings: list[Finding]
    files_scanned: int

    @property
    def counts_by_code(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict[str, Any]:
        """The stable JSON output schema (``--format json``)."""
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "findings": [finding.to_dict() for finding in self.findings],
            "summary": {
                "total": len(self.findings),
                "by_code": self.counts_by_code,
            },
        }


def annotate_parents(tree: ast.AST) -> None:
    """Attach ``_rpl_parent`` to every node so rules can climb upward."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._rpl_parent = node  # type: ignore[attr-defined]


def parents(node: ast.AST) -> Iterator[ast.AST]:
    """The chain of ancestors of ``node``, nearest first."""
    current = getattr(node, "_rpl_parent", None)
    while current is not None:
        yield current
        current = getattr(current, "_rpl_parent", None)


class _Suppressions:
    """Per-file suppression table parsed from comments."""

    def __init__(self, source: str) -> None:
        self.by_line: dict[int, set[str]] = {}
        self.file_wide: set[str] = set()
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            codes = {
                code.strip().upper()
                for code in match.group(2).split(",")
                if code.strip()
            }
            if match.group(1) == "disable-file":
                self.file_wide |= codes
            else:
                self.by_line.setdefault(lineno, set()).update(codes)

    def suppressed(self, finding: Finding) -> bool:
        for codes in (self.file_wide, self.by_line.get(finding.line, ())):
            if finding.code in codes or "ALL" in codes:
                return True
        return False


@dataclass
class FileContext:
    """Everything a per-file rule needs about the file under analysis."""

    path: Path
    display: str
    scope: str
    source: str
    tree: ast.Module
    config: LintConfig
    _cache: dict[str, Any] = field(default_factory=dict)

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        return Finding(
            path=self.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )

    def cached(self, key: str, build: Any) -> Any:
        """Share per-file derived state (e.g. the import table) between
        rules without re-walking the tree."""
        if key not in self._cache:
            self._cache[key] = build(self)
        return self._cache[key]


@dataclass
class ProjectContext:
    """What a project-level rule (one check per scanned root) sees."""

    root: Path
    config: LintConfig


def _display(path: Path) -> str:
    """Findings print paths relative to the working directory when
    possible — that is what editors and CI logs link."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def iter_python_files(root: Path) -> list[Path]:
    """Every ``*.py`` under ``root`` (or ``root`` itself), sorted."""
    if root.is_file():
        return [root]
    return sorted(
        path
        for path in root.rglob("*.py")
        if "__pycache__" not in path.parts
    )


def _lint_file(path: Path, root: Path, config: LintConfig) -> list[Finding]:
    from repro.lint.rules import file_rules

    display = _display(path)
    try:
        relative = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        relative = path.name
    scope = scope_path(path.resolve().parts, relative)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    annotate_parents(tree)
    suppressions = _Suppressions(source)
    context = FileContext(
        path=path,
        display=display,
        scope=scope,
        source=source,
        tree=tree,
        config=config,
    )
    findings: list[Finding] = []
    for rule in file_rules():
        if not config.applies(rule.code, scope):
            continue
        for finding in rule.check(context):
            if not suppressions.suppressed(finding):
                findings.append(finding)
    return findings


def lint_paths(
    paths: Sequence[str | Path], config: LintConfig | None = None
) -> LintReport:
    """Analyze every file under ``paths``; the API behind the CLI.

    Per-file rules run on each ``*.py`` file; project rules (the schema
    fingerprint) run once per *directory* argument, against that root.
    """
    from repro.lint.rules import project_rules

    config = config if config is not None else LintConfig.default()
    findings: list[Finding] = []
    files_scanned = 0
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            raise FileNotFoundError(f"no such file or directory: {root}")
        for path in iter_python_files(root):
            files_scanned += 1
            findings.extend(_lint_file(path, root, config))
        if root.is_dir():
            context = ProjectContext(root=root, config=config)
            for rule in project_rules():
                findings.extend(rule.check_project(context))
    return LintReport(findings=sorted(set(findings)), files_scanned=files_scanned)


def render_text(report: LintReport) -> str:
    """The human-readable output format."""
    lines = [finding.render() for finding in report.findings]
    total = len(report.findings)
    if total:
        by_code = ", ".join(
            f"{code} x{count}" for code, count in report.counts_by_code.items()
        )
        lines.append(
            f"{total} finding(s) in {report.files_scanned} file(s): {by_code}"
        )
    else:
        lines.append(f"clean: {report.files_scanned} file(s), 0 findings")
    return "\n".join(lines)


def iter_rule_docs() -> Iterable[tuple[str, str, str]]:
    """(code, name, summary) for every registered rule — the CLI's
    ``--rules`` listing and the doc catalog's source of truth."""
    from repro.lint.rules import all_rules

    for rule in all_rules():
        yield rule.code, rule.name, rule.summary
