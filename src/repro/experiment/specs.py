"""Frozen, serializable experiment specifications.

The declarative front door to the reproduction: an experiment is fully
described by a tree of frozen dataclasses —

* :class:`TopologySpec` — where the nodes are (chain, grid, the 18-node
  testbed, or explicit positions);
* :class:`RadioSpec` — transmit power, carrier-sense threshold and PHY
  rates shared by every node;
* :class:`FlowSpec` — one traffic flow (transport, route, shaping);
* :class:`ProbingSpec` — the broadcast probing system and its warmup;
* :class:`ControllerSpec` — the online optimizer (alpha-fair objective,
  probing window, interference model), or disabled for the paper's
  ``noRC`` baselines;
* :class:`ScenarioSpec` — a named, registered scenario (see
  :mod:`repro.experiment.registry`) plus the knobs its builder reads;
* :class:`ExperimentSpec` — scenario + probing + controller + the
  warmup/cycle/measure schedule.

Every spec validates its fields on construction (raising
:class:`SpecError`) and round-trips through ``to_dict``/``from_dict``,
which is what the parallel :class:`repro.experiment.batch.BatchRunner`
ships across process boundaries.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Mapping

from repro.core.utility import AlphaFairUtility
from repro.phy.radio import RATE_TABLE, RadioConfig, rate_from_mbps


class SpecError(ValueError):
    """Raised when an experiment specification is invalid."""


#: Version tag mixed into every spec digest.  Bump it whenever a change to
#: the spec schema *or* to the simulation semantics behind it invalidates
#: previously computed :class:`ExperimentResult` payloads — cached entries
#: keyed under the old version simply stop matching and age out.
SPEC_SCHEMA_VERSION = 1


def spec_digest(spec: "ExperimentSpec | Mapping[str, Any]",
                schema_version: int = SPEC_SCHEMA_VERSION) -> str:
    """Content address of an experiment: a stable hex digest of the
    canonical spec dict plus the schema version.

    The digest is computed over the sorted-key, minimal-separator JSON
    encoding of ``{"schema": schema_version, "spec": spec.to_dict()}``,
    so it is independent of dict insertion order, process hash
    randomization, and whether the caller holds a typed
    :class:`ExperimentSpec` or its plain-dict payload.  Two specs share a
    digest iff their canonical dicts are equal — which, by the
    determinism guarantees of the runner, means their results are
    bit-identical.
    """
    payload = spec.to_dict() if isinstance(spec, ExperimentSpec) else spec
    canonical = json.dumps(
        {"schema": int(schema_version), "spec": payload},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


Positions = dict[int, tuple[float, float]]

TOPOLOGY_KINDS = ("chain", "grid", "testbed", "positions")
TRANSPORTS = ("udp", "tcp")
RATE_MODES = ("1", "11", "mixed")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def _jsonify(value: Any) -> Any:
    if isinstance(value, (tuple, list)):
        return [_jsonify(item) for item in value]
    if isinstance(value, dict):
        return {key: _jsonify(item) for key, item in value.items()}
    return value


def _spec_to_dict(spec: Any) -> dict[str, Any]:
    """``dataclasses.asdict`` with tuples converted to lists, so payloads
    are stable under a JSON round-trip (``d == json.loads(json.dumps(d))``)."""
    return _jsonify(asdict(spec))


def _filter_kwargs(cls: type, data: Mapping[str, Any]) -> dict[str, Any]:
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise SpecError(f"{cls.__name__}: unknown fields {sorted(unknown)}")
    return dict(data)


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TopologySpec:
    """Node placement for a scenario.

    Attributes:
        kind: ``"chain"``, ``"grid"``, ``"testbed"`` or ``"positions"``.
        num_nodes: chain length (``kind="chain"``).
        rows / cols: grid dimensions (``kind="grid"``).
        spacing_m: inter-node spacing for chains and grids.
        jitter_m: placement jitter for the testbed layout.
        positions: explicit ``(node_id, x, y)`` triples
            (``kind="positions"``).
    """

    kind: str = "chain"
    num_nodes: int = 3
    rows: int = 2
    cols: int = 2
    spacing_m: float = 60.0
    jitter_m: float = 6.0
    positions: tuple[tuple[int, float, float], ...] = ()

    def __post_init__(self) -> None:
        _require(self.kind in TOPOLOGY_KINDS,
                 f"topology kind must be one of {TOPOLOGY_KINDS}, got {self.kind!r}")
        _require(self.spacing_m > 0, "spacing_m must be positive")
        if self.kind == "chain":
            _require(self.num_nodes >= 2, "a chain needs at least two nodes")
        if self.kind == "grid":
            _require(self.rows >= 1 and self.cols >= 1, "grid dimensions must be positive")
        if self.kind == "positions":
            _require(len(self.positions) >= 2, "explicit topologies need at least two nodes")
            ids = [int(p[0]) for p in self.positions]
            _require(len(ids) == len(set(ids)), "duplicate node ids in positions")

    def build(self, seed: int = 0) -> Positions:
        """Materialize the node id -> (x, y) placement map."""
        from repro.sim.topology import chain_topology, grid_topology, testbed_positions

        if self.kind == "chain":
            return chain_topology(self.num_nodes, spacing_m=self.spacing_m)
        if self.kind == "grid":
            return grid_topology(self.rows, self.cols, spacing_m=self.spacing_m)
        if self.kind == "testbed":
            return testbed_positions(seed=seed, jitter_m=self.jitter_m)
        return {int(node): (float(x), float(y)) for node, x, y in self.positions}

    def to_dict(self) -> dict[str, Any]:
        return _spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologySpec":
        kwargs = _filter_kwargs(cls, data)
        if "positions" in kwargs:
            kwargs["positions"] = tuple(
                (int(n), float(x), float(y)) for n, x, y in kwargs["positions"]
            )
        return cls(**kwargs)


# ---------------------------------------------------------------------------
# Radio
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RadioSpec:
    """Radio configuration shared by all nodes (see :class:`RadioConfig`)."""

    tx_power_dbm: float = 19.0
    cs_threshold_dbm: float = -91.0
    antenna_gain_dbi: float = 5.0
    data_rate_mbps: float = 11.0
    basic_rate_mbps: float = 1.0

    def __post_init__(self) -> None:
        for name in ("data_rate_mbps", "basic_rate_mbps"):
            value = getattr(self, name)
            _require(value in RATE_TABLE,
                     f"{name} must be one of {sorted(RATE_TABLE)}, got {value!r}")

    def build(self) -> RadioConfig:
        return RadioConfig(
            tx_power_dbm=self.tx_power_dbm,
            cs_threshold_dbm=self.cs_threshold_dbm,
            antenna_gain_dbi=self.antenna_gain_dbi,
            data_rate=rate_from_mbps(self.data_rate_mbps),
            basic_rate=rate_from_mbps(self.basic_rate_mbps),
        )

    def to_dict(self) -> dict[str, Any]:
        return _spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RadioSpec":
        return cls(**_filter_kwargs(cls, data))


# ---------------------------------------------------------------------------
# Flows
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FlowSpec:
    """One traffic flow: transport, explicit route and shaping parameters.

    ``rate_bps`` follows :meth:`MeshNetwork.add_udp_flow` semantics:
    ``None`` (the default) is a backlogged/saturating source, a positive
    value is a CBR source at that rate, and ``0.0`` starts the flow idle
    until the controller programs it.  TCP flows are window-limited and
    ignore ``rate_bps``.
    """

    transport: str = "udp"
    path: tuple[int, ...] = ()
    rate_bps: float | None = None
    payload_bytes: int = 1470
    mss_bytes: int = 1460

    def __post_init__(self) -> None:
        _require(self.transport in TRANSPORTS,
                 f"transport must be one of {TRANSPORTS}, got {self.transport!r}")
        _require(len(self.path) >= 2, "a flow path needs at least two nodes")
        _require(len(set(self.path)) == len(self.path), "flow path revisits a node")
        _require(self.rate_bps is None or self.rate_bps >= 0,
                 "rate_bps must be None (backlogged) or non-negative")
        _require(self.payload_bytes > 0 and self.mss_bytes > 0,
                 "payload_bytes and mss_bytes must be positive")

    def to_dict(self) -> dict[str, Any]:
        return _spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FlowSpec":
        kwargs = _filter_kwargs(cls, data)
        if "path" in kwargs:
            kwargs["path"] = tuple(int(n) for n in kwargs["path"])
        return cls(**kwargs)


# ---------------------------------------------------------------------------
# Probing
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ProbingSpec:
    """Broadcast probing system settings plus the measurement warmup."""

    period_s: float = 0.5
    data_probe_bytes: int = 1500
    warmup_s: float = 45.0

    def __post_init__(self) -> None:
        _require(self.period_s > 0, "period_s must be positive")
        _require(self.data_probe_bytes > 0, "data_probe_bytes must be positive")
        _require(self.warmup_s >= 0, "warmup_s must be non-negative")

    def to_dict(self) -> dict[str, Any]:
        return _spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProbingSpec":
        return cls(**_filter_kwargs(cls, data))


# ---------------------------------------------------------------------------
# Controller
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ControllerSpec:
    """The online optimization loop, or disabled for a noRC baseline.

    ``alpha`` selects the alpha-fair objective: 0 is the paper's TCP-Max,
    1 is proportional fairness (TCP-Prop).
    """

    enabled: bool = True
    alpha: float = 1.0
    probing_window: int = 120
    payload_bytes: int = 1470
    interference: str = "two_hop"
    connectivity_threshold: float = 0.5
    min_probes_for_estimator: int = 40

    def __post_init__(self) -> None:
        _require(self.alpha >= 0, "alpha must be non-negative")
        _require(self.probing_window >= 1, "probing_window must be at least 1")
        _require(self.payload_bytes > 0, "payload_bytes must be positive")
        _require(self.interference == "two_hop",
                 f"interference must be 'two_hop', got {self.interference!r}")
        _require(0.0 < self.connectivity_threshold <= 1.0,
                 "connectivity_threshold must lie in (0, 1]")
        _require(self.min_probes_for_estimator >= 1,
                 "min_probes_for_estimator must be at least 1")

    @property
    def utility(self) -> AlphaFairUtility:
        return AlphaFairUtility(alpha=self.alpha)

    def to_dict(self) -> dict[str, Any]:
        return _spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ControllerSpec":
        return cls(**_filter_kwargs(cls, data))


#: Convenience baseline: no rate control at all (the paper's ``noRC``).
NO_RATE_CONTROL = ControllerSpec(enabled=False)


# ---------------------------------------------------------------------------
# Scenario
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """A named scenario plus the knobs its registered builder reads.

    ``scenario`` is a key in the scenario registry
    (:func:`repro.experiment.registry.register_scenario`); the built-in
    names are ``"chain"``, ``"testbed"``, ``"random_multiflow"`` and
    ``"starvation"``.  ``seed`` fixes topology and shadowing; ``run_seed``
    (defaulting to ``seed``) re-seeds only traffic/backoff randomness so
    one physical configuration can be re-run independently.

    Not every field is read by every builder — e.g. ``rate_mode`` and
    ``num_flows`` only matter to ``random_multiflow``, and ``topology`` /
    ``radio`` / ``flows`` are ignored by ``starvation``, which fixes its
    own three-node gateway chain.
    """

    scenario: str = "chain"
    seed: int = 0
    run_seed: int | None = None
    data_rate_mbps: float = 11.0
    shadowing_sigma_db: float | None = None
    topology: TopologySpec | None = None
    radio: RadioSpec | None = None
    flows: tuple[FlowSpec, ...] = ()
    num_flows: int = 4
    max_hops: int = 4
    rate_mode: str = "mixed"
    transport: str = "udp"

    def __post_init__(self) -> None:
        _require(bool(self.scenario), "scenario name must be non-empty")
        _require(self.seed >= 0, "seed must be non-negative")
        _require(self.run_seed is None or self.run_seed >= 0,
                 "run_seed must be non-negative")
        _require(self.data_rate_mbps in RATE_TABLE,
                 f"data_rate_mbps must be one of {sorted(RATE_TABLE)}")
        _require(self.shadowing_sigma_db is None or self.shadowing_sigma_db >= 0,
                 "shadowing_sigma_db must be non-negative")
        _require(self.num_flows >= 1, "num_flows must be at least 1")
        _require(self.max_hops >= 1, "max_hops must be at least 1")
        _require(self.rate_mode in RATE_MODES,
                 f"rate_mode must be one of {RATE_MODES}, got {self.rate_mode!r}")
        _require(self.transport in TRANSPORTS,
                 f"transport must be one of {TRANSPORTS}, got {self.transport!r}")

    def with_seed(self, seed: int, run_seed: int | None = None) -> "ScenarioSpec":
        """The same scenario re-seeded (used by batch seed sweeps)."""
        return replace(self, seed=seed, run_seed=run_seed)

    def to_dict(self) -> dict[str, Any]:
        data = _spec_to_dict(self)
        data["topology"] = self.topology.to_dict() if self.topology else None
        data["radio"] = self.radio.to_dict() if self.radio else None
        data["flows"] = [flow.to_dict() for flow in self.flows]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        kwargs = _filter_kwargs(cls, data)
        if kwargs.get("topology") is not None:
            kwargs["topology"] = TopologySpec.from_dict(kwargs["topology"])
        if kwargs.get("radio") is not None:
            kwargs["radio"] = RadioSpec.from_dict(kwargs["radio"])
        if "flows" in kwargs:
            kwargs["flows"] = tuple(FlowSpec.from_dict(f) for f in kwargs["flows"])
        return cls(**kwargs)


# ---------------------------------------------------------------------------
# Experiment
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentSpec:
    """A complete, runnable experiment.

    Schedule: probing warms up for ``probing.warmup_s`` of virtual time
    (skipped when the controller is disabled — a noRC baseline measures
    raw 802.11, with no probe traffic on the air), then flows start and
    ``cycles`` optimization/measurement rounds run, each
    ``cycle_measure_s`` long with the first ``settle_s`` seconds excluded
    from throughput accounting.
    """

    scenario: ScenarioSpec = field(default_factory=ScenarioSpec)
    probing: ProbingSpec = field(default_factory=ProbingSpec)
    controller: ControllerSpec = field(default_factory=ControllerSpec)
    cycles: int = 1
    cycle_measure_s: float = 10.0
    settle_s: float = 2.0
    label: str = ""

    def __post_init__(self) -> None:
        _require(self.cycles >= 1, "cycles must be at least 1")
        _require(self.cycle_measure_s > 0, "cycle_measure_s must be positive")
        _require(0 <= self.settle_s < self.cycle_measure_s,
                 "settle_s must be non-negative and shorter than cycle_measure_s")

    def with_seed(self, seed: int, run_seed: int | None = None) -> "ExperimentSpec":
        """The same experiment on a re-seeded scenario."""
        return replace(self, scenario=self.scenario.with_seed(seed, run_seed))

    def describe(self) -> str:
        controller = (self.controller.utility.describe()
                      if self.controller.enabled else "no rate control")
        return (f"{self.label or self.scenario.scenario}"
                f" [seed={self.scenario.seed}, {controller}, {self.cycles} cycle(s)]")

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario.to_dict(),
            "probing": self.probing.to_dict(),
            "controller": self.controller.to_dict(),
            "cycles": self.cycles,
            "cycle_measure_s": self.cycle_measure_s,
            "settle_s": self.settle_s,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        kwargs = _filter_kwargs(cls, data)
        if "scenario" in kwargs:
            kwargs["scenario"] = ScenarioSpec.from_dict(kwargs["scenario"])
        if "probing" in kwargs:
            kwargs["probing"] = ProbingSpec.from_dict(kwargs["probing"])
        if "controller" in kwargs:
            kwargs["controller"] = ControllerSpec.from_dict(kwargs["controller"])
        return cls(**kwargs)
