"""Frozen, serializable experiment specifications.

The declarative front door to the reproduction: an experiment is fully
described by a tree of frozen dataclasses —

* :class:`TopologySpec` — where the nodes are: any registered topology
  generator of :mod:`repro.sim.generators` (chain/line, grid, ring,
  random-disk, binary-tree, parking-lot, the 18-node testbed) or
  explicit positions;
* :class:`RadioSpec` — transmit power, carrier-sense threshold and PHY
  rates shared by every node;
* :class:`FlowSpec` — one explicit traffic flow (transport, route,
  shaping);
* :class:`WorkloadSpec` — a *generated* flow set: a registered workload
  generator name (saturated UDP, TCP bulk, mixed TCP/UDP, gravity
  demands) plus its demand parameters;
* :class:`ProbingSpec` — the broadcast probing system and its warmup;
* :class:`ControllerSpec` — the online optimizer (alpha-fair objective,
  probing window, interference model), or disabled for the paper's
  ``noRC`` baselines;
* :class:`ScenarioSpec` — a named, registered scenario (see
  :mod:`repro.experiment.registry`) plus the knobs its builder reads;
* :class:`ExperimentSpec` — scenario + probing + controller + the
  warmup/cycle/measure schedule.

Every spec validates its fields on construction (raising
:class:`SpecError`) and round-trips through ``to_dict``/``from_dict``,
which is what the parallel :class:`repro.experiment.batch.BatchRunner`
ships across process boundaries.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Mapping

from repro.core.utility import AlphaFairUtility
from repro.phy.radio import RATE_TABLE, RadioConfig, rate_from_mbps


class SpecError(ValueError):
    """Raised when an experiment specification is invalid."""


#: Version tag mixed into every spec digest.  Bump it whenever a change to
#: the spec schema *or* to the simulation semantics behind it invalidates
#: previously computed :class:`ExperimentResult` payloads — cached entries
#: keyed under the old version simply stop matching and age out.
#:
#: Version history:
#:
#: 1. initial declarative schema;
#: 2. composable scenario generators — :class:`TopologySpec` grew the
#:    generator kinds/parameters (``ring``, ``random_disk``,
#:    ``binary_tree``, ``parking_lot``, ...), :class:`ScenarioSpec` grew
#:    ``workload`` and ``radio_profile``, and :class:`WorkloadSpec` was
#:    added, so every canonical spec dict (and therefore every digest)
#:    changed;
#: 3. dynamic scenarios — :class:`MobilitySpec` and :class:`ChurnSpec`
#:    were added (``ScenarioSpec`` grew ``mobility``/``churn``),
#:    :class:`WorkloadSpec` grew the heavy-tailed gravity knobs
#:    (``weight_tail``/``tail_index``), and :class:`ExperimentSpec` grew
#:    the run-time monitor selection (``monitors`` /
#:    ``monitor_interval_s``), so every canonical spec dict changed
#:    again.
SPEC_SCHEMA_VERSION = 3


def spec_digest(spec: "ExperimentSpec | Mapping[str, Any]",
                schema_version: int = SPEC_SCHEMA_VERSION) -> str:
    """Content address of an experiment: a stable hex digest of the
    canonical spec dict plus the schema version.

    The digest is computed over the sorted-key, minimal-separator JSON
    encoding of ``{"schema": schema_version, "spec": spec.to_dict()}``,
    so it is independent of dict insertion order, process hash
    randomization, and whether the caller holds a typed
    :class:`ExperimentSpec` or its plain-dict payload.  Two specs share a
    digest iff their canonical dicts are equal — which, by the
    determinism guarantees of the runner, means their results are
    bit-identical.
    """
    payload = spec.to_dict() if isinstance(spec, ExperimentSpec) else spec
    canonical = json.dumps(
        {"schema": int(schema_version), "spec": payload},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


Positions = dict[int, tuple[float, float]]

#: Deprecated static alias kept for discoverability; the authoritative
#: vocabulary is the topology generator registry of
#: :mod:`repro.sim.generators` (``topology_names()``), which third-party
#: generators extend at runtime.
TOPOLOGY_KINDS = (
    "chain", "line", "grid", "ring", "random_disk", "binary_tree",
    "parking_lot", "testbed", "positions",
)
TRANSPORTS = ("udp", "tcp")
RATE_MODES = ("1", "11", "mixed")
#: Gravity-workload node-weight distributions (:class:`WorkloadSpec`).
WEIGHT_TAILS = ("uniform", "pareto")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def _jsonify(value: Any) -> Any:
    if isinstance(value, (tuple, list)):
        return [_jsonify(item) for item in value]
    if isinstance(value, dict):
        return {key: _jsonify(item) for key, item in value.items()}
    return value


def _spec_to_dict(spec: Any) -> dict[str, Any]:
    """``dataclasses.asdict`` with tuples converted to lists, so payloads
    are stable under a JSON round-trip (``d == json.loads(json.dumps(d))``)."""
    return _jsonify(asdict(spec))


def _filter_kwargs(cls: type, data: Mapping[str, Any]) -> dict[str, Any]:
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise SpecError(f"{cls.__name__}: unknown fields {sorted(unknown)}")
    return dict(data)


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TopologySpec:
    """Node placement for a scenario: a topology generator name plus its
    parameters.

    ``kind`` is any generator registered with
    :func:`repro.sim.generators.register_topology`; the built-ins are
    ``"chain"``/``"line"``, ``"grid"``, ``"ring"``, ``"random_disk"``,
    ``"binary_tree"``, ``"parking_lot"``, ``"testbed"`` and
    ``"positions"``.  Generators read the parameter fields they care
    about and ignore the rest:

    Attributes:
        kind: registered topology generator name.
        num_nodes: node count for chains/lines, rings, random disks; the
            backbone length for parking lots.
        rows / cols: grid dimensions (``kind="grid"``).
        spacing_m: inter-node spacing for chains, grids, trees and
            parking-lot backbones.
        jitter_m: placement jitter for the testbed layout.
        radius_m: circle radius for rings, disk radius for random disks.
        depth: number of levels of a binary tree (``2**depth - 1`` nodes).
        min_separation_m: minimum pairwise node distance for random disks.
        stub_m: entry-stub offset off the parking-lot backbone.
        positions: explicit ``(node_id, x, y)`` triples
            (``kind="positions"``).
    """

    kind: str = "chain"
    num_nodes: int = 3
    rows: int = 2
    cols: int = 2
    spacing_m: float = 60.0
    jitter_m: float = 6.0
    radius_m: float = 150.0
    depth: int = 3
    min_separation_m: float = 25.0
    stub_m: float = 45.0
    positions: tuple[tuple[int, float, float], ...] = ()

    def __post_init__(self) -> None:
        from repro.sim.generators import topology_names

        _require(self.kind in topology_names(),
                 f"topology kind must be a registered generator, one of "
                 f"{topology_names()}; got {self.kind!r}")
        _require(self.spacing_m > 0, "spacing_m must be positive")
        _require(self.radius_m > 0, "radius_m must be positive")
        _require(self.min_separation_m >= 0, "min_separation_m must be non-negative")
        _require(self.stub_m > 0, "stub_m must be positive")
        if self.kind in ("chain", "line", "parking_lot", "random_disk"):
            _require(self.num_nodes >= 2,
                     f"a {self.kind} topology needs at least two nodes")
        if self.kind == "ring":
            _require(self.num_nodes >= 3, "a ring needs at least three nodes")
        if self.kind == "grid":
            _require(self.rows >= 1 and self.cols >= 1, "grid dimensions must be positive")
        if self.kind == "binary_tree":
            _require(self.depth >= 2, "a binary tree needs at least two levels")
        if self.kind == "positions":
            _require(len(self.positions) >= 2, "explicit topologies need at least two nodes")
            ids = [int(p[0]) for p in self.positions]
            _require(len(ids) == len(set(ids)), "duplicate node ids in positions")

    def build(self, seed: int = 0) -> Positions:
        """Materialize the node id -> (x, y) placement map through the
        topology generator registry."""
        from repro.sim.generators import build_topology

        return build_topology(self.kind, self.to_dict(), seed=seed)

    def node_count(self) -> int:
        """Node count this topology will produce (without building it)."""
        from repro.sim.generators import topology_node_count

        return topology_node_count(self.kind, self.to_dict())

    def to_dict(self) -> dict[str, Any]:
        return _spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologySpec":
        kwargs = _filter_kwargs(cls, data)
        if "positions" in kwargs:
            kwargs["positions"] = tuple(
                (int(n), float(x), float(y)) for n, x, y in kwargs["positions"]
            )
        return cls(**kwargs)


# ---------------------------------------------------------------------------
# Radio
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RadioSpec:
    """Radio configuration shared by all nodes (see :class:`RadioConfig`)."""

    tx_power_dbm: float = 19.0
    cs_threshold_dbm: float = -91.0
    antenna_gain_dbi: float = 5.0
    data_rate_mbps: float = 11.0
    basic_rate_mbps: float = 1.0

    def __post_init__(self) -> None:
        for name in ("data_rate_mbps", "basic_rate_mbps"):
            value = getattr(self, name)
            _require(value in RATE_TABLE,
                     f"{name} must be one of {sorted(RATE_TABLE)}, got {value!r}")

    def build(self) -> RadioConfig:
        return RadioConfig(
            tx_power_dbm=self.tx_power_dbm,
            cs_threshold_dbm=self.cs_threshold_dbm,
            antenna_gain_dbi=self.antenna_gain_dbi,
            data_rate=rate_from_mbps(self.data_rate_mbps),
            basic_rate=rate_from_mbps(self.basic_rate_mbps),
        )

    def to_dict(self) -> dict[str, Any]:
        return _spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RadioSpec":
        return cls(**_filter_kwargs(cls, data))


# ---------------------------------------------------------------------------
# Flows
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FlowSpec:
    """One traffic flow: transport, explicit route and shaping parameters.

    ``rate_bps`` follows :meth:`MeshNetwork.add_udp_flow` semantics:
    ``None`` (the default) is a backlogged/saturating source, a positive
    value is a CBR source at that rate, and ``0.0`` starts the flow idle
    until the controller programs it.  TCP flows are window-limited and
    ignore ``rate_bps``.
    """

    transport: str = "udp"
    path: tuple[int, ...] = ()
    rate_bps: float | None = None
    payload_bytes: int = 1470
    mss_bytes: int = 1460

    def __post_init__(self) -> None:
        _require(self.transport in TRANSPORTS,
                 f"transport must be one of {TRANSPORTS}, got {self.transport!r}")
        _require(len(self.path) >= 2, "a flow path needs at least two nodes")
        _require(len(set(self.path)) == len(self.path), "flow path revisits a node")
        _require(self.rate_bps is None or self.rate_bps >= 0,
                 "rate_bps must be None (backlogged) or non-negative")
        _require(self.payload_bytes > 0 and self.mss_bytes > 0,
                 "payload_bytes and mss_bytes must be positive")

    def to_dict(self) -> dict[str, Any]:
        return _spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FlowSpec":
        kwargs = _filter_kwargs(cls, data)
        if "path" in kwargs:
            kwargs["path"] = tuple(int(n) for n in kwargs["path"])
        return cls(**kwargs)


# ---------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """A generated flow set: workload generator name plus demand knobs.

    ``generator`` is any name registered with
    :func:`repro.sim.generators.register_workload`; the built-ins are
    ``"saturated_udp"``, ``"tcp_bulk"``, ``"mixed_tcp_udp"`` and
    ``"gravity"``.  The generator routes its demands over ETT paths of
    the built network and draws all randomness from a generator-private
    RNG stream spawned from the scenario seed
    (:func:`repro.sim.generators.workload_rng`), so the same spec always
    produces the same flows.

    ``rate_bps`` follows :class:`FlowSpec` semantics for the UDP flows a
    generator emits: ``None`` saturates, ``0.0`` starts idle until the
    controller programs the flow, a positive value is a CBR rate (the
    ``gravity`` generator splits ``rate_bps * num_flows`` across demands
    by gravity weight instead of handing every flow the same rate).

    ``weight_tail`` selects the gravity node-weight distribution:
    ``"uniform"`` (the historical default) or ``"pareto"``, which draws
    heavy-tailed Lomax weights with shape ``tail_index`` so a few nodes
    dominate the traffic matrix, as in measured mesh deployments.  Both
    fields are ignored by the non-gravity generators.
    """

    generator: str = "saturated_udp"
    num_flows: int = 4
    max_hops: int = 4
    rate_bps: float | None = None
    tcp_fraction: float = 0.5
    payload_bytes: int = 1470
    mss_bytes: int = 1460
    demand_exponent: float = 1.0
    weight_tail: str = "uniform"
    tail_index: float = 1.5

    def __post_init__(self) -> None:
        from repro.sim.generators import workload_names

        _require(self.generator in workload_names(),
                 f"workload generator must be a registered name, one of "
                 f"{workload_names()}; got {self.generator!r}")
        _require(self.num_flows >= 1, "num_flows must be at least 1")
        _require(self.max_hops >= 1, "max_hops must be at least 1")
        _require(self.rate_bps is None or self.rate_bps >= 0,
                 "rate_bps must be None (backlogged) or non-negative")
        _require(0.0 <= self.tcp_fraction <= 1.0,
                 "tcp_fraction must lie in [0, 1]")
        _require(self.payload_bytes > 0 and self.mss_bytes > 0,
                 "payload_bytes and mss_bytes must be positive")
        _require(self.demand_exponent > 0, "demand_exponent must be positive")
        _require(self.weight_tail in WEIGHT_TAILS,
                 f"weight_tail must be one of {WEIGHT_TAILS}, "
                 f"got {self.weight_tail!r}")
        _require(self.tail_index > 0, "tail_index must be positive")

    def params(self) -> dict[str, Any]:
        """Keyword arguments for :func:`repro.sim.generators.generate_workload`."""
        data = _spec_to_dict(self)
        data.pop("generator")
        return data

    def to_dict(self) -> dict[str, Any]:
        return _spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        return cls(**_filter_kwargs(cls, data))


# ---------------------------------------------------------------------------
# Dynamics: mobility and churn
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MobilitySpec:
    """Node mobility for a ``generated`` scenario.

    ``model`` is any name registered with
    :func:`repro.sim.dynamics.register_mobility`; the built-ins are
    ``"waypoint"`` (random waypoint inside the initial bounding box plus
    ``area_margin_m``, moving at ``speed_mps`` and pausing ``pause_s`` at
    each target) and ``"drift"`` (per-epoch Gaussian displacement with
    standard deviation ``drift_sigma_m``, clipped to the same box).

    Positions advance in discrete *position epochs* every ``epoch_s``
    seconds of virtual time; each epoch the
    :class:`~repro.sim.dynamics.DynamicsDriver` rebuilds only the power-
    table rows/columns of the nodes that actually moved.  All trajectory
    randomness comes from a model-private ``rng_spawn_key`` stream seeded
    by the scenario ``seed`` (like topology placement), never from the
    simulation streams.
    """

    model: str = "waypoint"
    epoch_s: float = 1.0
    speed_mps: float = 1.5
    pause_s: float = 0.0
    drift_sigma_m: float = 2.0
    area_margin_m: float = 25.0

    def __post_init__(self) -> None:
        from repro.sim.dynamics import mobility_names

        _require(self.model in mobility_names(),
                 f"mobility model must be a registered name, one of "
                 f"{mobility_names()}; got {self.model!r}")
        _require(self.epoch_s > 0, "epoch_s must be positive")
        _require(self.speed_mps >= 0, "speed_mps must be non-negative")
        _require(self.pause_s >= 0, "pause_s must be non-negative")
        _require(self.drift_sigma_m >= 0, "drift_sigma_m must be non-negative")
        _require(self.area_margin_m >= 0, "area_margin_m must be non-negative")

    def params(self) -> dict[str, Any]:
        """Keyword parameters for :func:`repro.sim.dynamics.build_mobility`."""
        data = _spec_to_dict(self)
        data.pop("model")
        return data

    def to_dict(self) -> dict[str, Any]:
        return _spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MobilitySpec":
        return cls(**_filter_kwargs(cls, data))


@dataclass(frozen=True)
class ChurnSpec:
    """Seeded node join/fail schedule for a ``generated`` scenario.

    ``num_events`` node failures are drawn uniformly (without
    replacement) from the non-protected nodes, at times uniform in
    ``[start_s, end_s]`` of virtual time; a failed node rejoins
    ``down_s`` seconds later (``down_s=0`` means the failure is
    permanent).  With ``protect_endpoints`` (the default) the sources and
    sinks of the scenario's routed flows never fail, so churn exercises
    relay loss — the paper-relevant case — without silencing traffic
    altogether.  The schedule is drawn from the private ``"churn"``
    ``rng_spawn_key`` stream seeded by the scenario ``seed``.
    """

    num_events: int = 1
    start_s: float = 0.0
    end_s: float = 60.0
    down_s: float = 10.0
    protect_endpoints: bool = True

    def __post_init__(self) -> None:
        _require(self.num_events >= 1, "num_events must be at least 1")
        _require(self.start_s >= 0, "start_s must be non-negative")
        _require(self.end_s >= self.start_s, "end_s must be at least start_s")
        _require(self.down_s >= 0, "down_s must be non-negative (0 = permanent)")

    def to_dict(self) -> dict[str, Any]:
        return _spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChurnSpec":
        return cls(**_filter_kwargs(cls, data))


# ---------------------------------------------------------------------------
# Probing
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ProbingSpec:
    """Broadcast probing system settings plus the measurement warmup."""

    period_s: float = 0.5
    data_probe_bytes: int = 1500
    warmup_s: float = 45.0

    def __post_init__(self) -> None:
        _require(self.period_s > 0, "period_s must be positive")
        _require(self.data_probe_bytes > 0, "data_probe_bytes must be positive")
        _require(self.warmup_s >= 0, "warmup_s must be non-negative")

    def to_dict(self) -> dict[str, Any]:
        return _spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProbingSpec":
        return cls(**_filter_kwargs(cls, data))


# ---------------------------------------------------------------------------
# Controller
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ControllerSpec:
    """The online optimization loop, or disabled for a noRC baseline.

    ``alpha`` selects the alpha-fair objective: 0 is the paper's TCP-Max,
    1 is proportional fairness (TCP-Prop).
    """

    enabled: bool = True
    alpha: float = 1.0
    probing_window: int = 120
    payload_bytes: int = 1470
    interference: str = "two_hop"
    connectivity_threshold: float = 0.5
    min_probes_for_estimator: int = 40

    def __post_init__(self) -> None:
        _require(self.alpha >= 0, "alpha must be non-negative")
        _require(self.probing_window >= 1, "probing_window must be at least 1")
        _require(self.payload_bytes > 0, "payload_bytes must be positive")
        _require(self.interference == "two_hop",
                 f"interference must be 'two_hop', got {self.interference!r}")
        _require(0.0 < self.connectivity_threshold <= 1.0,
                 "connectivity_threshold must lie in (0, 1]")
        _require(self.min_probes_for_estimator >= 1,
                 "min_probes_for_estimator must be at least 1")

    @property
    def utility(self) -> AlphaFairUtility:
        return AlphaFairUtility(alpha=self.alpha)

    def to_dict(self) -> dict[str, Any]:
        return _spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ControllerSpec":
        return cls(**_filter_kwargs(cls, data))


#: Convenience baseline: no rate control at all (the paper's ``noRC``).
NO_RATE_CONTROL = ControllerSpec(enabled=False)


# ---------------------------------------------------------------------------
# Scenario
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """A named scenario plus the knobs its registered builder reads.

    ``scenario`` is a key in the scenario registry
    (:func:`repro.experiment.registry.register_scenario`); the built-in
    names are ``"chain"``, ``"testbed"``, ``"random_multiflow"``,
    ``"starvation"`` and the fully declarative ``"generated"``, which
    composes a topology generator (``topology``), a workload generator
    (``workload``, or explicit ``flows``) and a named radio profile
    (``radio_profile``).  ``seed`` fixes topology and shadowing;
    ``run_seed`` (defaulting to ``seed``) re-seeds only traffic/backoff
    randomness so one physical configuration can be re-run independently.

    Not every field is read by every builder — ``rate_mode`` matters to
    ``random_multiflow`` and ``generated`` (link-rate assignment), while
    ``num_flows`` / ``max_hops`` / ``transport`` matter only to
    ``random_multiflow``: a ``generated`` workload carries its own
    demand knobs on :class:`WorkloadSpec`.  ``topology`` / ``radio`` /
    ``flows`` are ignored by ``starvation``, which fixes its own
    three-node gateway chain.
    ``radio`` and ``radio_profile`` are mutually exclusive; the profile
    resolves against :data:`repro.sim.generators.RADIO_PROFILES` at
    build time, at the scenario's ``data_rate_mbps``.
    """

    scenario: str = "chain"
    seed: int = 0
    run_seed: int | None = None
    data_rate_mbps: float = 11.0
    shadowing_sigma_db: float | None = None
    topology: TopologySpec | None = None
    radio: RadioSpec | None = None
    radio_profile: str | None = None
    flows: tuple[FlowSpec, ...] = ()
    workload: WorkloadSpec | None = None
    num_flows: int = 4
    max_hops: int = 4
    rate_mode: str = "mixed"
    transport: str = "udp"
    mobility: MobilitySpec | None = None
    churn: ChurnSpec | None = None

    def __post_init__(self) -> None:
        _require(bool(self.scenario), "scenario name must be non-empty")
        _require(self.seed >= 0, "seed must be non-negative")
        _require(self.run_seed is None or self.run_seed >= 0,
                 "run_seed must be non-negative")
        _require(self.data_rate_mbps in RATE_TABLE,
                 f"data_rate_mbps must be one of {sorted(RATE_TABLE)}")
        _require(self.shadowing_sigma_db is None or self.shadowing_sigma_db >= 0,
                 "shadowing_sigma_db must be non-negative")
        _require(self.num_flows >= 1, "num_flows must be at least 1")
        _require(self.max_hops >= 1, "max_hops must be at least 1")
        _require(self.rate_mode in RATE_MODES,
                 f"rate_mode must be one of {RATE_MODES}, got {self.rate_mode!r}")
        _require(self.transport in TRANSPORTS,
                 f"transport must be one of {TRANSPORTS}, got {self.transport!r}")
        _require(self.radio is None or self.radio_profile is None,
                 "give either radio or radio_profile, not both")
        _require(not (self.flows and self.workload is not None),
                 "give either explicit flows or a workload generator, not both")
        _require(self.mobility is None or self.scenario == "generated",
                 "mobility is only supported by the 'generated' scenario")
        _require(self.churn is None or self.scenario == "generated",
                 "churn is only supported by the 'generated' scenario")
        if self.radio_profile is not None:
            from repro.sim.generators import radio_profile_names

            _require(self.radio_profile in radio_profile_names(),
                     f"radio_profile must be one of {radio_profile_names()}, "
                     f"got {self.radio_profile!r}")

    def with_seed(self, seed: int, run_seed: int | None = None) -> "ScenarioSpec":
        """The same scenario re-seeded (used by batch seed sweeps)."""
        return replace(self, seed=seed, run_seed=run_seed)

    def describe(self) -> str:
        """Compact human-readable identity, e.g. ``generated(grid 2x3,
        mixed_tcp_udp)`` — what reports print when no label is set."""
        if self.scenario != "generated":
            return self.scenario
        parts = []
        if self.topology is not None:
            shape = {
                "grid": f"grid {self.topology.rows}x{self.topology.cols}",
                "binary_tree": f"binary_tree d{self.topology.depth}",
            }.get(self.topology.kind, f"{self.topology.kind} {self.topology.node_count()}")
            parts.append(shape)
        if self.workload is not None:
            parts.append(self.workload.generator)
        elif self.flows:
            parts.append(f"{len(self.flows)} flow(s)")
        if self.radio_profile and self.radio_profile != "default":
            parts.append(self.radio_profile)
        if self.mobility is not None:
            parts.append(f"{self.mobility.model} mobility")
        if self.churn is not None:
            parts.append("churn")
        return f"generated({', '.join(parts)})" if parts else "generated"

    def to_dict(self) -> dict[str, Any]:
        data = _spec_to_dict(self)
        data["topology"] = self.topology.to_dict() if self.topology else None
        data["radio"] = self.radio.to_dict() if self.radio else None
        data["flows"] = [flow.to_dict() for flow in self.flows]
        data["workload"] = self.workload.to_dict() if self.workload else None
        data["mobility"] = self.mobility.to_dict() if self.mobility else None
        data["churn"] = self.churn.to_dict() if self.churn else None
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        kwargs = _filter_kwargs(cls, data)
        if kwargs.get("topology") is not None:
            kwargs["topology"] = TopologySpec.from_dict(kwargs["topology"])
        if kwargs.get("radio") is not None:
            kwargs["radio"] = RadioSpec.from_dict(kwargs["radio"])
        if "flows" in kwargs:
            kwargs["flows"] = tuple(FlowSpec.from_dict(f) for f in kwargs["flows"])
        if kwargs.get("workload") is not None:
            kwargs["workload"] = WorkloadSpec.from_dict(kwargs["workload"])
        if kwargs.get("mobility") is not None:
            kwargs["mobility"] = MobilitySpec.from_dict(kwargs["mobility"])
        if kwargs.get("churn") is not None:
            kwargs["churn"] = ChurnSpec.from_dict(kwargs["churn"])
        return cls(**kwargs)


# ---------------------------------------------------------------------------
# Experiment
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentSpec:
    """A complete, runnable experiment.

    Schedule: probing warms up for ``probing.warmup_s`` of virtual time
    (skipped when the controller is disabled — a noRC baseline measures
    raw 802.11, with no probe traffic on the air), then flows start and
    ``cycles`` optimization/measurement rounds run, each
    ``cycle_measure_s`` long with the first ``settle_s`` seconds excluded
    from throughput accounting.

    ``monitors`` names run-time monitors from the
    :mod:`repro.monitors` registry (``"pdr"``, ``"throughput"``,
    ``"e2e_latency"``) attached when the flows start; each samples every
    ``monitor_interval_s`` of virtual time and emits typed per-flow time
    series into :attr:`ExperimentResult.monitors`.  Monitor selection
    lives on the spec — not an environment knob — because the series are
    part of the content-addressed result payload: two runs of one digest
    must produce byte-identical payloads through every cache and broker
    path.
    """

    scenario: ScenarioSpec = field(default_factory=ScenarioSpec)
    probing: ProbingSpec = field(default_factory=ProbingSpec)
    controller: ControllerSpec = field(default_factory=ControllerSpec)
    cycles: int = 1
    cycle_measure_s: float = 10.0
    settle_s: float = 2.0
    label: str = ""
    monitors: tuple[str, ...] = ()
    monitor_interval_s: float = 1.0

    def __post_init__(self) -> None:
        _require(self.cycles >= 1, "cycles must be at least 1")
        _require(self.cycle_measure_s > 0, "cycle_measure_s must be positive")
        _require(0 <= self.settle_s < self.cycle_measure_s,
                 "settle_s must be non-negative and shorter than cycle_measure_s")
        _require(self.monitor_interval_s > 0, "monitor_interval_s must be positive")
        _require(len(set(self.monitors)) == len(self.monitors),
                 "monitors must not repeat a name")
        if self.monitors:
            from repro.monitors import monitor_names

            for name in self.monitors:
                _require(name in monitor_names(),
                         f"monitors must be registered names, one of "
                         f"{monitor_names()}; got {name!r}")

    def with_seed(self, seed: int, run_seed: int | None = None) -> "ExperimentSpec":
        """The same experiment on a re-seeded scenario."""
        return replace(self, scenario=self.scenario.with_seed(seed, run_seed))

    def describe(self) -> str:
        controller = (self.controller.utility.describe()
                      if self.controller.enabled else "no rate control")
        return (f"{self.label or self.scenario.describe()}"
                f" [seed={self.scenario.seed}, {controller}, {self.cycles} cycle(s)]")

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario.to_dict(),
            "probing": self.probing.to_dict(),
            "controller": self.controller.to_dict(),
            "cycles": self.cycles,
            "cycle_measure_s": self.cycle_measure_s,
            "settle_s": self.settle_s,
            "label": self.label,
            "monitors": list(self.monitors),
            "monitor_interval_s": self.monitor_interval_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        kwargs = _filter_kwargs(cls, data)
        if "scenario" in kwargs:
            kwargs["scenario"] = ScenarioSpec.from_dict(kwargs["scenario"])
        if "probing" in kwargs:
            kwargs["probing"] = ProbingSpec.from_dict(kwargs["probing"])
        if "controller" in kwargs:
            kwargs["controller"] = ControllerSpec.from_dict(kwargs["controller"])
        if "monitors" in kwargs:
            kwargs["monitors"] = tuple(str(name) for name in kwargs["monitors"])
        return cls(**kwargs)
