"""Shared machinery of the queue-shaped backends.

The file-based :class:`~repro.experiment.backends.work_queue.WorkQueueBackend`
and the HTTP :class:`~repro.experiment.backends.broker_client.BrokerBackend`
speak the same task/claim/result envelope protocol and manage local
drainer subprocesses the same way; this module holds the shared parts:

* the **lease/retry knobs** (``REPRO_QUEUE_LEASE_S``,
  ``REPRO_QUEUE_MAX_ATTEMPTS``) and the task envelope constructor that
  embeds them, so submitter, workers and broker all agree on how long a
  claim may go silent and how many times a task may lose its worker
  before it is declared dead;
* :class:`QueueStats`, the per-submission account of what self-healing
  actually did (drainers spawned, leases expired, retry budgets
  exhausted), surfaced on ``BatchResult.queue``;
* :class:`DrainerPool`, the submitter-side auto-scaler: instead of
  spawning a fixed worker count up front, the collect loop tops the
  pool up from the *observed* queue depth every tick — a drainer that
  died (or exited on an empty queue before a lease-expired task was
  requeued) is replaced the moment there is visible work again.  Each
  drainer writes its own log file, so a failure embeds the tail of the
  log of the worker that actually failed instead of an interleaved
  mess.
"""

from __future__ import annotations

import os
import random
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = [
    "BROKER_TOKEN_ENV_VAR",
    "BROKER_URL_ENV_VAR",
    "DEFAULT_LEASE_S",
    "DEFAULT_MAX_ATTEMPTS",
    "DrainerPool",
    "LEASE_ENV_VAR",
    "MAX_ATTEMPTS_ENV_VAR",
    "PollBackoff",
    "QueueStats",
    "default_broker_token",
    "default_lease_s",
    "default_max_attempts",
    "exhausted_error",
    "task_envelope",
    "worker_subprocess_env",
]

#: Seconds a claim may go without a heartbeat before any observer may
#: requeue it.  Workers heartbeat at a quarter of the lease, so a live
#: worker never comes close; a SIGKILL'd one is requeued within one
#: lease interval.
LEASE_ENV_VAR = "REPRO_QUEUE_LEASE_S"
DEFAULT_LEASE_S = 30.0

#: Total executions a task may consume (first run + retries) before the
#: queue gives up and synthesizes an error envelope naming the task.
MAX_ATTEMPTS_ENV_VAR = "REPRO_QUEUE_MAX_ATTEMPTS"
DEFAULT_MAX_ATTEMPTS = 3

#: Default broker URL for ``BrokerBackend()`` / ``REPRO_BATCH_BACKEND=broker``.
BROKER_URL_ENV_VAR = "REPRO_BROKER_URL"

#: Shared broker secret.  Set on the broker it *requires* the token; set
#: on clients (submitter, workers) they *send* it.  Export the same
#: value everywhere — :func:`worker_subprocess_env` copies the
#: submitter's environment, so locally spawned drainers inherit it.
BROKER_TOKEN_ENV_VAR = "REPRO_BROKER_TOKEN"


def default_lease_s() -> float:
    """The environment's claim lease, or :data:`DEFAULT_LEASE_S`."""
    raw = os.environ.get(LEASE_ENV_VAR, "")
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_LEASE_S
    return value if raw and value > 0 else DEFAULT_LEASE_S


def default_max_attempts() -> int:
    """The environment's retry budget, or :data:`DEFAULT_MAX_ATTEMPTS`."""
    raw = os.environ.get(MAX_ATTEMPTS_ENV_VAR, "")
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_MAX_ATTEMPTS
    return value if raw and value >= 1 else DEFAULT_MAX_ATTEMPTS


def default_broker_token() -> str | None:
    """The environment's broker token, or ``None`` (open broker)."""
    return os.environ.get(BROKER_TOKEN_ENV_VAR) or None


class PollBackoff:
    """Jittered exponential backoff for idle polling.

    Flat ``poll_interval_s`` polling is right while work is flowing, but
    an *idle* tenant hammering a shared broker at 20 Hz — every
    submitter waiting on stragglers, every ``--idle-timeout-s`` worker
    between submissions — is pure load.  The first ``grace`` consecutive
    empty polls stay at ``base_s`` (an *active* sweep sees empty polls
    between result arrivals and during worker startup; slowing those
    would trade submit→collect latency for nothing — a poll costs the
    broker well under a millisecond), then the delay doubles up to ``cap_s``
    (callers cap well below a lease so liveness reactions stay prompt).
    Full jitter (a uniform factor in ``[0.5, 1.0]``) decorrelates a
    fleet that went idle together.  Any progress resets the clock.
    """

    def __init__(self, base_s: float, cap_s: float, grace: int = 32) -> None:
        self.base_s = max(base_s, 0.001)
        self.cap_s = max(cap_s, self.base_s)
        self.grace = max(grace, 0)
        self._idle_polls = 0
        # Not the sim layer: schedule jitter may be nondeterministic.
        self._rng = random.Random()

    def reset(self) -> None:
        """Call on any progress; the next delay is the base again."""
        self._idle_polls = 0

    def next_delay(self) -> float:
        """Delay before the next poll, growing per consecutive idle call."""
        exponent = max(self._idle_polls - self.grace, 0)
        delay = min(self.base_s * (2.0**exponent), self.cap_s)
        self._idle_polls += 1
        return delay * (0.5 + 0.5 * self._rng.random())


def task_envelope(
    task_id: str,
    spec: Mapping[str, Any],
    lease_s: float | None = None,
    max_attempts: int | None = None,
) -> dict[str, Any]:
    """The task half of the queue protocol, shared by every transport.

    ``attempts`` counts claims so far (bumped by whoever requeues an
    expired claim); ``lease_s``/``max_attempts`` ride inside the
    envelope so workers and requeuers — possibly on other hosts, with
    other environments — enforce the *submitter's* policy, not their
    own defaults.
    """
    return {
        "id": task_id,
        "spec": dict(spec),
        "attempts": 0,
        "lease_s": float(lease_s if lease_s is not None else default_lease_s()),
        "max_attempts": int(
            max_attempts if max_attempts is not None else default_max_attempts()
        ),
    }


def exhausted_error(task_id: str, attempts: int, max_attempts: int) -> str:
    """The error text of a synthesized give-up envelope.

    Contractual content: the task id and the attempt count, so the
    eventual :class:`~repro.experiment.backends.base.BackendError` names
    the one task that kept losing its worker instead of a blanket
    timeout that discards every finished cell.
    """
    return (
        f"task {task_id} lost its worker {attempts} time(s) and exhausted "
        f"its retry budget (max_attempts={max_attempts}); the claim lease "
        f"expired without a result each time"
    )


@dataclass
class QueueStats:
    """What the self-healing layer did during one submission."""

    #: Local drainer subprocesses spawned over the whole run (top-ups
    #: after worker deaths included — this can exceed the worker cap).
    spawned: int = 0
    #: Expired claims put back on the queue (worker deaths survived).
    requeued: int = 0
    #: Tasks that burned their whole retry budget and were synthesized
    #: into error envelopes.
    exhausted: int = 0
    #: Largest unclaimed backlog the collect loop observed.
    max_depth: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "spawned": self.spawned,
            "requeued": self.requeued,
            "exhausted": self.exhausted,
            "max_depth": self.max_depth,
        }


def worker_subprocess_env() -> dict[str, str]:
    """Environment for spawned drainers.

    Workers must be able to import repro even when the submitter runs
    from a source checkout that was put on ``sys.path`` by hand (tests,
    conftest) rather than installed.
    """
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parents[3])
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = package_root + (
            os.pathsep + existing if existing else ""
        )
    return env


@dataclass
class DrainerPool:
    """Submitter-side drainer subprocesses, topped up from queue depth.

    Args:
        command: the drainer argv (``python -m repro.experiment.worker
            ...``); every spawn runs the same command.
        log_dir: where per-drainer logs go.
        log_prefix: log files are ``{log_prefix}-{n:02d}.log`` — one per
            drainer, so a traceback is never interleaved with another
            process's output.
        cap: most drainers alive at once (0 = external-drain mode, the
            pool never spawns).
    """

    command: Sequence[str]
    log_dir: Path
    log_prefix: str
    cap: int
    stats: QueueStats = field(default_factory=QueueStats)
    _drainers: list[tuple[subprocess.Popen, Path]] = field(default_factory=list)
    _env: dict[str, str] = field(default_factory=worker_subprocess_env)

    def _spawn(self) -> None:
        log_path = self.log_dir / f"{self.log_prefix}-{self.stats.spawned:02d}.log"
        log = open(log_path, "ab")
        try:
            proc = subprocess.Popen(
                list(self.command),
                stdout=log,
                stderr=subprocess.STDOUT,
                env=self._env,
            )
        finally:
            log.close()
        self._drainers.append((proc, log_path))
        self.stats.spawned += 1

    def top_up(self, depth: int) -> None:
        """Spawn drainers until ``min(cap, depth)`` are alive.

        ``depth`` is the *observed* unclaimed backlog — the pool never
        spawns more workers than there are visible tasks, and a worker
        that died mid-sweep is replaced the next time a task (its own,
        requeued after lease expiry) becomes visible again.
        """
        self.stats.max_depth = max(self.stats.max_depth, depth)
        want = min(self.cap, depth)
        for _ in range(want - self.alive_count()):
            self._spawn()

    def alive_count(self) -> int:
        return sum(1 for proc, _ in self._drainers if proc.poll() is None)

    def any_alive(self) -> bool:
        return any(proc.poll() is None for proc, _ in self._drainers)

    def failed_exits(self) -> list[tuple[subprocess.Popen, Path]]:
        """Drainers that exited with a nonzero status (crash or kill),
        oldest first."""
        return [
            (proc, log_path)
            for proc, log_path in self._drainers
            if proc.poll() not in (None, 0)
        ]

    def failing_log_tail(self, limit: int = 2000) -> str:
        """Tail of the log of the most recently failed drainer (or, when
        none failed, of the last drainer at all) — the satellite fix for
        the old interleaved shared log: the traceback shown is the
        *failing* worker's own."""
        failed = self.failed_exits()
        candidates = failed if failed else self._drainers
        for proc, log_path in reversed(candidates):
            try:
                text = log_path.read_text(encoding="utf-8")
            except OSError:
                continue
            if text.strip():
                return (
                    f"[drainer exit status {proc.poll()}, log {log_path.name}]\n"
                    + text[-limit:]
                )
        return ""

    def terminate(self) -> None:
        for proc, _ in self._drainers:
            if proc.poll() is None:
                proc.terminate()
        for proc, _ in self._drainers:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()

    def remove_logs(self) -> None:
        for _, log_path in self._drainers:
            try:
                log_path.unlink()
            except OSError:
                pass
