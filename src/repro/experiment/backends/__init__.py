"""Pluggable execution backends for batch sweeps.

The :class:`repro.experiment.batch.BatchRunner` does not run specs
itself: it plans the sweep (see :mod:`repro.experiment.planner`) and
hands the cells that actually need simulating to an
:class:`ExecutionBackend`.  Every backend speaks the same dict-in /
dict-out protocol as :func:`run_spec_payload` — a spec's canonical dict
goes in, the result's canonical dict comes out — so swapping backends
can never change results: by the determinism guarantees of the engine
(CRC32-derived RNG spawn keys), the payload a backend returns is
byte-identical no matter where the simulation ran.

Four backends ship with the library:

* :class:`SerialBackend` — run every cell inline in the calling
  process.  The reference implementation the others are tested against.
* :class:`ProcessPoolBackend` — fan out across local worker processes
  with :class:`concurrent.futures.ProcessPoolExecutor`.
* :class:`WorkQueueBackend` — a shared-directory work queue.  The
  submitting process writes one JSON task file per cell; *any* process
  that can see the directory — locally spawned drainers, or remote
  workers started with ``python -m repro.experiment.worker <dir>`` on
  hosts sharing the filesystem — claims tasks by atomic rename, runs
  them, and writes result files back.
* :class:`BrokerBackend` — the same task/claim/result protocol spoken
  over HTTP to a :mod:`repro.experiment.broker`, dropping the
  shared-filesystem requirement entirely: submitter and workers need
  only a URL in common.

The queue-shaped backends are **self-healing**: a claim is a lease
(``REPRO_QUEUE_LEASE_S``) that the worker heartbeats while it computes;
a claim whose lease expires — a ``kill -9``'d worker — is requeued with
a per-task retry budget (``REPRO_QUEUE_MAX_ATTEMPTS``) before the queue
gives up and synthesizes an error envelope naming the task, and locally
spawned drainers are topped up from the observed queue depth, so a dead
worker costs one lease interval, never the sweep.

:func:`resolve_backend` maps the ``backend`` argument of
:class:`BatchRunner` (a name, an instance, or ``None``) to an instance;
exporting ``REPRO_BATCH_BACKEND=serial|process|work_queue|broker``
selects the default backend for every ``BatchRunner`` that did not pass
one explicitly, which is how the CI backend matrix drives the whole
experiment test package through each backend in turn.
"""

from repro.experiment.backends.base import (
    BACKEND_ENV_VAR,
    BackendError,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    backend_names,
    register_backend,
    resolve_backend,
    run_spec_payload,
)
from repro.experiment.backends.queue_common import (
    BROKER_TOKEN_ENV_VAR,
    BROKER_URL_ENV_VAR,
    DEFAULT_LEASE_S,
    DEFAULT_MAX_ATTEMPTS,
    LEASE_ENV_VAR,
    MAX_ATTEMPTS_ENV_VAR,
    PollBackoff,
    QueueStats,
    default_broker_token,
    default_lease_s,
    default_max_attempts,
    task_envelope,
)
from repro.experiment.backends.work_queue import (
    CLAIMED_DIR,
    RESULTS_DIR,
    TASKS_DIR,
    WorkQueueBackend,
    _atomic_write_json,
    ensure_queue_dirs,
    requeue_expired_claims,
)
from repro.experiment.backends.broker_client import (
    BrokerAuthError,
    BrokerBackend,
    BrokerClient,
    BrokerUnavailable,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "BROKER_TOKEN_ENV_VAR",
    "BROKER_URL_ENV_VAR",
    "BackendError",
    "BrokerAuthError",
    "BrokerBackend",
    "BrokerClient",
    "BrokerUnavailable",
    "CLAIMED_DIR",
    "DEFAULT_LEASE_S",
    "DEFAULT_MAX_ATTEMPTS",
    "ExecutionBackend",
    "LEASE_ENV_VAR",
    "MAX_ATTEMPTS_ENV_VAR",
    "PollBackoff",
    "ProcessPoolBackend",
    "QueueStats",
    "RESULTS_DIR",
    "SerialBackend",
    "TASKS_DIR",
    "WorkQueueBackend",
    "backend_names",
    "default_broker_token",
    "default_lease_s",
    "default_max_attempts",
    "ensure_queue_dirs",
    "register_backend",
    "requeue_expired_claims",
    "resolve_backend",
    "run_spec_payload",
    "task_envelope",
]
