"""HTTP client half of the broker protocol: ``BrokerBackend``.

:class:`BrokerClient` is a tiny ``urllib``-based JSON client for the
endpoints of :mod:`repro.experiment.broker`; it is shared by the
submitting :class:`BrokerBackend` here and by broker-mode workers
(``python -m repro.experiment.worker --broker <url>``).

:class:`BrokerBackend` is the network-transparent sibling of
:class:`~repro.experiment.backends.work_queue.WorkQueueBackend`: same
task/claim/result envelopes, same leases and retry budgets (the broker
enforces them server-side), same auto-scaled local drainers — but the
only thing submitter and workers share is a URL.
"""

from __future__ import annotations

import json
import os
import socket
import sys
import time
import urllib.error
import urllib.request
import uuid
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Any, Mapping, Sequence

from repro.experiment.backends.base import (
    BackendError,
    ExecutionBackend,
    register_backend,
)
from repro.experiment.backends.queue_common import (
    BROKER_URL_ENV_VAR,
    DrainerPool,
    QueueStats,
    default_lease_s,
    default_max_attempts,
    task_envelope,
)

__all__ = ["BrokerBackend", "BrokerClient", "BrokerUnavailable"]


class BrokerUnavailable(ConnectionError):
    """The broker did not answer (connection refused, timeout, 5xx)."""


class BrokerClient:
    """JSON-over-HTTP client for one broker URL (stdlib only)."""

    def __init__(self, url: str, timeout_s: float = 10.0) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s

    def _request(self, path: str, payload: Mapping[str, Any] | None) -> dict:
        if payload is None:
            request = urllib.request.Request(self.url + path)
        else:
            request = urllib.request.Request(
                self.url + path,
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = exc.read().decode("utf-8", "replace")[:500]
            except OSError:
                pass
            raise BrokerUnavailable(
                f"broker {self.url} answered {exc.code} on {path}: {detail}"
            ) from exc
        except (urllib.error.URLError, socket.timeout, ConnectionError) as exc:
            raise BrokerUnavailable(
                f"broker {self.url} unreachable on {path}: {exc}"
            ) from exc

    # One method per endpoint; see the broker module docstring.
    def submit(self, tasks: Sequence[Mapping[str, Any]]) -> int:
        return int(self._request("/submit", {"tasks": list(tasks)})["accepted"])

    def claim(self, match: str = "", worker: str = "") -> dict[str, Any] | None:
        return self._request("/claim", {"match": match, "worker": worker})["task"]

    def heartbeat(self, task_id: str) -> bool:
        return bool(self._request("/heartbeat", {"id": task_id})["ok"])

    def result(self, outcome: Mapping[str, Any]) -> bool:
        return bool(self._request("/result", dict(outcome))["ok"])

    def collect(
        self,
        ids: Sequence[str] | None = None,
        match: str | None = None,
        ack: Sequence[str] = (),
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {"ack": list(ack)}
        if match is not None:
            payload["match"] = match
        else:
            payload["ids"] = list(ids or [])
        return self._request("/collect", payload)

    def cancel(self, ids: Sequence[str]) -> int:
        return int(self._request("/cancel", {"ids": list(ids)})["cancelled"])

    def stats(self) -> dict[str, Any]:
        return self._request("/stats", None)


class BrokerBackend(ExecutionBackend):
    """Execute a sweep through an HTTP broker instead of a shared dir.

    Args:
        url: the broker.  ``None`` honors ``REPRO_BROKER_URL``; with
            neither set, a private in-process broker is started for the
            duration of each :meth:`run` (local fan-out with zero
            deployment — and what ``REPRO_BATCH_BACKEND=broker`` gives
            CI).
        workers: cap on concurrently live local drainer processes
            (``python -m repro.experiment.worker --broker <url>``).
            ``0`` spawns none and relies on an external fleet already
            polling the broker — which then requires an explicit or
            environment-provided ``url``, since a private broker nobody
            else can discover would hang until timeout.
        cache_dir: optional shared :class:`ResultCache` directory the
            spawned workers write computed results back to.
        poll_interval_s: how often the submitter polls ``/collect``.
        timeout_s: give up (``BackendError``) when results stop arriving
            for this long with nothing claimed and nothing recoverable.
        lease_s / max_attempts: per-task lease and retry budget embedded
            in this submission's envelopes; default to
            ``REPRO_QUEUE_LEASE_S`` / ``REPRO_QUEUE_MAX_ATTEMPTS``.

    After :meth:`run`, :attr:`last_run_stats` holds the submission's
    :class:`~repro.experiment.backends.queue_common.QueueStats`.
    """

    name = "broker"

    def __init__(
        self,
        url: str | None = None,
        workers: int | None = None,
        cache_dir: str | os.PathLike[str] | None = None,
        poll_interval_s: float = 0.05,
        timeout_s: float = 600.0,
        lease_s: float | None = None,
        max_attempts: int | None = None,
    ) -> None:
        if workers is not None and workers < 0:
            raise ValueError("workers must be non-negative")
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if lease_s is not None and lease_s <= 0:
            raise ValueError("lease_s must be positive")
        if max_attempts is not None and max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if workers == 0 and url is None and not os.environ.get(BROKER_URL_ENV_VAR):
            raise ValueError(
                "workers=0 (external drain) requires a broker url the "
                "external workers can reach; a private per-run broker "
                "would hang until timeout"
            )
        self.url = url
        self.workers = workers
        self.cache_dir = Path(cache_dir).expanduser() if cache_dir else None
        self.poll_interval_s = poll_interval_s
        self.timeout_s = timeout_s
        self.lease_s = lease_s if lease_s is not None else default_lease_s()
        self.max_attempts = (
            max_attempts if max_attempts is not None else default_max_attempts()
        )
        self.last_run_stats: QueueStats | None = None

    def workers_for(self, num_tasks: int) -> int:
        """Local drainer cap (external-drain mode reports 1 — the
        submitter cannot know how big the remote fleet is)."""
        if num_tasks <= 0 or self.workers == 0:
            return 1
        if self.workers is not None:
            return min(self.workers, max(num_tasks, 1))
        return min(num_tasks, os.cpu_count() or 1)

    # ------------------------------------------------------------- internals
    def _worker_command(self, url: str, match: str) -> list[str]:
        command = [
            sys.executable,
            "-m",
            "repro.experiment.worker",
            "--broker",
            url,
            "--exit-when-empty",
            "--poll-interval-s",
            str(self.poll_interval_s),
            "--match",
            match,
        ]
        if self.cache_dir is not None:
            command += ["--cache-dir", str(self.cache_dir)]
        return command

    def run(self, payloads: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
        self.last_run_stats = None  # never leak a previous run's account
        if not payloads:
            return []
        url = self.url or os.environ.get(BROKER_URL_ENV_VAR)
        if url:
            return self._run_against(url, payloads)
        # Private per-run broker: serve this submission and disappear.
        from repro.experiment.broker import start_broker

        server = start_broker(
            lease_s=self.lease_s, max_attempts=self.max_attempts
        )
        try:
            return self._run_against(server.url, payloads)
        finally:
            server.shutdown()
            server.server_close()

    def _run_against(
        self, url: str, payloads: Sequence[Mapping[str, Any]]
    ) -> list[dict[str, Any]]:
        client = BrokerClient(url)
        job = uuid.uuid4().hex[:12]
        task_ids = [f"{job}-{index:05d}" for index in range(len(payloads))]
        try:
            client.submit(
                [
                    task_envelope(
                        task_id,
                        payload,
                        lease_s=self.lease_s,
                        max_attempts=self.max_attempts,
                    )
                    for task_id, payload in zip(task_ids, payloads)
                ]
            )
        except BrokerUnavailable as exc:
            raise BackendError(f"could not submit to the broker: {exc}") from exc
        with TemporaryDirectory(prefix="repro-broker-logs-") as log_dir:
            pool = DrainerPool(
                command=self._worker_command(url, f"{job}-"),
                log_dir=Path(log_dir),
                log_prefix=f"worker-{job}",
                cap=self.workers_for(len(payloads)) if self.workers != 0 else 0,
            )
            self.last_run_stats = pool.stats
            try:
                return self._collect(client, task_ids, pool, f"{job}-")
            finally:
                pool.terminate()
                # Withdraw leftovers: an external fleet must not burn
                # compute on a sweep nobody is waiting for, and the
                # in-memory broker must not accumulate dead submissions.
                try:
                    client.cancel(task_ids)
                except BrokerUnavailable:
                    pass

    def _collect(
        self,
        client: BrokerClient,
        task_ids: list[str],
        pool: DrainerPool,
        match: str,
    ) -> list[dict[str, Any]]:
        pending = set(task_ids)
        collected: dict[str, dict[str, Any]] = {}
        last_progress = time.monotonic()
        spawned_at_progress = 0
        broker_failures = 0
        # Ack-based handover: each tick acknowledges the results safely
        # received last tick (the broker then drops them) and addresses
        # the submission by its id prefix — per-tick traffic scales with
        # newly finished cells, not with the size of the sweep.
        ack: list[str] = []
        while pending:
            try:
                response = client.collect(match=match, ack=ack)
            except BrokerUnavailable as exc:
                # Transient network blips heal (nothing is lost: unacked
                # results are simply re-sent); a dead broker cannot —
                # its state died with it, so resubmitting is the
                # caller's move, not ours.
                broker_failures += 1
                if broker_failures >= 5:
                    raise BackendError(
                        f"lost the broker with {len(pending)} task(s) "
                        f"unfinished: {exc}"
                    ) from exc
                time.sleep(self.poll_interval_s * 4)
                continue
            broker_failures = 0
            ack = [str(envelope.get("id")) for envelope in response["results"]]
            progressed = False
            for envelope in response["results"]:
                task_id = str(envelope.get("id"))
                if task_id not in pending:
                    continue  # re-sent while its ack was in flight
                if envelope.get("error") is not None:
                    raise BackendError(
                        f"broker task {task_id} failed in a worker:\n"
                        f"{envelope['error']}"
                    )
                pool.stats.requeued += int(envelope.get("attempts", 0) or 0)
                collected[task_id] = envelope["result"]
                pending.discard(task_id)
                progressed = True
            if progressed:
                last_progress = time.monotonic()
                spawned_at_progress = pool.stats.spawned
                continue
            # Auto-scaling from the broker's own backlog count: requeued
            # tasks (their worker died; the broker already swept the
            # expired lease) become visible here and get a fresh drainer.
            if pool.cap > 0:
                pool.top_up(int(response.get("pending", 0)))
                if pool.stats.spawned - spawned_at_progress > max(6, 3 * pool.cap):
                    raise BackendError(
                        f"local broker workers keep exiting without progress "
                        f"({pool.stats.spawned} spawned, {len(pending)} "
                        f"task(s) unfinished)\n{pool.failing_log_tail()}"
                    )
            if pool.any_alive():
                time.sleep(self.poll_interval_s)
                continue
            if time.monotonic() - last_progress > self.timeout_s:
                # A claim still counted by the broker is *live* — the
                # broker sweeps expired leases on every request, so a
                # dead worker's claim would already have been requeued
                # (progress) or exhausted (error envelope).  A live
                # worker computing a big cell gets the same patience
                # local drainers do; only tasks sitting unclaimed with
                # nobody to run them can time out.
                if int(response.get("claimed", 0)) > 0:
                    time.sleep(self.poll_interval_s)
                    continue
                raise BackendError(
                    f"timed out after {self.timeout_s:.0f}s waiting for "
                    f"{len(pending)} unclaimed broker task(s) at "
                    f"{client.url}\n{pool.failing_log_tail()}"
                )
            time.sleep(self.poll_interval_s)
        return [collected[task_id] for task_id in task_ids]


register_backend(
    BrokerBackend.name, lambda max_workers: BrokerBackend(workers=max_workers)
)
