"""HTTP client half of the broker protocol: ``BrokerBackend``.

:class:`BrokerClient` is a small stdlib JSON client for the endpoints of
:mod:`repro.experiment.broker`; it is shared by the submitting
:class:`BrokerBackend` here and by broker-mode workers
(``python -m repro.experiment.worker --broker <url>``).  It holds one
keep-alive :class:`http.client.HTTPConnection` per thread — a queue
conversation is thousands of small requests to one host, and paying TCP
setup per request was the dominant slice of the broker's per-task
overhead — and sends the shared-secret ``Authorization`` header when
``REPRO_BROKER_TOKEN`` is set.

:class:`BrokerBackend` is the network-transparent sibling of
:class:`~repro.experiment.backends.work_queue.WorkQueueBackend`: same
task/claim/result envelopes, same leases and retry budgets (the broker
enforces them server-side), same auto-scaled local drainers — but the
only thing submitter and workers share is a URL (and, beyond a trusted
network, a token).
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import sys
import threading
import time
import urllib.parse
import uuid
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Any, Mapping, Sequence

from repro.experiment.backends.base import (
    BackendError,
    ExecutionBackend,
    register_backend,
)
from repro.experiment.backends.queue_common import (
    BROKER_TOKEN_ENV_VAR,
    BROKER_URL_ENV_VAR,
    DrainerPool,
    PollBackoff,
    QueueStats,
    default_broker_token,
    default_lease_s,
    default_max_attempts,
    task_envelope,
)

__all__ = ["BrokerAuthError", "BrokerBackend", "BrokerClient", "BrokerUnavailable"]


class BrokerUnavailable(ConnectionError):
    """The broker did not answer (connection refused, timeout, 5xx)."""


class BrokerAuthError(PermissionError):
    """The broker refused the request's token (401).

    Deliberately **not** a :class:`ConnectionError` subclass: retry
    loops treat :class:`BrokerUnavailable` as transient and keep
    polling, but a rejected token never heals by waiting — workers and
    submitters must fail fast with the fix (export the matching
    ``REPRO_BROKER_TOKEN``) instead of spinning against a 401.
    """


class BrokerClient:
    """JSON-over-HTTP client for one broker URL (stdlib only).

    Connections are keep-alive and **per-thread** (a worker's heartbeat
    thread and main loop must not interleave on one socket), rebuilt
    transparently when the server drops one — safe to retry because
    every endpoint is idempotent or ack-based.

    Args:
        url: the broker, e.g. ``http://127.0.0.1:8123``.
        timeout_s: per-request socket timeout.
        token: shared secret sent as ``Authorization: Bearer <token>``;
            defaults to ``REPRO_BROKER_TOKEN`` (``None`` sends nothing).
    """

    def __init__(
        self,
        url: str,
        timeout_s: float = 10.0,
        token: str | None = None,
    ) -> None:
        self.url = url.rstrip("/")
        parts = urllib.parse.urlsplit(self.url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(
                f"broker url must be http://host[:port], got {url!r}"
            )
        self._host = parts.hostname
        self._port = parts.port or 80
        self.timeout_s = timeout_s
        self.token = token if token is not None else default_broker_token()
        self._local = threading.local()

    # -------------------------------------------------------------- transport
    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout_s
            )
            connection.connect()
            # Nagle + delayed ACK costs ~40 ms per small keep-alive
            # round trip — the exact overhead connection reuse exists
            # to remove.  The broker disables it server-side too.
            connection.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            self._local.connection = connection
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    def close(self) -> None:
        """Close this thread's keep-alive connection (idempotent)."""
        self._drop_connection()

    def _request(self, path: str, payload: Mapping[str, Any] | None) -> dict:
        method = "GET" if payload is None else "POST"
        body = (
            None if payload is None else json.dumps(payload).encode("utf-8")
        )
        headers = {"Content-Type": "application/json"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        # One transparent retry on a fresh connection: a keep-alive
        # socket the server idled out surfaces as a send/read failure on
        # the *next* request, which is indistinguishable from a real
        # outage until a clean connection answers.
        for attempt in (0, 1):
            try:
                connection = self._connection()
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()  # drain fully: keeps the socket reusable
            except (OSError, http.client.HTTPException) as exc:
                self._drop_connection()
                if attempt:
                    raise BrokerUnavailable(
                        f"broker {self.url} unreachable on {path}: {exc}"
                    ) from exc
                continue
            detail = raw.decode("utf-8", "replace")[:500]
            if response.status == 401:
                raise BrokerAuthError(
                    f"broker {self.url} refused {path}: {detail}"
                )
            if response.status != 200:
                raise BrokerUnavailable(
                    f"broker {self.url} answered {response.status} on "
                    f"{path}: {detail}"
                )
            try:
                return json.loads(raw.decode("utf-8"))
            except ValueError as exc:
                self._drop_connection()
                raise BrokerUnavailable(
                    f"broker {self.url} sent a non-JSON reply on {path}: "
                    f"{detail}"
                ) from exc
        raise AssertionError("unreachable")  # pragma: no cover

    # One method per endpoint; see the broker module docstring.
    def submit(self, tasks: Sequence[Mapping[str, Any]]) -> int:
        return int(self._request("/submit", {"tasks": list(tasks)})["accepted"])

    def claim(self, match: str = "", worker: str = "") -> dict[str, Any] | None:
        return self._request("/claim", {"match": match, "worker": worker})["task"]

    def heartbeat(self, task_id: str) -> bool:
        return bool(self._request("/heartbeat", {"id": task_id})["ok"])

    def result(self, outcome: Mapping[str, Any]) -> bool:
        return bool(self._request("/result", dict(outcome))["ok"])

    def collect(
        self,
        ids: Sequence[str] | None = None,
        match: str | None = None,
        ack: Sequence[str] = (),
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {"ack": list(ack)}
        if match is not None:
            payload["match"] = match
        else:
            payload["ids"] = list(ids or [])
        return self._request("/collect", payload)

    def cancel(self, ids: Sequence[str]) -> int:
        return int(self._request("/cancel", {"ids": list(ids)})["cancelled"])

    def stats(self) -> dict[str, Any]:
        return self._request("/stats", None)


class BrokerBackend(ExecutionBackend):
    """Execute a sweep through an HTTP broker instead of a shared dir.

    Args:
        url: the broker.  ``None`` honors ``REPRO_BROKER_URL``; with
            neither set, a private in-process broker is started for the
            duration of each :meth:`run` (local fan-out with zero
            deployment — and what ``REPRO_BATCH_BACKEND=broker`` gives
            CI).
        workers: cap on concurrently live local drainer processes
            (``python -m repro.experiment.worker --broker <url>``).
            ``0`` spawns none and relies on an external fleet already
            polling the broker — which then requires an explicit or
            environment-provided ``url``, since a private broker nobody
            else can discover would hang until timeout.
        cache_dir: optional shared :class:`ResultCache` directory the
            spawned workers write computed results back to.
        poll_interval_s: base ``/collect`` poll interval while results
            are flowing; consecutive empty polls back off exponentially
            (with jitter, capped well below a lease) so an idle
            submitter does not hammer a shared broker.
        timeout_s: give up (``BackendError``) when results stop arriving
            for this long with nothing claimed and nothing recoverable —
            and the outage budget: a durable broker may restart mid-
            sweep, so the collect loop rides out unreachability up to
            this long before declaring the submission lost.
        lease_s / max_attempts: per-task lease and retry budget embedded
            in this submission's envelopes; default to
            ``REPRO_QUEUE_LEASE_S`` / ``REPRO_QUEUE_MAX_ATTEMPTS``.
        token: shared broker secret; defaults to ``REPRO_BROKER_TOKEN``.

    After :meth:`run`, :attr:`last_run_stats` holds the submission's
    :class:`~repro.experiment.backends.queue_common.QueueStats`.
    """

    name = "broker"

    def __init__(
        self,
        url: str | None = None,
        workers: int | None = None,
        cache_dir: str | os.PathLike[str] | None = None,
        poll_interval_s: float = 0.05,
        timeout_s: float = 600.0,
        lease_s: float | None = None,
        max_attempts: int | None = None,
        token: str | None = None,
    ) -> None:
        if workers is not None and workers < 0:
            raise ValueError("workers must be non-negative")
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if lease_s is not None and lease_s <= 0:
            raise ValueError("lease_s must be positive")
        if max_attempts is not None and max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if workers == 0 and url is None and not os.environ.get(BROKER_URL_ENV_VAR):
            raise ValueError(
                "workers=0 (external drain) requires a broker url the "
                "external workers can reach; a private per-run broker "
                "would hang until timeout"
            )
        self.url = url
        self.workers = workers
        self.cache_dir = Path(cache_dir).expanduser() if cache_dir else None
        self.poll_interval_s = poll_interval_s
        self.timeout_s = timeout_s
        self.lease_s = lease_s if lease_s is not None else default_lease_s()
        self.max_attempts = (
            max_attempts if max_attempts is not None else default_max_attempts()
        )
        self.token = token
        self.last_run_stats: QueueStats | None = None

    def workers_for(self, num_tasks: int) -> int:
        """Local drainer cap (external-drain mode reports 1 — the
        submitter cannot know how big the remote fleet is)."""
        if num_tasks <= 0 or self.workers == 0:
            return 1
        if self.workers is not None:
            return min(self.workers, max(num_tasks, 1))
        return min(num_tasks, os.cpu_count() or 1)

    # ------------------------------------------------------------- internals
    def _worker_command(self, url: str, match: str) -> list[str]:
        # No --token flag: the secret rides in REPRO_BROKER_TOKEN, which
        # worker_subprocess_env() copies into every spawned drainer —
        # and never into an argv visible to `ps`.
        command = [
            sys.executable,
            "-m",
            "repro.experiment.worker",
            "--broker",
            url,
            "--exit-when-empty",
            "--poll-interval-s",
            str(self.poll_interval_s),
            "--match",
            match,
        ]
        if self.cache_dir is not None:
            command += ["--cache-dir", str(self.cache_dir)]
        return command

    def run(self, payloads: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
        self.last_run_stats = None  # never leak a previous run's account
        if not payloads:
            return []
        url = self.url or os.environ.get(BROKER_URL_ENV_VAR)
        if url:
            return self._run_against(url, payloads)
        # Private per-run broker: serve this submission and disappear.
        from repro.experiment.broker import start_broker

        server = start_broker(
            lease_s=self.lease_s,
            max_attempts=self.max_attempts,
            token=self.token if self.token is not None else default_broker_token(),
        )
        try:
            return self._run_against(server.url, payloads)
        finally:
            server.shutdown()
            server.server_close()

    def _run_against(
        self, url: str, payloads: Sequence[Mapping[str, Any]]
    ) -> list[dict[str, Any]]:
        client = BrokerClient(url, token=self.token)
        job = uuid.uuid4().hex[:12]
        task_ids = [f"{job}-{index:05d}" for index in range(len(payloads))]
        try:
            client.submit(
                [
                    task_envelope(
                        task_id,
                        payload,
                        lease_s=self.lease_s,
                        max_attempts=self.max_attempts,
                    )
                    for task_id, payload in zip(task_ids, payloads)
                ]
            )
        except BrokerAuthError as exc:
            raise BackendError(
                f"the broker requires a token this submitter does not have "
                f"(set {BROKER_TOKEN_ENV_VAR}): {exc}"
            ) from exc
        except BrokerUnavailable as exc:
            raise BackendError(f"could not submit to the broker: {exc}") from exc
        with TemporaryDirectory(prefix="repro-broker-logs-") as log_dir:
            pool = DrainerPool(
                command=self._worker_command(url, f"{job}-"),
                log_dir=Path(log_dir),
                log_prefix=f"worker-{job}",
                cap=self.workers_for(len(payloads)) if self.workers != 0 else 0,
            )
            self.last_run_stats = pool.stats
            try:
                return self._collect(client, task_ids, pool, f"{job}-")
            finally:
                pool.terminate()
                # Withdraw leftovers: an external fleet must not burn
                # compute on a sweep nobody is waiting for, and the
                # broker must not accumulate dead submissions.
                try:
                    client.cancel(task_ids)
                except (BrokerUnavailable, BrokerAuthError):
                    pass
                client.close()

    def _collect(
        self,
        client: BrokerClient,
        task_ids: list[str],
        pool: DrainerPool,
        match: str,
    ) -> list[dict[str, Any]]:
        pending = set(task_ids)
        collected: dict[str, dict[str, Any]] = {}
        last_progress = time.monotonic()
        spawned_at_progress = 0
        # Idle polls back off exponentially (with jitter) so a submitter
        # waiting on stragglers polls a shared broker a few times per
        # second at worst, not at a flat 20 Hz; the cap stays well below
        # a lease so requeue/auto-scale reactions remain prompt.
        idle_backoff = PollBackoff(
            self.poll_interval_s,
            max(self.poll_interval_s, min(self.lease_s / 4.0, 2.0)),
        )
        outage_backoff = PollBackoff(
            max(self.poll_interval_s, 0.25), min(self.lease_s / 2.0, 5.0)
        )
        outage_since: float | None = None
        # Ack-based handover: each tick acknowledges the results safely
        # received last tick (the broker then drops them) and addresses
        # the submission by its id prefix — per-tick traffic scales with
        # newly finished cells, not with the size of the sweep.
        ack: list[str] = []
        while pending:
            try:
                response = client.collect(match=match, ack=ack)
            except BrokerAuthError as exc:
                raise BackendError(
                    f"the broker rejected this submitter's token mid-run "
                    f"(set {BROKER_TOKEN_ENV_VAR} to match the broker): {exc}"
                ) from exc
            except BrokerUnavailable as exc:
                # An unreachable broker is not a lost broker: a durable
                # one comes back with the full submission intact, and a
                # transient network blip heals by itself (nothing is
                # lost either way — unacked results are simply re-sent).
                # Keep polling with backoff until the outage has lasted
                # a full timeout_s; only then declare the sweep lost.
                now = time.monotonic()
                if outage_since is None:
                    outage_since = now
                elif now - outage_since > self.timeout_s:
                    raise BackendError(
                        f"broker unreachable for {self.timeout_s:.0f}s with "
                        f"{len(pending)} task(s) unfinished: {exc}"
                    ) from exc
                time.sleep(outage_backoff.next_delay())
                continue
            outage_since = None
            outage_backoff.reset()
            ack = [str(envelope.get("id")) for envelope in response["results"]]
            progressed = False
            for envelope in response["results"]:
                task_id = str(envelope.get("id"))
                if task_id not in pending:
                    continue  # re-sent while its ack was in flight
                if envelope.get("error") is not None:
                    raise BackendError(
                        f"broker task {task_id} failed in a worker:\n"
                        f"{envelope['error']}"
                    )
                pool.stats.requeued += int(envelope.get("attempts", 0) or 0)
                collected[task_id] = envelope["result"]
                pending.discard(task_id)
                progressed = True
            if progressed:
                last_progress = time.monotonic()
                spawned_at_progress = pool.stats.spawned
                idle_backoff.reset()
                continue
            # Auto-scaling from the broker's own backlog count: requeued
            # tasks (their worker died; the broker already swept the
            # expired lease) become visible here and get a fresh drainer.
            if pool.cap > 0:
                pool.top_up(int(response.get("pending", 0)))
                if pool.stats.spawned - spawned_at_progress > max(6, 3 * pool.cap):
                    raise BackendError(
                        f"local broker workers keep exiting without progress "
                        f"({pool.stats.spawned} spawned, {len(pending)} "
                        f"task(s) unfinished)\n{pool.failing_log_tail()}"
                    )
            if pool.any_alive():
                time.sleep(idle_backoff.next_delay())
                continue
            if time.monotonic() - last_progress > self.timeout_s:
                # A claim still counted by the broker is *live* — the
                # broker sweeps expired leases on every request, so a
                # dead worker's claim would already have been requeued
                # (progress) or exhausted (error envelope).  A live
                # worker computing a big cell gets the same patience
                # local drainers do; only tasks sitting unclaimed with
                # nobody to run them can time out.
                if int(response.get("claimed", 0)) > 0:
                    time.sleep(idle_backoff.next_delay())
                    continue
                raise BackendError(
                    f"timed out after {self.timeout_s:.0f}s waiting for "
                    f"{len(pending)} unclaimed broker task(s) at "
                    f"{client.url}\n{pool.failing_log_tail()}"
                )
            time.sleep(idle_backoff.next_delay())
        return [collected[task_id] for task_id in task_ids]


register_backend(
    BrokerBackend.name, lambda max_workers: BrokerBackend(workers=max_workers)
)
