"""Backend contract, the in-process backends, and name resolution.

The execution protocol every backend speaks is
:func:`run_spec_payload` — a spec's canonical dict goes in, the result's
canonical dict comes out — so swapping backends can never change
results: by the determinism guarantees of the engine (CRC32-derived RNG
spawn keys), the payload a backend returns is byte-identical no matter
where the simulation ran.

The queue-shaped backends (file-based
:class:`~repro.experiment.backends.work_queue.WorkQueueBackend`, HTTP
:class:`~repro.experiment.backends.broker_client.BrokerBackend`) live in
sibling modules and register themselves here via
:func:`register_backend`; importing :mod:`repro.experiment.backends`
loads all of them, which is why :func:`resolve_backend` is normally
reached through the package namespace.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Mapping, Sequence

__all__ = [
    "BACKEND_ENV_VAR",
    "BackendError",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "backend_names",
    "register_backend",
    "resolve_backend",
    "run_spec_payload",
]

#: Environment variable naming the default backend (see :func:`resolve_backend`).
BACKEND_ENV_VAR = "REPRO_BATCH_BACKEND"


class BackendError(RuntimeError):
    """A backend failed to produce a result for a submitted spec."""


def run_spec_payload(payload: Mapping[str, Any]) -> dict[str, Any]:
    """The worker protocol: spec dict in, result dict out.

    Caching is disabled here even when ``REPRO_CACHE_DIR`` is set: the
    submitting process resolves cache hits before dispatching and owns
    every writeback, so executors must not contend for the cache index.
    """
    from repro.experiment.runner import Experiment
    from repro.experiment.specs import ExperimentSpec

    spec = ExperimentSpec.from_dict(payload)
    return Experiment(spec, keep_decisions=False).run(cache=False).to_dict()


class ExecutionBackend(ABC):
    """Executes spec payloads and returns result payloads, in order.

    Implementations must be order-preserving (``results[i]`` corresponds
    to ``payloads[i]``) and must produce payloads byte-identical to
    :func:`run_spec_payload` run inline — the cross-backend determinism
    suite holds every backend to that bar.
    """

    #: Registry name (also the value ``REPRO_BATCH_BACKEND`` takes).
    name: str = ""

    @abstractmethod
    def run(self, payloads: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
        """Execute every payload and return the result payloads in order."""

    def workers_for(self, num_tasks: int) -> int:
        """How many workers this backend would engage for ``num_tasks``
        (1 means the work effectively runs serially)."""
        return 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Run every cell inline, in submission order, in this process."""

    name = "serial"

    def run(self, payloads: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
        return [run_spec_payload(payload) for payload in payloads]


class ProcessPoolBackend(ExecutionBackend):
    """Fan out across local processes with a ``ProcessPoolExecutor``.

    Args:
        max_workers: process count; defaults to the CPU count capped at
            the number of submitted cells.  With one cell (or one
            worker) the pool is skipped entirely and the cell runs
            inline — identical results, no startup cost.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers

    def workers_for(self, num_tasks: int) -> int:
        if num_tasks <= 1:
            return 1
        return self.max_workers or min(num_tasks, os.cpu_count() or 1)

    def run(self, payloads: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
        workers = self.workers_for(len(payloads))
        if workers <= 1:
            return [run_spec_payload(payload) for payload in payloads]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(run_spec_payload, payloads))


# ---------------------------------------------------------------------------
# Resolution
# ---------------------------------------------------------------------------
#: name -> factory taking the resolver's ``max_workers`` argument.
_BACKENDS: dict[str, Callable[[int | None], ExecutionBackend]] = {}


def register_backend(
    name: str, factory: Callable[[int | None], ExecutionBackend]
) -> None:
    """Register a backend ``name`` for :func:`resolve_backend` /
    ``REPRO_BATCH_BACKEND``; ``factory(max_workers)`` builds an instance."""
    _BACKENDS[name] = factory


register_backend(SerialBackend.name, lambda max_workers: SerialBackend())
register_backend(
    ProcessPoolBackend.name,
    lambda max_workers: ProcessPoolBackend(max_workers=max_workers),
)


def backend_names() -> list[str]:
    """The registered backend names, sorted."""
    return sorted(_BACKENDS)


def resolve_backend(
    backend: "ExecutionBackend | str | None",
    parallel: bool = True,
    max_workers: int | None = None,
) -> ExecutionBackend:
    """Resolve the ``backend`` argument of :class:`BatchRunner`.

    * an :class:`ExecutionBackend` instance is used as given;
    * a name (``"serial"``, ``"process"``, ``"work_queue"``,
      ``"broker"``) is instantiated with ``max_workers``;
    * ``None`` with ``parallel=False`` is the legacy sequential path and
      always resolves to :class:`SerialBackend` — explicit code intent
      beats the environment;
    * ``None`` otherwise honors ``REPRO_BATCH_BACKEND`` when set (the CI
      backend matrix uses this) and defaults to
      :class:`ProcessPoolBackend`.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        if not parallel:
            return SerialBackend()
        backend = os.environ.get(BACKEND_ENV_VAR) or ProcessPoolBackend.name
    name = str(backend)
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        ) from None
    return factory(max_workers)
