"""The shared-directory work queue, now lease-based and self-healing.

One task file per cell lands in ``<queue_dir>/tasks/``; workers claim a
task by atomically renaming it into ``claimed/`` (the rename is the
lock — exactly one claimant wins), run
:func:`~repro.experiment.backends.base.run_spec_payload`, and write the
result JSON into ``results/``.  The submitter polls for result files and
reassembles them in submission order.

A claim is a **lease**, not a tombstone: the claimed file's mtime is the
heartbeat (set on claim, refreshed by the worker while it computes), and
any observer — the submitting process each poll tick, or an idle worker
— may requeue a claim whose mtime has gone silent for longer than the
task's ``lease_s`` by bumping its ``attempts`` counter and renaming it
back into ``tasks/``.  A ``kill -9``'d drainer therefore costs one lease
interval, not the sweep.  A task that burns its whole ``max_attempts``
budget is synthesized into an error envelope naming the task id and the
attempt count, so the submitter fails on *that* task instead of a
blanket timeout that discards every finished cell.

Requeue races are benign by construction: if a slow-but-alive worker
completes a task that was concurrently requeued, both executions produce
byte-identical payloads (the engine's determinism guarantee), so
whichever result file lands is correct and the duplicate is withdrawn
with the submission's other leftovers.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
import uuid
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.experiment.backends.base import (
    BackendError,
    ExecutionBackend,
    register_backend,
)
from repro.experiment.backends.queue_common import (
    DrainerPool,
    QueueStats,
    default_lease_s,
    default_max_attempts,
    exhausted_error,
    task_envelope,
)
from repro.experiment.fsio import atomic_write_text

__all__ = [
    "CLAIMED_DIR",
    "RESULTS_DIR",
    "TASKS_DIR",
    "WorkQueueBackend",
    "ensure_queue_dirs",
    "queue_clock",
    "requeue_expired_claims",
]

#: Queue-directory layout, shared with :mod:`repro.experiment.worker`.
TASKS_DIR = "tasks"
CLAIMED_DIR = "claimed"
RESULTS_DIR = "results"

#: Queue files this old are orphans of dead submissions (see
#: :meth:`WorkQueueBackend._reap_stale_files`).
_STALE_RESULT_S = 7 * 24 * 3600.0


def _atomic_write_json(target: Path, payload: Mapping[str, Any]) -> None:
    """Write JSON atomically so queue consumers never see partial files."""
    atomic_write_text(target, json.dumps(payload))


def ensure_queue_dirs(queue_dir: str | os.PathLike[str]) -> Path:
    """Create the tasks/claimed/results layout; returns the queue root."""
    root = Path(queue_dir).expanduser()
    for name in (TASKS_DIR, CLAIMED_DIR, RESULTS_DIR):
        (root / name).mkdir(parents=True, exist_ok=True)
    return root


def queue_clock(root: Path) -> float:
    """The queue filesystem's own notion of *now*.

    Lease expiry compares claim-file mtimes — stamped by worker hosts'
    ``os.utime`` calls, which a network filesystem resolves against the
    *server's* clock — so judging them by the local ``time.time()``
    would fold the full submitter↔server clock skew into every lease.
    Touching a probe file and reading its mtime back asks the same
    clock that stamps the claims, making skew cancel out; a filesystem
    that refuses falls back to local time (correct for local queues,
    where there is only one clock).
    """
    probe = root / CLAIMED_DIR / ".lease-clock"
    try:
        probe.touch()
        return probe.stat().st_mtime
    except OSError:
        return time.time()


def requeue_expired_claims(
    root: Path, match: str = "", now: float | None = None
) -> tuple[int, int]:
    """Requeue every expired claim under ``root``; ``(requeued, exhausted)``.

    A claim is expired when its file's mtime — refreshed by the owning
    worker's heartbeats — is older than the envelope's own ``lease_s``
    (pre-lease envelopes fall back to the environment default).  An
    expired claim with budget left goes back to ``tasks/`` with
    ``attempts`` bumped; one without gets a synthesized error envelope
    in ``results/`` naming the task and its attempt count.  ``match``
    restricts the sweep to one submission's tasks, exactly like claims.

    Any process sharing the directory may call this — the submitting
    backend does every poll tick, and idle workers do between claims —
    and concurrent sweeps are safe: the bumped envelope is written
    atomically and idempotently (two sweepers compute the same bytes),
    and the rename back into ``tasks/`` is the handover — exactly one
    sweeper's rename lands, and no claimant can touch the task before
    it does.
    """
    if now is None:
        now = queue_clock(root)
    fallback_lease = default_lease_s()
    requeued = exhausted = 0
    try:
        # Sorted so every sweeper repossesses in one deterministic order —
        # scandir order is filesystem-dependent, and two concurrent
        # sweepers walking the same order contend less and account alike.
        entries = sorted(os.scandir(root / CLAIMED_DIR), key=lambda e: e.name)
    except OSError:
        return 0, 0
    for entry in entries:
        if not entry.name.endswith(".json") or not entry.name.startswith(match):
            continue
        try:
            mtime = entry.stat().st_mtime
        except OSError:
            continue  # completed (or requeued) under us
        try:
            with open(entry.path, encoding="utf-8") as fh:
                envelope = json.load(fh)
        except (OSError, ValueError):
            continue  # mid-rename or torn read; the next sweep sees it
        lease_s = float(envelope.get("lease_s") or fallback_lease)
        if now - mtime <= lease_s:
            continue
        task_stem = Path(entry.name).stem
        if (root / RESULTS_DIR / f"{task_stem}.json").exists():
            # The owner was slow, not dead: its result is already on
            # disk, so resurrecting the task would only burn a duplicate
            # (byte-identical) simulation.  Drop the spent claim instead.
            try:
                os.unlink(entry.path)
            except OSError:
                pass
            continue
        attempts = int(envelope.get("attempts", 0)) + 1
        max_attempts = int(envelope.get("max_attempts") or default_max_attempts())
        envelope["attempts"] = attempts
        task_id = str(envelope.get("id", Path(entry.name).stem))
        if attempts >= max_attempts:
            _atomic_write_json(
                root / RESULTS_DIR / f"{task_id}.json",
                {
                    "id": task_id,
                    "error": exhausted_error(task_id, attempts, max_attempts),
                    "attempts": attempts,
                },
            )
            exhausted += 1
            try:
                os.unlink(entry.path)
            except OSError:
                pass
        else:
            # Atomic repossession: bump the envelope *in the claimed
            # file*, then rename it back into tasks/.  Writing a fresh
            # task file and unlinking the claim afterwards would race a
            # quick worker — its re-claim lands at this very claimed
            # path, and the trailing unlink would destroy the live claim
            # and lose the task from every directory.  The rename *is*
            # the handover: until it happens nobody can claim, and two
            # concurrent sweepers just have the loser's rename fail.
            _atomic_write_json(Path(entry.path), envelope)
            try:
                os.replace(entry.path, root / TASKS_DIR / entry.name)
            except OSError:
                continue  # completed (or repossessed) under us
            requeued += 1
    return requeued, exhausted


class WorkQueueBackend(ExecutionBackend):
    """A shared-directory work queue any worker process can drain.

    Task ids are unique per submission, so several submitters (and any
    number of workers) can share one directory.  Locally spawned
    drainers are auto-scaled: the collect loop tops the pool up from the
    observed unclaimed backlog each tick (never above ``workers``), so a
    drainer that crashed — or exited on a momentarily empty queue before
    a dead worker's task was requeued — is replaced as soon as there is
    work for it.

    Args:
        queue_dir: the shared directory.  ``None`` creates a private
            temporary queue per :meth:`run` — convenient for local use,
            pointless for remote workers, which need a directory they
            can see too.
        workers: cap on concurrently live local drainer processes
            (``python -m repro.experiment.worker``).  ``0`` spawns none
            and relies entirely on external workers already watching the
            directory.
        cache_dir: optional shared :class:`ResultCache` directory the
            spawned workers write results back to (content-addressed,
            so concurrent writers are safe) — lets a warm shared store
            build up even when the submitter itself runs uncached.
        poll_interval_s: how often the submitter re-scans ``results/``.
        timeout_s: give up (``BackendError``) when results stop arriving
            for this long with no worker holding a live claim.
        lease_s: claim lease; defaults to ``REPRO_QUEUE_LEASE_S`` (30 s).
        max_attempts: per-task execution budget; defaults to
            ``REPRO_QUEUE_MAX_ATTEMPTS`` (3).

    After :meth:`run`, :attr:`last_run_stats` holds the submission's
    :class:`~repro.experiment.backends.queue_common.QueueStats`.
    """

    name = "work_queue"

    def __init__(
        self,
        queue_dir: str | os.PathLike[str] | None = None,
        workers: int | None = None,
        cache_dir: str | os.PathLike[str] | None = None,
        poll_interval_s: float = 0.05,
        timeout_s: float = 600.0,
        lease_s: float | None = None,
        max_attempts: int | None = None,
    ) -> None:
        if workers is not None and workers < 0:
            raise ValueError("workers must be non-negative")
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if lease_s is not None and lease_s <= 0:
            raise ValueError("lease_s must be positive")
        if max_attempts is not None and max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if workers == 0 and queue_dir is None:
            raise ValueError(
                "workers=0 (external drain) requires a queue_dir the "
                "external workers can see; a private temporary queue "
                "would hang until timeout"
            )
        self.queue_dir = Path(queue_dir).expanduser() if queue_dir else None
        self.workers = workers
        self.cache_dir = Path(cache_dir).expanduser() if cache_dir else None
        self.poll_interval_s = poll_interval_s
        self.timeout_s = timeout_s
        self.lease_s = lease_s if lease_s is not None else default_lease_s()
        self.max_attempts = (
            max_attempts if max_attempts is not None else default_max_attempts()
        )
        self.last_run_stats: QueueStats | None = None

    def workers_for(self, num_tasks: int) -> int:
        """Local drainer cap (external-drain mode reports 1 — the
        submitter cannot know how many remote workers are watching)."""
        if num_tasks <= 0 or self.workers == 0:
            return 1
        if self.workers is not None:
            return min(self.workers, max(num_tasks, 1))
        return min(num_tasks, os.cpu_count() or 1)

    # ------------------------------------------------------------- internals
    def _worker_command(self, queue_dir: Path, match: str) -> list[str]:
        command = [
            sys.executable,
            "-m",
            "repro.experiment.worker",
            str(queue_dir),
            "--exit-when-empty",
            "--poll-interval-s",
            str(self.poll_interval_s),
            # Scoped to this submission: terminating these drainers at the
            # end of run() must never kill another submitter's task
            # mid-simulation in a shared directory.
            "--match",
            match,
        ]
        if self.cache_dir is not None:
            command += ["--cache-dir", str(self.cache_dir)]
        return command

    def run(self, payloads: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
        self.last_run_stats = None  # never leak a previous run's account
        if not payloads:
            return []
        if self.queue_dir is not None:
            return self._run_in(ensure_queue_dirs(self.queue_dir), payloads)
        with tempfile.TemporaryDirectory(prefix="repro-queue-") as tmp:
            return self._run_in(ensure_queue_dirs(tmp), payloads)

    def _reap_stale_files(self, root: Path) -> None:
        """Collect orphan result *and* claim files abandoned in a shared
        directory.

        A submitter that timed out withdraws its files, but a claimant
        that outlived the timeout may write its result afterwards with
        nobody left to consume it — and a worker that died holding a
        claim from a pre-lease submission (whose envelope nobody will
        ever requeue because its submitter is gone) leaves a claim file
        behind forever.  Live submitters unlink results within a poll
        tick and live claims are either heartbeat-fresh or requeued
        within a lease, so anything old belongs to no one — but "old" is
        judged from *other hosts'* mtimes, so the horizon is a
        deliberately paranoid fixed week, far beyond any clock skew,
        suspended submitter, or long custom ``timeout_s``: orphans
        accumulate slowly, and deleting a live file would lose work.
        """
        horizon = time.time() - _STALE_RESULT_S
        for subdir in (RESULTS_DIR, CLAIMED_DIR):
            try:
                entries = sorted(os.scandir(root / subdir), key=lambda e: e.name)
            except OSError:
                continue
            for entry in entries:
                try:
                    if entry.stat().st_mtime < horizon:
                        os.unlink(entry.path)
                except OSError:
                    continue

    def _run_in(
        self, root: Path, payloads: Sequence[Mapping[str, Any]]
    ) -> list[dict[str, Any]]:
        self._reap_stale_files(root)
        job = uuid.uuid4().hex[:12]
        task_ids = [f"{job}-{index:05d}" for index in range(len(payloads))]
        for task_id, payload in zip(task_ids, payloads):
            _atomic_write_json(
                root / TASKS_DIR / f"{task_id}.json",
                task_envelope(
                    task_id,
                    payload,
                    lease_s=self.lease_s,
                    max_attempts=self.max_attempts,
                ),
            )
        pool = DrainerPool(
            command=self._worker_command(root, f"{job}-"),
            log_dir=root,
            log_prefix=f"worker-{job}",
            cap=self.workers_for(len(payloads)) if self.workers != 0 else 0,
        )
        self.last_run_stats = pool.stats
        try:
            return self._collect(root, task_ids, pool, f"{job}-")
        finally:
            pool.terminate()
            # On failure/timeout, withdraw this submission's leftovers so
            # a shared queue's external workers don't burn compute on a
            # sweep nobody is waiting for.  Best-effort: a claimant that
            # outlives our timeout can still write an orphan result
            # afterwards — _reap_stale_files on the next submission
            # collects those.
            for task_id in task_ids:
                for subdir in (TASKS_DIR, CLAIMED_DIR, RESULTS_DIR):
                    try:
                        (root / subdir / f"{task_id}.json").unlink()
                    except OSError:
                        pass
            pool.remove_logs()  # failures embed the failing drainer's tail

    def _scan_results(
        self,
        results_dir: Path,
        pending: set[str],
        collected: dict[str, dict[str, Any]],
        stats: QueueStats,
    ) -> bool:
        """Collect every pending result currently on disk; True if any.

        One ``scandir`` per tick, not one failing ``open`` per pending
        task — the difference between O(results) and O(pending) syscalls
        matters when thousands of cells wait on a network filesystem.
        """
        try:
            present = {entry.name for entry in os.scandir(results_dir)}
        except OSError:
            return False
        progressed = False
        for task_id in sorted(pending):
            name = f"{task_id}.json"
            if name not in present:
                continue
            path = results_dir / name
            try:
                with open(path, encoding="utf-8") as fh:
                    envelope = json.load(fh)
            except (OSError, ValueError):
                continue  # mid-replace on an exotic fs; next tick has it
            if envelope.get("error") is not None:
                raise BackendError(
                    f"work-queue task {task_id} failed in a worker:\n"
                    f"{envelope['error']}"
                )
            # Requeue accounting reads the envelope, not the sweep above:
            # idle *workers* requeue expired claims too, and only the
            # envelope's attempts counter sees every requeuer exactly once.
            stats.requeued += int(envelope.get("attempts", 0) or 0)
            collected[task_id] = envelope["result"]
            pending.discard(task_id)
            try:
                path.unlink()
            except OSError:
                pass
            progressed = True
        return progressed

    def _unclaimed_depth(self, root: Path, match: str) -> int:
        """How many of this submission's tasks are waiting unclaimed."""
        try:
            return sum(
                1
                for entry in os.scandir(root / TASKS_DIR)
                if entry.name.startswith(match) and entry.name.endswith(".json")
            )
        except OSError:
            return 0

    def _collect(
        self,
        root: Path,
        task_ids: list[str],
        pool: DrainerPool,
        match: str,
    ) -> list[dict[str, Any]]:
        results_dir = root / RESULTS_DIR
        pending = set(task_ids)
        collected: dict[str, dict[str, Any]] = {}
        last_progress = time.monotonic()
        spawned_at_progress = 0
        # Sweep for expired leases often enough that recovery costs about
        # one lease interval, but never more than once per few ticks.
        sweep_every = max(self.poll_interval_s, self.lease_s / 8.0)
        next_sweep = time.monotonic()
        drainers_dead_rescan = False
        while pending:
            if self._scan_results(results_dir, pending, collected, pool.stats):
                last_progress = time.monotonic()
                spawned_at_progress = pool.stats.spawned
                drainers_dead_rescan = False
                continue
            now = time.monotonic()
            if now >= next_sweep:
                next_sweep = now + sweep_every
                requeued, exhausted = requeue_expired_claims(root, match)
                pool.stats.exhausted += exhausted
                if requeued or exhausted:
                    # Lease recovery is progress: the sweep is healing,
                    # not hanging.
                    last_progress = time.monotonic()
                    spawned_at_progress = pool.stats.spawned
                    drainers_dead_rescan = False
                    continue
            # Auto-scaling: spawn drainers for the observed unclaimed
            # backlog (includes requeued tasks whose previous drainer
            # died), never beyond the worker cap.  The depth scandir is
            # only paid when a spawn could actually happen — at cap (the
            # steady state) the tick costs nothing extra, which matters
            # on a network filesystem.
            if pool.cap > 0 and pool.alive_count() < pool.cap:
                pool.top_up(self._unclaimed_depth(root, match))
            if pool.any_alive():
                # A live local drainer is computing (simulations always
                # terminate) — a big cell legitimately takes as long as
                # it takes, so the stall timeout does not apply here.
                time.sleep(self.poll_interval_s)
                continue
            if (
                pool.cap > 0
                and pool.stats.spawned - spawned_at_progress > max(6, 3 * pool.cap)
            ):
                # Drainers keep exiting without a single result or lease
                # recovery in between — a broken environment (import
                # error, unwritable queue), not a worker death the lease
                # machinery would heal.  Fail fast with the failing
                # worker's own log instead of looping until the timeout.
                raise BackendError(
                    f"local queue workers keep exiting without progress "
                    f"({pool.stats.spawned} spawned, {len(pending)} task(s) "
                    f"unfinished) in {root}\n{pool.failing_log_tail()}"
                )
            if pool.stats.spawned and not drainers_dead_rescan:
                # A drainer may write its last result and exit between
                # scan and liveness check — rescan once before judging,
                # or that window is a flake.
                drainers_dead_rescan = True
                continue
            # Remaining tasks are either claimed (someone — an external
            # worker, another submitter's drainer, or a dead worker whose
            # lease has not yet expired — owns them; expiry is handled by
            # the sweep above) or unclaimed with nobody local to spawn
            # for.  Give up only when results stop arriving for
            # timeout_s *and* nothing is claimed: a claim is either live
            # (its worker heartbeats, and a big cell legitimately takes
            # as long as it takes — the same rule local drainers get) or
            # expired, in which case the sweep above requeues it within
            # one lease and that counts as progress.  Only tasks sitting
            # unclaimed with nobody to run them can time out.
            if time.monotonic() - last_progress > self.timeout_s:
                if any(
                    (root / CLAIMED_DIR / f"{task_id}.json").exists()
                    for task_id in pending
                ):
                    time.sleep(self.poll_interval_s)
                    continue
                raise BackendError(
                    f"timed out after {self.timeout_s:.0f}s waiting for "
                    f"{len(pending)} unclaimed work-queue task(s) in {root}"
                    f"\n{pool.failing_log_tail()}"
                )
            time.sleep(self.poll_interval_s)
        return [collected[task_id] for task_id in task_ids]


register_backend(
    WorkQueueBackend.name, lambda max_workers: WorkQueueBackend(workers=max_workers)
)
