"""Cache-aware sweep planning.

Before a batch sweep fans out to an execution backend, the
:class:`SweepPlanner` turns the raw list of spec payloads into an
execution plan:

1. **Deduplicate** — cells with the same content address
   (:func:`repro.experiment.specs.spec_digest`) are one job; a sweep
   that names the same spec five times simulates it once and scatters
   the payload to all five submission slots.
2. **Resolve the cache** — each *unique* spec is looked up in the
   :class:`repro.experiment.cache.ResultCache` exactly once; hits fill
   their submission slots up front and never reach the backend.
3. **Order by cost, measured where known** — the remaining jobs are
   sorted most expensive first, so the slowest cells start as soon as
   workers are available and the sweep's wall clock approaches
   ``max(cell) + spillover`` instead of being hostage to a long cell
   scheduled last (classic LPT scheduling).  A job whose digest appears
   in the cache's measured-cost ledger
   (:meth:`repro.experiment.cache.ResultCache.measured_cost_s` — costs
   survive payload eviction) is ordered by its *actual* recorded wall
   clock; the rest fall back to the static :func:`estimate_cost_s`
   heuristic, rescaled onto the measured jobs' wall-clock scale when
   any exist (median measured/estimate ratio), so the two cost sources
   induce one coherent order.

Planning is pure bookkeeping: results are scattered back to submission
order afterwards, so the plan can never change *what* a sweep returns —
only how little work and wall clock it takes to return it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.experiment.specs import spec_digest

if TYPE_CHECKING:
    from repro.experiment.cache import ResultCache

__all__ = [
    "PlannedJob",
    "PlannerStats",
    "SweepPlan",
    "SweepPlanner",
    "estimate_cost_s",
]

#: Node-count guesses per scenario for builders that fix their own
#: topology (the registry's built-ins); unknown scenarios fall back to
#: the testbed size — overestimating keeps big unknown cells early.
_SCENARIO_NODE_COUNTS = {
    "chain": 3,  # the builder's default chain length
    "testbed": 18,
    "random_multiflow": 18,
    "starvation": 3,
}
_DEFAULT_NODE_COUNT = 18


def _node_count(scenario: Mapping[str, Any]) -> int:
    """Best-effort node count of a scenario payload (cost heuristic only).

    Delegates the per-kind arithmetic to
    :func:`repro.sim.generators.topology_node_count` — one source of
    truth for what each topology generator produces (the import is
    deferred, and in any real planning path the generators module is
    already loaded by the specs the sweep was built from).
    """
    topology = scenario.get("topology")
    if isinstance(topology, Mapping):
        from repro.sim.generators import topology_node_count

        return topology_node_count(str(topology.get("kind", "")), topology)
    return _SCENARIO_NODE_COUNTS.get(
        str(scenario.get("scenario", "")), _DEFAULT_NODE_COUNT
    )


def _flow_count(scenario: Mapping[str, Any]) -> int:
    """Best-effort flow count of a scenario payload (cost heuristic only)."""
    flows = scenario.get("flows")
    if isinstance(flows, Sequence) and len(flows) > 0:
        return len(flows)
    workload = scenario.get("workload")
    if isinstance(workload, Mapping):
        return int(workload.get("num_flows", 4))
    if str(scenario.get("scenario", "")) == "random_multiflow":
        return int(scenario.get("num_flows", 4))
    if str(scenario.get("scenario", "")) == "starvation":
        return 2
    return 1


def _dynamics_factor(scenario: Mapping[str, Any], horizon_s: float) -> float:
    """Cost multiplier for a scenario payload's dynamics axes.

    Position epochs each rebuild the moved rows of the power tables and
    re-fill the invalidated PER/resolution memos, so cost grows with the
    epoch *count* over the run horizon; churn events are rarer but each
    one quiesces and revives a node.  Static payloads (no ``mobility``,
    no ``churn`` key) return exactly 1.0, leaving historical orderings
    untouched.
    """
    factor = 1.0
    mobility = scenario.get("mobility")
    if isinstance(mobility, Mapping):
        epoch_s = float(mobility.get("epoch_s", 1.0))
        if epoch_s > 0:
            factor += 0.005 * (horizon_s / epoch_s)
    churn = scenario.get("churn")
    if isinstance(churn, Mapping):
        events = float(churn.get("num_events", 1))
        if float(churn.get("down_s", 10.0)) > 0:
            events *= 2  # every failure gets a matching rejoin event
        factor += 0.05 * events
    return factor


def estimate_cost_s(payload: Mapping[str, Any]) -> float:
    """Estimated relative cost of simulating one spec payload.

    Simulated seconds dominate a cell's wall clock: probe warmup (paid
    only when the controller is enabled, mirroring the runner's
    schedule) plus ``cycles x cycle_measure_s``, scaled by the node
    count (more nodes, more events per simulated second), softly by
    the flow count (each flow keeps its own packet stream on the air),
    and by the dynamics factor (position epochs and churn events add
    table-rebuild work on top of the traffic).  The absolute value is
    meaningless; only the ordering it induces matters, and ties fall
    back to submission order so plans stay deterministic.  When a
    measured wall clock exists for the digest, the
    :class:`SweepPlanner` prefers it over this heuristic.
    """
    scenario = payload.get("scenario", {})
    controller = payload.get("controller", {})
    probing = payload.get("probing", {})
    warmup_s = (
        float(probing.get("warmup_s", 0.0))
        if controller.get("enabled", True)
        else 0.0
    )
    measure_s = float(payload.get("cycles", 1)) * float(
        payload.get("cycle_measure_s", 0.0)
    )
    load_factor = 1.0 + 0.25 * max(_flow_count(scenario) - 1, 0)
    dynamics = _dynamics_factor(scenario, warmup_s + measure_s)
    return (warmup_s + measure_s) * max(_node_count(scenario), 1) * load_factor * dynamics


@dataclass(frozen=True)
class PlannedJob:
    """One unique spec the backend must actually execute.

    ``est_cost_s`` is always the static heuristic; ``cost_s`` is what the
    plan actually orders by — the ledger's measured wall clock when the
    cache has one for this digest (``measured=True``), otherwise the
    heuristic rescaled onto the measured jobs' wall-clock scale.
    """

    payload: dict[str, Any]
    indices: tuple[int, ...]  # submission slots this job's result fills
    digest: str
    est_cost_s: float
    label: str = ""
    cost_s: float = 0.0
    measured: bool = False


@dataclass
class PlannerStats:
    """What planning saved: dedup, cache resolution, and ordering.

    All rates are safe on empty sweeps (0.0, never a ZeroDivisionError).
    """

    total: int = 0
    unique: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_used: bool = False
    est_cost_s: float = 0.0
    #: Jobs ordered by a measured wall clock from the cache's cost
    #: ledger rather than the static heuristic.
    measured_jobs: int = 0
    #: Sum of those jobs' *measured* seconds — with ``measured_jobs``,
    #: the honest part of a sweep's predicted wall clock (queue-overhead
    #: benchmarks record both next to their task-rate numbers).
    measured_cost_s: float = 0.0

    @property
    def duplicates(self) -> int:
        """Submission slots resolved by sharing another slot's result."""
        return self.total - self.unique

    @property
    def cache_misses(self) -> int:
        """Slots a cache was consulted for and could not serve — 0 for a
        planned-without-cache sweep, matching ``BatchResult.cache_misses``
        (an uncached sweep *has* no misses, it just wasn't cached)."""
        return self.total - self.cache_hits if self.cache_used else 0

    @property
    def cache_hit_rate(self) -> float:
        """Cache-served slots over all slots; 0.0 for an empty sweep."""
        return self.cache_hits / self.total if self.total else 0.0

    @property
    def dedup_rate(self) -> float:
        """Duplicate slots over all slots; 0.0 for an empty sweep."""
        return self.duplicates / self.total if self.total else 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "total": self.total,
            "unique": self.unique,
            "duplicates": self.duplicates,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "dedup_rate": self.dedup_rate,
            "est_cost_s": self.est_cost_s,
            "measured_jobs": self.measured_jobs,
            "measured_cost_s": self.measured_cost_s,
        }


@dataclass
class SweepPlan:
    """The executable form of one submission.

    ``results`` is pre-filled (in submission order) with every payload
    the cache resolved; ``jobs`` are the remaining unique cells, most
    expensive first.  After the backend ran the jobs, scatter each
    result to ``job.indices`` and the sweep is complete.
    """

    jobs: list[PlannedJob]
    results: list[dict[str, Any] | None]
    stats: PlannerStats = field(default_factory=PlannerStats)

    def scatter(self, job: PlannedJob, payload: dict[str, Any]) -> None:
        """Fill every submission slot ``job`` stands for with ``payload``."""
        for index in job.indices:
            self.results[index] = payload


@dataclass
class SweepPlanner:
    """Plans submissions for the batch runner (see the module docstring).

    Args:
        cache: resolve unique cells against this
            :class:`ResultCache` before execution; ``None`` plans a
            cold sweep (dedup and ordering still apply).
    """

    cache: "ResultCache | None" = None

    def plan(
        self,
        payloads: Sequence[Mapping[str, Any]],
        labels: Sequence[str] | None = None,
    ) -> SweepPlan:
        order: list[str] = []
        payload_of: dict[str, dict[str, Any]] = {}
        label_of: dict[str, str] = {}
        indices: dict[str, list[int]] = {}
        for index, payload in enumerate(payloads):
            digest = (
                self.cache.key(payload)
                if self.cache is not None
                else spec_digest(payload)
            )
            if digest not in indices:
                order.append(digest)
                payload_of[digest] = dict(payload)
                label_of[digest] = labels[index] if labels else ""
                indices[digest] = []
            indices[digest].append(index)

        results: list[dict[str, Any] | None] = [None] * len(payloads)
        stats = PlannerStats(
            total=len(payloads),
            unique=len(order),
            cache_used=self.cache is not None,
        )
        misses: list[tuple[str, float, float | None]] = []
        for digest in order:
            payload = payload_of[digest]
            cached = (
                self.cache.get_payload(payload, digest=digest)
                if self.cache is not None
                else None
            )
            if cached is not None:
                for index in indices[digest]:
                    results[index] = cached
                stats.cache_hits += len(indices[digest])
                continue
            measured = (
                self.cache.measured_cost_s(digest)
                if self.cache is not None
                else None
            )
            misses.append((digest, estimate_cost_s(payload), measured))

        # Learned cost model: jobs the store has run before (ledger costs
        # outlive payload eviction) order by their actual wall clock;
        # never-seen jobs keep the static heuristic, rescaled onto the
        # measured wall-clock scale by the median measured/estimate ratio
        # so mixed plans compare like with like.
        ratios = sorted(
            measured / est for _, est, measured in misses
            if measured is not None and est > 0.0
        )
        scale = ratios[len(ratios) // 2] if ratios else 1.0
        jobs = [
            PlannedJob(
                payload=payload_of[digest],
                indices=tuple(indices[digest]),
                digest=digest,
                est_cost_s=est,
                label=label_of[digest],
                cost_s=measured if measured is not None else est * scale,
                measured=measured is not None,
            )
            for digest, est, measured in misses
        ]
        # Longest-processing-time-first: slowest cells start first.  The
        # (-cost, first-index) key keeps equal-cost jobs in submission
        # order, so plans — and therefore backend dispatch — stay
        # deterministic.
        jobs.sort(key=lambda job: (-job.cost_s, job.indices[0]))
        stats.executed = len(jobs)
        stats.est_cost_s = sum(job.est_cost_s for job in jobs)
        stats.measured_jobs = sum(1 for job in jobs if job.measured)
        stats.measured_cost_s = sum(job.cost_s for job in jobs if job.measured)
        return SweepPlan(jobs=jobs, results=results, stats=stats)
