"""Durability backend for the HTTP broker: append-only journal + snapshot.

PR 5 made *worker* death survivable (lease-based claims), but the broker
itself kept every pending/claimed/result envelope in plain in-memory
dicts — a broker restart (deploy, OOM, crash) silently dropped every
in-flight submission, the one failure class a multi-hour measurement
sweep cannot afford to replay.  :class:`BrokerStore` closes that hole:
:class:`~repro.experiment.broker.BrokerQueue` writes every state
transition into an append-only **journal** and periodically folds the
journal into an atomic **snapshot**, so a restarted broker pointed at
the same store directory recovers exactly the submissions, claims and
finished results it held when it died.

Store layout (one directory per broker)::

    <store>/snapshot.json         # atomic full-state checkpoint
    <store>/journal-<gen>.jsonl   # one JSON record per state transition

The snapshot records the journal *generation* it covers; recovery loads
the snapshot (if any) and replays every journal generation at or after
it, in order, tolerating a torn final line (the record a SIGKILL
interrupted mid-append was never acknowledged to anyone, so dropping it
loses nothing).  After every ``snapshot_every`` journal records the
queue hands its full state back to :meth:`checkpoint`, which writes the
snapshot via :func:`repro.experiment.fsio.atomic_write_text`, rotates
to a fresh journal generation, and retires the generations the snapshot
superseded — the same atomic-IO discipline ``repro.lint`` enforces over
the rest of the queue layer (RPL201/202/203), with the journal itself
using the one sanctioned non-atomic primitive: append, whose partial
failure mode (a torn tail) recovery explicitly tolerates.

**Clocks do not survive a restart.**  Lease deadlines are instants on
the dead process's ``time.monotonic()`` axis and are meaningless to the
new process, so nothing absolute is ever persisted: snapshots store each
claim's *remaining* lease duration (``deadline - now`` at checkpoint
time) and each submission's idle age, and recovery re-anchors them
against the new process clock (``deadline = new_now + remaining``).  A
claim that only exists as a journal record gets a full fresh lease on
replay — the conservative choice: a worker that died with the broker
costs one extra lease interval, a worker that survived simply resumes
heartbeating (or lands its result, which is accepted for any known
task).  Heartbeats are deliberately *not* journaled: they only move
deadlines, which recovery re-derives anyway, and journaling a fleet's
quarter-lease heartbeats would dwarf the real state transitions.

By default appends are flushed to the OS (surviving any broker *process*
death, which is what the chaos suite kills); ``fsync=True`` additionally
fsyncs every append for whole-host crash durability at a per-request
cost.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, IO, Mapping

from repro.experiment.fsio import atomic_write_text

__all__ = ["BrokerStore", "DEFAULT_SNAPSHOT_EVERY"]

#: Journal records folded into a snapshot per rotation — small enough
#: that replay after a crash is instant, large enough that the O(state)
#: snapshot write stays off the per-request path.
DEFAULT_SNAPSHOT_EVERY = 512

_SNAPSHOT_NAME = "snapshot.json"
_JOURNAL_PREFIX = "journal-"
_JOURNAL_SUFFIX = ".jsonl"


class BrokerStore:
    """Journal + snapshot persistence for one broker's queue state.

    Not thread-safe by itself: the owning
    :class:`~repro.experiment.broker.BrokerQueue` already serializes
    every state transition under its queue lock and calls the store only
    while holding it, so a second lock here would only add deadlock
    surface.

    Args:
        root: the store directory (created if missing).  One directory
            per broker; two live brokers must never share one.
        snapshot_every: journal records between checkpoints.
        fsync: fsync every journal append (host-crash durability) rather
            than flushing to the OS (process-crash durability, the
            default).
    """

    def __init__(
        self,
        root: str | os.PathLike[str],
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        fsync: bool = False,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be at least 1")
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.snapshot_every = snapshot_every
        self.fsync = fsync
        self._generation = 0
        self._records_since_checkpoint = 0
        self._journal: IO[str] | None = None

    # ------------------------------------------------------------ layout
    def _snapshot_path(self) -> Path:
        return self.root / _SNAPSHOT_NAME

    def _journal_path(self, generation: int) -> Path:
        return self.root / f"{_JOURNAL_PREFIX}{generation:08d}{_JOURNAL_SUFFIX}"

    def _journal_generations(self) -> list[tuple[int, Path]]:
        """Every journal generation on disk, oldest first."""
        found: list[tuple[int, Path]] = []
        for path in sorted(self.root.glob(f"{_JOURNAL_PREFIX}*{_JOURNAL_SUFFIX}")):
            stem = path.name[len(_JOURNAL_PREFIX) : -len(_JOURNAL_SUFFIX)]
            try:
                found.append((int(stem), path))
            except ValueError:
                continue  # foreign file; not ours to interpret
        return found

    # ----------------------------------------------------------- recovery
    def recover(self) -> tuple[dict[str, Any] | None, list[dict[str, Any]]]:
        """Load the persisted state: ``(snapshot_state, journal_records)``.

        ``snapshot_state`` is the last checkpoint's state dict (``None``
        when no usable snapshot exists — a fresh store, or one whose
        snapshot is unreadable, in which case every journal generation
        still on disk is replayed from scratch).  ``journal_records``
        are the transitions appended after that checkpoint, in order.
        The caller applies both, then calls :meth:`checkpoint` with the
        recovered state — which compacts the store and opens the journal
        generation new appends go to.
        """
        state: dict[str, Any] | None = None
        covered = 0
        try:
            with open(self._snapshot_path(), encoding="utf-8") as fh:
                snapshot = json.load(fh)
            state = snapshot["state"]
            covered = int(snapshot["generation"])
        except (OSError, ValueError, KeyError, TypeError):
            state = None
            covered = 0
        records: list[dict[str, Any]] = []
        highest = covered
        for generation, path in self._journal_generations():
            highest = max(highest, generation)
            if generation < covered:
                continue  # folded into the snapshot already
            try:
                with open(path, encoding="utf-8") as fh:
                    lines = fh.read().splitlines()
            except OSError:
                continue
            for line in lines:
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    # A torn tail: the append a crash interrupted.  The
                    # transition was never acknowledged, so skipping it
                    # is the correct (and only possible) recovery.
                    continue
                if isinstance(record, dict):
                    records.append(record)
        self._generation = highest
        return state, records

    # ---------------------------------------------------------- mutation
    def append(self, record: Mapping[str, Any]) -> bool:
        """Append one transition record; True when a checkpoint is due.

        The caller (the queue, holding its lock) responds to ``True`` by
        calling :meth:`checkpoint` with its current full state — the
        store cannot do that itself because only the queue knows its
        state.
        """
        if self._journal is None:
            # First append after construction without a checkpoint (the
            # queue always checkpoints after recover(), so this is a
            # defensive fallback): extend the newest generation.
            self._journal = open(
                self._journal_path(self._generation), "a", encoding="utf-8"
            )
        self._journal.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._journal.flush()
        if self.fsync:
            os.fsync(self._journal.fileno())
        self._records_since_checkpoint += 1
        return self._records_since_checkpoint >= self.snapshot_every

    def checkpoint(self, state: Mapping[str, Any]) -> None:
        """Fold the journal into an atomic snapshot and rotate.

        Crash-ordering: the next journal generation is opened *before*
        the snapshot lands and old generations are only retired *after*
        — whichever step a crash interrupts, recovery sees either the
        old snapshot plus both generations (replayed in order) or the
        new snapshot plus a stale generation it knows to skip.  Replay
        is idempotent, so the overlap windows are safe.
        """
        next_generation = self._generation + 1
        if self._journal is not None:
            self._journal.close()
        self._journal = open(
            self._journal_path(next_generation), "a", encoding="utf-8"
        )
        atomic_write_text(
            self._snapshot_path(),
            json.dumps(
                {"generation": next_generation, "state": dict(state)},
                separators=(",", ":"),
            ),
        )
        self._generation = next_generation
        self._records_since_checkpoint = 0
        self._retire_journals(next_generation)

    def _retire_journals(self, keep_from: int) -> None:
        """Delete journal generations a snapshot has superseded.

        The one sanctioned deletion site in this module (audited into
        ``LintConfig.blessed_unlink_functions``): a generation below the
        snapshot's is pure history — every record in it is folded into
        the snapshot, so no recovery will ever read it again.
        """
        for generation, path in self._journal_generations():
            if generation >= keep_from:
                continue
            try:
                os.unlink(path)
            except OSError:
                pass  # a leftover costs bytes, never correctness

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BrokerStore({str(self.root)!r}, generation={self._generation}, "
            f"snapshot_every={self.snapshot_every})"
        )
