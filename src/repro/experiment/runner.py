"""The Experiment runner: spec in, typed results out.

:class:`Experiment` materializes an :class:`ExperimentSpec` through the
scenario registry and drives the canonical choreography every example
and benchmark used to hand-roll:

1. enable broadcast probing and warm it up (skipped for noRC baselines —
   those measure raw 802.11 with no probe traffic on the air);
2. run one controller cycle (estimate capacities, optimize, program the
   shapers) and start the flows;
3. measure achieved throughput over a settle-trimmed window;
4. repeat optimize+measure for the remaining cycles.

The scenario itself can be any registered builder — the four canned
presets or the fully declarative ``"generated"`` composition of a
topology generator, a workload generator and a radio profile (see
:mod:`repro.sim.generators`); the runner is agnostic, it drives whatever
:func:`repro.experiment.registry.build_scenario` hands back.

The outcome is an :class:`ExperimentResult`: one :class:`CycleResult`
per cycle (keeping the full :class:`ControlDecision` when requested),
per-flow achieved throughput, realized utility, and runtime statistics.
Results serialize with ``to_dict``/``from_dict`` (decisions excluded),
which the parallel batch runner uses to return bit-identical payloads
from worker processes — and which the content-addressed
:class:`repro.experiment.cache.ResultCache` stores on disk so repeated
specs skip the simulation entirely (``Experiment(spec).run(cache=...)``).
Writebacks also record the run's wall clock in the cache's measured-cost
ledger, which the sweep planner prefers over its static cost heuristic.
"""

from __future__ import annotations

import gc
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:
    from repro.experiment.cache import ResultCache

from repro.analysis.metrics import jain_fairness_index
from repro.core.controller import ControlDecision, OnlineOptimizer
from repro.experiment.registry import BuiltScenario, build_scenario
from repro.experiment.specs import ExperimentSpec
from repro.monitors import FlowSeries, MonitorHost


@contextmanager
def _gc_paused():
    """Pause the cyclic garbage collector for one simulation run.

    A run allocates millions of short-lived objects (events, frames,
    packets, tuples), and the generational GC's periodic scans of that
    churn cost a measurable slice of the wall clock without ever
    reclaiming much — the sim's object graph stays live until the run
    ends.  Reference counting still frees the acyclic majority
    immediately; the deferred cyclic garbage (e.g. ``Event`` -> bound
    method -> owner cycles) is swept by the explicit ``collect()`` on
    exit, so memory stays flat across batched runs.  GC state is purely
    a wall-clock concern: pausing it cannot affect simulation results.
    """
    if not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()
        gc.collect()


@dataclass
class CycleResult:
    """One optimization + measurement round."""

    index: int
    sim_start: float
    sim_end: float
    target_bps: dict[int, float]
    achieved_bps: dict[int, float]
    utility: float
    decision: ControlDecision | None = None

    @property
    def aggregate_bps(self) -> float:
        return float(sum(self.achieved_bps.values()))

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
            "target_bps": {str(k): v for k, v in self.target_bps.items()},
            "achieved_bps": {str(k): v for k, v in self.achieved_bps.items()},
            "utility": self.utility,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CycleResult":
        return cls(
            index=int(data["index"]),
            sim_start=float(data["sim_start"]),
            sim_end=float(data["sim_end"]),
            target_bps={int(k): float(v) for k, v in data["target_bps"].items()},
            achieved_bps={int(k): float(v) for k, v in data["achieved_bps"].items()},
            utility=float(data["utility"]),
        )


@dataclass
class ExperimentResult:
    """Everything an experiment produced.

    ``wall_time_s`` and ``events_processed`` are runtime diagnostics:
    they vary across hosts and are excluded from
    ``to_dict(include_runtime=False)``, the payload batch-determinism
    checks compare.
    """

    spec: ExperimentSpec
    flow_ids: list[int]
    flow_paths: dict[int, tuple[int, ...]]
    cycles: list[CycleResult]
    sim_time_s: float
    wall_time_s: float = 0.0
    events_processed: int = 0
    meta: dict[str, Any] = field(default_factory=dict)
    #: Per-flow time series by monitor name (``spec.monitors``); empty
    #: when the spec configured none.  Serialized in every payload, so
    #: monitor output rides the cache and broker paths byte-identically.
    monitors: dict[str, list[FlowSeries]] = field(default_factory=dict)

    # ------------------------------------------------------------- accessors
    @property
    def final_cycle(self) -> CycleResult:
        return self.cycles[-1]

    @property
    def flow_throughputs_bps(self) -> dict[int, float]:
        """Per-flow achieved throughput of the last measurement window."""
        return dict(self.final_cycle.achieved_bps)

    @property
    def aggregate_bps(self) -> float:
        return self.final_cycle.aggregate_bps

    @property
    def jain_index(self) -> float:
        return float(jain_fairness_index(list(self.flow_throughputs_bps.values())))

    @property
    def utility(self) -> float:
        """Realized utility of the last cycle's achieved rates."""
        return self.final_cycle.utility

    def feasibility_ratios(self) -> dict[int, float]:
        """Achieved over optimized rate per flow (last cycle, RC runs only)."""
        final = self.final_cycle
        return {
            flow_id: final.achieved_bps[flow_id] / max(final.target_bps.get(flow_id, 0.0), 1.0)
            for flow_id in self.flow_ids
            if flow_id in final.target_bps
        }

    # ---------------------------------------------------------- serialization
    def to_dict(self, include_runtime: bool = True) -> dict[str, Any]:
        data: dict[str, Any] = {
            "spec": self.spec.to_dict(),
            "flow_ids": list(self.flow_ids),
            "flow_paths": {str(k): list(v) for k, v in self.flow_paths.items()},
            "cycles": [cycle.to_dict() for cycle in self.cycles],
            "sim_time_s": self.sim_time_s,
            "meta": dict(self.meta),
            "monitors": {
                name: [series.to_dict() for series in series_list]
                for name, series_list in self.monitors.items()
            },
        }
        if include_runtime:
            data["runtime"] = {
                "wall_time_s": self.wall_time_s,
                "events_processed": self.events_processed,
            }
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        runtime = data.get("runtime", {})
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            flow_ids=[int(f) for f in data["flow_ids"]],
            flow_paths={
                int(k): tuple(int(n) for n in v) for k, v in data["flow_paths"].items()
            },
            cycles=[CycleResult.from_dict(c) for c in data["cycles"]],
            sim_time_s=float(data["sim_time_s"]),
            wall_time_s=float(runtime.get("wall_time_s", 0.0)),
            events_processed=int(runtime.get("events_processed", 0)),
            meta=dict(data.get("meta", {})),
            monitors={
                str(name): [FlowSeries.from_dict(entry) for entry in series_list]
                for name, series_list in data.get("monitors", {}).items()
            },
        )


class Experiment:
    """Run one :class:`ExperimentSpec` end to end.

    Args:
        spec: the declarative experiment description.
        keep_decisions: keep the full :class:`ControlDecision` of every
            cycle on the result (set False when results must cross
            process boundaries cheaply, as the batch runner does).
    """

    def __init__(self, spec: ExperimentSpec, keep_decisions: bool = True) -> None:
        self.spec = spec
        self.keep_decisions = keep_decisions

    def build(self) -> BuiltScenario:
        """Materialize the scenario without running anything."""
        return build_scenario(self.spec.scenario)

    def run(
        self,
        scenario: BuiltScenario | None = None,
        cache: "ResultCache | None | bool" = None,
    ) -> ExperimentResult:
        """Run the experiment, optionally on a scenario built beforehand
        with :meth:`build` (e.g. to inspect routes before running).

        ``cache`` is resolved by :func:`repro.experiment.cache.resolve_cache`
        (pass a :class:`ResultCache`, ``True`` for the default cache,
        ``False`` to disable; the default ``None`` consults the cache iff
        ``REPRO_CACHE_DIR`` is set).  The cache only participates when no
        pre-built ``scenario`` was handed in — a caller-provided scenario
        may diverge from the spec, which would poison a content-addressed
        store — and lookups additionally require ``keep_decisions=False``,
        since cached payloads cannot carry :class:`ControlDecision`
        objects.  Completed spec-built runs are written back regardless of
        ``keep_decisions`` — but only if the digest is still absent, so an
        existing entry keeps the exact payload (runtime block included)
        its original run serialized.
        """
        from repro.experiment.cache import resolve_cache

        spec = self.spec
        result_cache = resolve_cache(cache) if scenario is None else None
        if result_cache is not None and not self.keep_decisions:
            cached = result_cache.get(spec)
            if cached is not None:
                return cached
        wall_start = time.perf_counter()
        with _gc_paused():
            if scenario is None:
                scenario = self.build()
            network = scenario.network
            flows = scenario.flows

            controller: OnlineOptimizer | None = None
            if spec.controller.enabled:
                network.enable_probing(
                    period_s=spec.probing.period_s,
                    data_probe_bytes=spec.probing.data_probe_bytes,
                )
                network.run(spec.probing.warmup_s)
                controller = OnlineOptimizer(
                    network,
                    flows,
                    utility=spec.controller.utility,
                    probing_window=spec.controller.probing_window,
                    interference_mode=spec.controller.interference,
                    payload_bytes=spec.controller.payload_bytes,
                    connectivity_threshold=spec.controller.connectivity_threshold,
                    min_probes_for_estimator=spec.controller.min_probes_for_estimator,
                )

            cycles: list[CycleResult] = []
            monitor_host: MonitorHost | None = None
            utility = spec.controller.utility
            for index in range(spec.cycles):
                decision = controller.run_cycle() if controller is not None else None
                if index == 0:
                    for flow in flows:
                        flow.start()
                    if spec.monitors:
                        monitor_host = MonitorHost(
                            network,
                            flows,
                            spec.monitors,
                            interval_s=spec.monitor_interval_s,
                        )
                        monitor_host.start()
                cycle_start = network.now
                network.run(spec.cycle_measure_s)
                start, end = cycle_start + spec.settle_s, network.now
                achieved = {
                    f.flow_id: float(f.throughput_bps(start, end)) for f in flows
                }
                targets = (
                    {fid: float(v) for fid, v in decision.target_outputs_bps.items()}
                    if decision is not None
                    else {}
                )
                cycles.append(
                    CycleResult(
                        index=index,
                        sim_start=start,
                        sim_end=end,
                        target_bps=targets,
                        achieved_bps=achieved,
                        utility=utility.value(list(achieved.values())),
                        decision=decision if self.keep_decisions else None,
                    )
                )

        result = ExperimentResult(
            spec=spec,
            flow_ids=[f.flow_id for f in flows],
            flow_paths={f.flow_id: tuple(f.path) for f in flows},
            cycles=cycles,
            sim_time_s=float(network.now),
            wall_time_s=time.perf_counter() - wall_start,
            events_processed=network.sim.processed_events,
            meta=dict(scenario.meta),
            monitors=monitor_host.collect() if monitor_host is not None else {},
        )
        if result_cache is not None and spec not in result_cache:
            result_cache.put(result)
        return result


def run_experiment(
    spec: ExperimentSpec,
    keep_decisions: bool = True,
    cache: "ResultCache | None | bool" = None,
) -> ExperimentResult:
    """Convenience wrapper: ``Experiment(spec).run(cache=cache)``."""
    return Experiment(spec, keep_decisions=keep_decisions).run(cache=cache)
