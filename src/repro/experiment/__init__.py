"""Declarative experiment API: spec -> build -> run -> typed results.

This package is the canonical public entry point to the reproduction:

* :mod:`repro.experiment.specs` — frozen, serializable specification
  dataclasses (:class:`ScenarioSpec`, :class:`ExperimentSpec`, ...);
* :mod:`repro.experiment.registry` — the named scenario registry
  (:func:`register_scenario`) wrapping the canned builders of
  :mod:`repro.sim.scenarios`;
* :mod:`repro.experiment.runner` — :class:`Experiment`, which drives
  warmup -> N optimizer cycles -> measurement and returns an
  :class:`ExperimentResult`;
* :mod:`repro.experiment.batch` — :class:`BatchRunner`, a multi-seed /
  multi-scenario sweep with process parallelism whose results are
  bit-identical to a sequential run;
* :mod:`repro.experiment.cache` — :class:`ResultCache`, a
  content-addressed on-disk cache of result payloads keyed by
  :func:`spec_digest`, consulted by the runner and the batch runner so
  repeated sweep cells skip the simulation (enable globally by
  exporting ``REPRO_CACHE_DIR``).
"""

from repro.experiment.batch import BatchResult, BatchRunner, seed_sweep
from repro.experiment.cache import (
    CacheStats,
    ResultCache,
    default_cache,
    resolve_cache,
)
from repro.experiment.registry import (
    BuiltScenario,
    build_scenario,
    register_scenario,
    scenario_description,
    scenario_names,
)
from repro.experiment.runner import (
    CycleResult,
    Experiment,
    ExperimentResult,
    run_experiment,
)
from repro.experiment.specs import (
    NO_RATE_CONTROL,
    SPEC_SCHEMA_VERSION,
    ControllerSpec,
    ExperimentSpec,
    FlowSpec,
    ProbingSpec,
    RadioSpec,
    ScenarioSpec,
    SpecError,
    TopologySpec,
    spec_digest,
)

__all__ = [
    "BatchResult",
    "BatchRunner",
    "seed_sweep",
    "CacheStats",
    "ResultCache",
    "default_cache",
    "resolve_cache",
    "SPEC_SCHEMA_VERSION",
    "spec_digest",
    "BuiltScenario",
    "build_scenario",
    "register_scenario",
    "scenario_description",
    "scenario_names",
    "CycleResult",
    "Experiment",
    "ExperimentResult",
    "run_experiment",
    "NO_RATE_CONTROL",
    "ControllerSpec",
    "ExperimentSpec",
    "FlowSpec",
    "ProbingSpec",
    "RadioSpec",
    "ScenarioSpec",
    "SpecError",
    "TopologySpec",
]
