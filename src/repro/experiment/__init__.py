"""Declarative experiment API: spec -> build -> run -> typed results.

This package is the canonical public entry point to the reproduction:

* :mod:`repro.experiment.specs` — frozen, serializable specification
  dataclasses (:class:`ScenarioSpec`, :class:`ExperimentSpec`, ...);
* :mod:`repro.experiment.registry` — the named scenario registry
  (:func:`register_scenario`) wrapping the canned builders of
  :mod:`repro.sim.scenarios`;
* :mod:`repro.experiment.runner` — :class:`Experiment`, which drives
  warmup -> N optimizer cycles -> measurement and returns an
  :class:`ExperimentResult`;
* :mod:`repro.experiment.batch` — :class:`BatchRunner`, a multi-seed /
  multi-scenario sweep with process parallelism whose results are
  bit-identical to a sequential run.
"""

from repro.experiment.batch import BatchResult, BatchRunner, seed_sweep
from repro.experiment.registry import (
    BuiltScenario,
    build_scenario,
    register_scenario,
    scenario_description,
    scenario_names,
)
from repro.experiment.runner import (
    CycleResult,
    Experiment,
    ExperimentResult,
    run_experiment,
)
from repro.experiment.specs import (
    NO_RATE_CONTROL,
    ControllerSpec,
    ExperimentSpec,
    FlowSpec,
    ProbingSpec,
    RadioSpec,
    ScenarioSpec,
    SpecError,
    TopologySpec,
)

__all__ = [
    "BatchResult",
    "BatchRunner",
    "seed_sweep",
    "BuiltScenario",
    "build_scenario",
    "register_scenario",
    "scenario_description",
    "scenario_names",
    "CycleResult",
    "Experiment",
    "ExperimentResult",
    "run_experiment",
    "NO_RATE_CONTROL",
    "ControllerSpec",
    "ExperimentSpec",
    "FlowSpec",
    "ProbingSpec",
    "RadioSpec",
    "ScenarioSpec",
    "SpecError",
    "TopologySpec",
]
