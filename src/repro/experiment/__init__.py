"""Declarative experiment API: spec -> build -> run -> typed results.

This package is the canonical public entry point to the reproduction:

* :mod:`repro.experiment.specs` — frozen, serializable specification
  dataclasses (:class:`ScenarioSpec`, :class:`ExperimentSpec`, ...);
* :mod:`repro.experiment.registry` — the named scenario registry
  (:func:`register_scenario`) wrapping the canned builders of
  :mod:`repro.sim.scenarios`;
* :mod:`repro.experiment.runner` — :class:`Experiment`, which drives
  warmup -> N optimizer cycles -> measurement and returns an
  :class:`ExperimentResult`;
* :mod:`repro.experiment.batch` — :class:`BatchRunner`, a multi-seed /
  multi-scenario sweep whose results are bit-identical no matter which
  backend executes them;
* :mod:`repro.experiment.backends` — the pluggable execution layer
  (:class:`SerialBackend`, :class:`ProcessPoolBackend`, the
  shared-directory :class:`WorkQueueBackend` remote workers drain via
  ``python -m repro.experiment.worker``, and the HTTP
  :class:`BrokerBackend` whose workers need only a URL in common with
  the submitter), selectable per-runner or globally with
  ``REPRO_BATCH_BACKEND``.  Queue claims are heartbeat leases with a
  per-task retry budget, so a worker killed mid-task costs one lease
  interval, not the sweep;
* :mod:`repro.experiment.broker` — the stdlib HTTP broker behind
  :class:`BrokerBackend` (``python -m repro.experiment.broker``);
* :mod:`repro.experiment.planner` — :class:`SweepPlanner`, which
  deduplicates identical specs, resolves cache hits before dispatch,
  and orders the remaining cells by estimated cost (slowest first);
* :mod:`repro.experiment.cache` — :class:`ResultCache`, a
  content-addressed on-disk cache of result payloads keyed by
  :func:`spec_digest`, consulted by the runner and the batch runner so
  repeated sweep cells skip the simulation (enable globally by
  exporting ``REPRO_CACHE_DIR``).
"""

from repro.experiment.backends import (
    BackendError,
    BrokerAuthError,
    BrokerBackend,
    BrokerClient,
    ExecutionBackend,
    ProcessPoolBackend,
    QueueStats,
    SerialBackend,
    WorkQueueBackend,
    backend_names,
    register_backend,
    resolve_backend,
    run_spec_payload,
)
from repro.experiment.batch import BatchResult, BatchRunner, seed_sweep
from repro.experiment.cache import (
    CacheStats,
    ResultCache,
    default_cache,
    resolve_cache,
)
from repro.experiment.planner import (
    PlannedJob,
    PlannerStats,
    SweepPlan,
    SweepPlanner,
    estimate_cost_s,
)
from repro.experiment.registry import (
    BuiltScenario,
    build_scenario,
    register_scenario,
    scenario_description,
    scenario_names,
)
from repro.experiment.runner import (
    CycleResult,
    Experiment,
    ExperimentResult,
    run_experiment,
)
from repro.experiment.specs import (
    NO_RATE_CONTROL,
    SPEC_SCHEMA_VERSION,
    ChurnSpec,
    ControllerSpec,
    ExperimentSpec,
    FlowSpec,
    MobilitySpec,
    ProbingSpec,
    RadioSpec,
    ScenarioSpec,
    SpecError,
    TopologySpec,
    WorkloadSpec,
    spec_digest,
)

__all__ = [
    "BackendError",
    "BrokerAuthError",
    "BrokerBackend",
    "BrokerClient",
    "ExecutionBackend",
    "QueueStats",
    "SerialBackend",
    "ProcessPoolBackend",
    "WorkQueueBackend",
    "backend_names",
    "register_backend",
    "resolve_backend",
    "run_spec_payload",
    "BatchResult",
    "BatchRunner",
    "seed_sweep",
    "PlannedJob",
    "PlannerStats",
    "SweepPlan",
    "SweepPlanner",
    "estimate_cost_s",
    "CacheStats",
    "ResultCache",
    "default_cache",
    "resolve_cache",
    "SPEC_SCHEMA_VERSION",
    "spec_digest",
    "BuiltScenario",
    "build_scenario",
    "register_scenario",
    "scenario_description",
    "scenario_names",
    "CycleResult",
    "Experiment",
    "ExperimentResult",
    "run_experiment",
    "NO_RATE_CONTROL",
    "ChurnSpec",
    "ControllerSpec",
    "ExperimentSpec",
    "FlowSpec",
    "MobilitySpec",
    "ProbingSpec",
    "RadioSpec",
    "ScenarioSpec",
    "SpecError",
    "TopologySpec",
    "WorkloadSpec",
]
