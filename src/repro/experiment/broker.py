"""HTTP task broker: ``python -m repro.experiment.broker``.

The network-transparent half of the queue layer.  The file-based
:class:`~repro.experiment.backends.work_queue.WorkQueueBackend` couples
submitter and workers through a shared filesystem; this broker speaks
the *same* task/claim/result envelope protocol over HTTP, so submitter
and workers need only a URL in common:

.. code-block:: console

    # anywhere the fleet can reach:
    $ python -m repro.experiment.broker --host 0.0.0.0 --port 8123

    # on each worker host:
    $ python -m repro.experiment.worker --broker http://broker:8123

    # on the submitting host:
    >>> BatchRunner(sweep, backend=BrokerBackend("http://broker:8123",
    ...                                          workers=0)).run()

Everything is stdlib: :class:`http.server.ThreadingHTTPServer` on the
outside, the in-memory :class:`BrokerQueue` (one lock, plain dicts) on
the inside.  Claims are **leases** here too — the broker stamps a
deadline on every claim, workers extend it by heartbeating, and every
request first sweeps expired leases: an expired claim with retry budget
left goes back on the queue with its ``attempts`` bumped, one without
becomes a synthesized error envelope naming the task and attempt count.
A ``kill -9``'d worker therefore costs one lease interval, never the
sweep.

State is in-memory by design: the broker serializes a fleet's claims
and carries seconds-lived task envelopes, it is not a durable store —
results worth keeping land in the submitter's :class:`ResultCache`.  If
the broker dies, submitters time out and resubmit to a fresh one.

JSON endpoints (bodies and responses are ``application/json``)::

    POST /submit     {"tasks": [<task envelope>, ...]}
    POST /claim      {"match": "<id prefix>", "worker": "<name>"}
                       -> {"task": <envelope> | null}
    POST /heartbeat  {"id": ...}            -> {"ok": true|false}
    POST /result     <outcome envelope>     -> {"ok": true}
    POST /collect    {"ids": [...] | "match": prefix, "ack": [...]}
                                            -> {"results": [...],
                                                "pending": n, "claimed": n}
    POST /cancel     {"ids": [...]}         -> {"cancelled": n}
    GET  /stats      -> {"pending": n, "claimed": n, "results": n, ...}

The task envelope is
:func:`repro.experiment.backends.queue_common.task_envelope`; outcome
envelopes are ``{"id", "result"}`` or ``{"id", "error"}``, with
``attempts`` annotated by the broker so submitters can account for
worker deaths they never saw.
"""

from __future__ import annotations

import argparse
import bisect
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping

from repro.experiment.backends.queue_common import (
    default_lease_s,
    default_max_attempts,
    exhausted_error,
)

__all__ = ["BrokerQueue", "BrokerServer", "main", "start_broker"]


class BrokerQueue:
    """The broker's in-memory task state; every method is thread-safe.

    Args:
        lease_s: fallback lease for task envelopes that carry none.
        max_attempts: fallback retry budget, likewise.
        ttl_s: idle time after which a task or result is garbage — a
            submitter killed before its ``cancel`` leaves its submission
            behind, and without a horizon a long-lived shared broker
            would grow forever (and external workers would burn compute
            on sweeps nobody is waiting for).  Live submissions never
            come close: submitters poll every tick and workers heartbeat
            every quarter lease.  The default matches the file queue's
            deliberately paranoid one-week orphan horizon.
        time_fn: monotonic clock, injectable so lease-expiry tests need
            no real sleeping.
    """

    #: Default ``ttl_s`` — the file queue's ``_STALE_RESULT_S`` horizon.
    DEFAULT_TTL_S = 7 * 24 * 3600.0

    def __init__(
        self,
        lease_s: float | None = None,
        max_attempts: int | None = None,
        ttl_s: float | None = None,
        time_fn: Callable[[], float] = time.monotonic,
    ) -> None:
        self._lease_s = lease_s if lease_s is not None else default_lease_s()
        self._max_attempts = (
            max_attempts if max_attempts is not None else default_max_attempts()
        )
        self._ttl_s = ttl_s if ttl_s is not None else self.DEFAULT_TTL_S
        self._now = time_fn
        self._lock = threading.Lock()
        #: sorted pending task ids (claim order = id order, which is
        #: submission order: ids embed the submitter's planned index).
        #: Sorted rather than a heap so a match-scoped claim can bisect
        #: straight to its own prefix instead of rescanning every other
        #: submission's backlog on a shared broker.  May hold stale ids
        #: (cancelled/completed); claims drop them lazily.
        self._order: list[str] = []
        self._tasks: dict[str, dict[str, Any]] = {}  # pending envelopes
        #: id -> (envelope, lease deadline, worker name)
        self._claimed: dict[str, tuple[dict[str, Any], float, str]] = {}
        self._results: dict[str, dict[str, Any]] = {}
        #: id -> last time anyone (submitter or worker) touched it.
        self._touched: dict[str, float] = {}

    # ------------------------------------------------------------ internals
    def _lease_of(self, envelope: Mapping[str, Any]) -> float:
        return float(envelope.get("lease_s") or self._lease_s)

    def _budget_of(self, envelope: Mapping[str, Any]) -> int:
        return int(envelope.get("max_attempts") or self._max_attempts)

    def _expire(self, now: float) -> None:
        """Requeue expired claims and GC abandoned ids (lock held)."""
        expired = [
            task_id
            for task_id, (_, deadline, _) in self._claimed.items()
            if deadline < now
        ]
        for task_id in expired:
            envelope, _, _ = self._claimed.pop(task_id)
            self._touched[task_id] = now
            attempts = int(envelope.get("attempts", 0)) + 1
            envelope["attempts"] = attempts
            budget = self._budget_of(envelope)
            if attempts >= budget:
                self._results[task_id] = {
                    "id": task_id,
                    "error": exhausted_error(task_id, attempts, budget),
                    "attempts": attempts,
                }
            else:
                self._tasks[task_id] = envelope
                bisect.insort(self._order, task_id)
        # Abandoned-submission GC: a submitter that died without its
        # cancel stops collecting, so nothing refreshes its ids — once
        # idle past the TTL they are garbage (stale ids left in the
        # sorted order are dropped lazily on claim, and compacted in
        # bulk here so a dead submission no worker matches cannot pin
        # memory forever).
        horizon = now - self._ttl_s
        stale = [t for t, at in self._touched.items() if at < horizon]
        for task_id in stale:
            self._tasks.pop(task_id, None)
            self._claimed.pop(task_id, None)
            self._results.pop(task_id, None)
            del self._touched[task_id]
        if stale:
            self._order = [t for t in self._order if t in self._tasks]

    # ------------------------------------------------------------- protocol
    def submit(self, tasks: list[Mapping[str, Any]]) -> int:
        now = self._now()
        with self._lock:
            for envelope in tasks:
                task_id = str(envelope["id"])
                self._touched[task_id] = now
                if task_id in self._tasks:
                    continue  # resubmission of a pending task is a no-op
                self._tasks[task_id] = dict(envelope)
                bisect.insort(self._order, task_id)
            return len(tasks)

    def claim(self, match: str = "", worker: str = "") -> dict[str, Any] | None:
        """Pop the first pending task matching ``match`` and lease it.

        Ids sharing a prefix are contiguous in the sorted order, so the
        scan bisects straight to the prefix and stops the moment it
        leaves it — a drainer polling for its own submission never pays
        for other submissions' backlogs.
        """
        now = self._now()
        with self._lock:
            self._expire(now)
            index = bisect.bisect_left(self._order, match) if match else 0
            while index < len(self._order):
                task_id = self._order[index]
                if match and not task_id.startswith(match):
                    break  # sorted: past the prefix range, nothing matches
                envelope = self._tasks.get(task_id)
                if envelope is None:
                    self._order.pop(index)  # cancelled/completed: drop lazily
                    continue
                self._order.pop(index)
                del self._tasks[task_id]
                self._claimed[task_id] = (
                    envelope,
                    now + self._lease_of(envelope),
                    worker,
                )
                self._touched[task_id] = now
                return dict(envelope)
            return None

    def heartbeat(self, task_id: str) -> bool:
        """Extend a live claim's lease; False if the claim is gone."""
        now = self._now()
        with self._lock:
            self._expire(now)
            entry = self._claimed.get(task_id)
            if entry is None:
                return False
            envelope, _, worker = entry
            self._claimed[task_id] = (
                envelope,
                now + self._lease_of(envelope),
                worker,
            )
            self._touched[task_id] = now
            return True

    def result(self, outcome: Mapping[str, Any]) -> bool:
        """Accept an outcome envelope; False if the task is unknown.

        A result is accepted from a worker whose lease already expired —
        its task may have been requeued (or re-claimed by someone else),
        but by the engine's determinism a late result is byte-identical
        to the eventual one, so it completes the task immediately and
        the duplicate execution is cancelled where possible.  Outcomes
        for ids the broker has never seen (a cancelled submission) are
        refused so they cannot accumulate forever.
        """
        task_id = str(outcome.get("id", ""))
        now = self._now()
        with self._lock:
            known = (
                task_id in self._tasks
                or task_id in self._claimed
                or task_id in self._results
            )
            if not known:
                return False
            self._touched[task_id] = now
            entry = self._claimed.pop(task_id, None)
            pending = self._tasks.pop(task_id, None)
            envelope = entry[0] if entry else pending
            stored = dict(outcome)
            if envelope is not None:
                stored.setdefault("attempts", int(envelope.get("attempts", 0)))
            self._results[task_id] = stored
            return True

    def collect(
        self,
        ids: list[str] | None = None,
        match: str | None = None,
        ack: list[str] | None = None,
    ) -> dict[str, Any]:
        """Hand over finished results, plus the live pending/claimed
        counts the submitter's auto-scaler and liveness logic need —
        one round trip per poll tick.

        Address the submission either by explicit ``ids`` or by a
        ``match`` prefix; prefix collection keeps each poll tick's
        request O(newly finished), not O(submission size) — a
        10 000-cell sweep must not ship its whole id list 20 times a
        second.

        Handover is **ack-based, never speculative**: results stay in
        the tables (and are re-sent) until a later request lists them in
        ``ack``, which the submitter only does after safely receiving
        the previous response.  A response lost on the wire therefore
        loses nothing — the exact failure class the lease machinery
        exists to kill.  The final :meth:`cancel` purges whatever was
        never acked, so nothing accumulates past a submission's
        lifetime (and the TTL GC covers submitters that died before
        even that)."""
        now = self._now()
        with self._lock:
            self._expire(now)
            for task_id in ack or ():
                self._results.pop(task_id, None)
                self._touched.pop(task_id, None)
            if match is not None:
                # The asker is a live submitter: its whole submission
                # stays fresh for the abandoned-submission GC.
                for task_id in self._touched:
                    if task_id.startswith(match):
                        self._touched[task_id] = now
                results = [
                    dict(envelope)
                    for task_id, envelope in self._results.items()
                    if task_id.startswith(match)
                ]
                pending = sum(1 for t in self._tasks if t.startswith(match))
                claimed = sum(1 for t in self._claimed if t.startswith(match))
            else:
                wanted = list(ids or [])
                for task_id in wanted:
                    if task_id in self._touched:
                        self._touched[task_id] = now
                results = [
                    dict(self._results[task_id])
                    for task_id in wanted
                    if task_id in self._results
                ]
                wanted_set = set(wanted)
                pending = sum(1 for t in self._tasks if t in wanted_set)
                claimed = sum(1 for t in self._claimed if t in wanted_set)
            return {
                "results": results,
                "pending": pending,
                "claimed": claimed,
            }

    def cancel(self, ids: list[str]) -> int:
        """Withdraw a submission: nobody is waiting for these tasks."""
        with self._lock:
            cancelled = 0
            dropped_pending = False
            for task_id in ids:
                was_pending = self._tasks.pop(task_id, None) is not None
                dropped_pending |= was_pending
                cancelled += was_pending
                cancelled += self._claimed.pop(task_id, None) is not None
                self._results.pop(task_id, None)
                self._touched.pop(task_id, None)
            if dropped_pending:
                self._order = [t for t in self._order if t in self._tasks]
            return cancelled

    def stats(self) -> dict[str, Any]:
        now = self._now()
        with self._lock:
            self._expire(now)
            return {
                "pending": len(self._tasks),
                "claimed": len(self._claimed),
                "results": len(self._results),
                "lease_s": self._lease_s,
                "max_attempts": self._max_attempts,
            }


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON shim over :class:`BrokerQueue`; no state of its own."""

    queue: BrokerQueue  # set by BrokerServer
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # a fleet heartbeating every lease/4 would drown stderr

    def _reply(self, status: int, payload: Mapping[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        return json.loads(raw.decode("utf-8"))

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] == "/stats":
            self._reply(200, self.queue.stats())
        else:
            self._reply(404, {"error": f"unknown endpoint {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            body = self._body()
        except (ValueError, UnicodeDecodeError) as exc:
            self._reply(400, {"error": f"bad JSON body: {exc}"})
            return
        route = self.path.split("?", 1)[0]
        try:
            if route == "/submit":
                self._reply(
                    200, {"accepted": self.queue.submit(body.get("tasks", []))}
                )
            elif route == "/claim":
                task = self.queue.claim(
                    match=str(body.get("match", "")),
                    worker=str(body.get("worker", "")),
                )
                self._reply(200, {"task": task})
            elif route == "/heartbeat":
                self._reply(200, {"ok": self.queue.heartbeat(str(body.get("id")))})
            elif route == "/result":
                self._reply(200, {"ok": self.queue.result(body)})
            elif route == "/collect":
                self._reply(
                    200,
                    self.queue.collect(
                        ids=body.get("ids"),
                        match=body.get("match"),
                        ack=list(body.get("ack", [])),
                    ),
                )
            elif route == "/cancel":
                self._reply(
                    200, {"cancelled": self.queue.cancel(list(body.get("ids", [])))}
                )
            else:
                self._reply(404, {"error": f"unknown endpoint {route!r}"})
        except Exception as exc:  # a broken request must not kill the broker
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})


class BrokerServer(ThreadingHTTPServer):
    """One listening socket bound to one :class:`BrokerQueue`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], queue: BrokerQueue) -> None:
        handler = type("BoundHandler", (_Handler,), {"queue": queue})
        super().__init__(address, handler)
        self.queue = queue

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        display = "127.0.0.1" if host in ("0.0.0.0", "::") else host
        return f"http://{display}:{port}"


def start_broker(
    host: str = "127.0.0.1",
    port: int = 0,
    lease_s: float | None = None,
    max_attempts: int | None = None,
    ttl_s: float | None = None,
) -> BrokerServer:
    """Start a broker on a background thread; returns the live server.

    ``port=0`` picks a free port — read the result's ``.url``.  Shut it
    down with ``server.shutdown(); server.server_close()``.  This is
    what :class:`~repro.experiment.backends.broker_client.BrokerBackend`
    uses for its private per-run broker, and what tests use to get a
    real HTTP broker without a subprocess.
    """
    server = BrokerServer(
        (host, port),
        BrokerQueue(lease_s=lease_s, max_attempts=max_attempts, ttl_s=ttl_s),
    )
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        name="repro-broker",
        daemon=True,
    )
    thread.start()
    return server


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiment.broker",
        description="Serve the repro task/claim/result protocol over HTTP "
        "(see repro.experiment.backends.BrokerBackend).",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (0.0.0.0 to accept a remote fleet; the protocol "
        "is unauthenticated, so bind to trusted networks only)",
    )
    parser.add_argument("--port", type=int, default=8123, help="bind port")
    parser.add_argument(
        "--lease-s",
        type=float,
        default=None,
        help="fallback claim lease for tasks that carry none "
        "(default: REPRO_QUEUE_LEASE_S or 30)",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        help="fallback per-task retry budget "
        "(default: REPRO_QUEUE_MAX_ATTEMPTS or 3)",
    )
    parser.add_argument(
        "--ttl-s",
        type=float,
        default=None,
        help="drop tasks/results of submissions idle this long — "
        "abandoned-submitter garbage collection (default: one week)",
    )
    args = parser.parse_args(argv)
    server = BrokerServer(
        (args.host, args.port),
        BrokerQueue(
            lease_s=args.lease_s,
            max_attempts=args.max_attempts,
            ttl_s=args.ttl_s,
        ),
    )
    print(f"repro broker listening on {server.url}", flush=True)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
