"""HTTP task broker: ``python -m repro.experiment.broker``.

The network-transparent half of the queue layer.  The file-based
:class:`~repro.experiment.backends.work_queue.WorkQueueBackend` couples
submitter and workers through a shared filesystem; this broker speaks
the *same* task/claim/result envelope protocol over HTTP, so submitter
and workers need only a URL in common:

.. code-block:: console

    # anywhere the fleet can reach:
    $ REPRO_BROKER_TOKEN=s3cret python -m repro.experiment.broker \\
          --host 0.0.0.0 --port 8123 --store-dir /var/lib/repro-broker

    # on each worker host (same token in the environment):
    $ REPRO_BROKER_TOKEN=s3cret python -m repro.experiment.worker \\
          --broker http://broker:8123

    # on the submitting host (same token in the environment):
    >>> BatchRunner(sweep, backend=BrokerBackend("http://broker:8123",
    ...                                          workers=0)).run()

Everything is stdlib: :class:`http.server.ThreadingHTTPServer` on the
outside, :class:`BrokerQueue` on the inside.  Claims are **leases** here
too — the broker stamps a deadline on every claim, workers extend it by
heartbeating, and every request first sweeps expired leases: an expired
claim with retry budget left goes back on the queue with its
``attempts`` bumped, one without becomes a synthesized error envelope
naming the task and attempt count.  A ``kill -9``'d worker therefore
costs one lease interval, never the sweep.

Three properties make the broker fit for a *shared, long-lived*
deployment rather than a trusted localhost:

* **Durability** (``--store-dir``): every state transition is journaled
  and periodically snapshotted through
  :class:`~repro.experiment.broker_store.BrokerStore`, so a broker
  restart — deploy, OOM, ``kill -9`` — loses no submitted task and no
  finished result.  Lease deadlines are re-anchored on recovery from
  persisted *remaining durations*: absolute ``time.monotonic()``
  deadlines die with the process, so the store never records one.
  Without a store the queue is in-memory, as before.
* **Authentication** (``REPRO_BROKER_TOKEN``): with a token configured,
  every request must carry ``Authorization: Bearer <token>`` or is
  refused with 401 — what lets the broker bind beyond localhost.  The
  same variable arms :class:`BrokerClient` and the worker, so a fleet
  is authenticated by exporting one secret everywhere.
* **Bucketing**: task state is kept per submission prefix (the id up to
  its final ``-``), so a match-scoped ``claim`` and a prefix ``collect``
  touch only their own submission's bucket — O(own submission) under
  many concurrent submitters, instead of bisecting one global id list.

JSON endpoints (bodies and responses are ``application/json``)::

    POST /submit     {"tasks": [<task envelope>, ...]}
    POST /claim      {"match": "<id prefix>", "worker": "<name>"}
                       -> {"task": <envelope> | null}
    POST /heartbeat  {"id": ...}            -> {"ok": true|false}
    POST /result     <outcome envelope>     -> {"ok": true}
    POST /collect    {"ids": [...] | "match": prefix, "ack": [...]}
                                            -> {"results": [...],
                                                "pending": n, "claimed": n}
    POST /cancel     {"ids": [...]}         -> {"cancelled": n}
    GET  /stats      -> {"pending": n, "claimed": n, "results": n, ...}

The task envelope is
:func:`repro.experiment.backends.queue_common.task_envelope`; outcome
envelopes are ``{"id", "result"}`` or ``{"id", "error"}``, with
``attempts`` annotated by the broker so submitters can account for
worker deaths they never saw.
"""

from __future__ import annotations

import argparse
import bisect
import hmac
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Iterable, Mapping

from repro.experiment.backends.queue_common import (
    BROKER_TOKEN_ENV_VAR,
    default_broker_token,
    default_lease_s,
    default_max_attempts,
    exhausted_error,
)
from repro.experiment.broker_store import DEFAULT_SNAPSHOT_EVERY, BrokerStore

__all__ = [
    "BrokerQueue",
    "BrokerServer",
    "bucket_key",
    "main",
    "start_broker",
]


def bucket_key(task_id: str) -> str:
    """The submission bucket a task id belongs to.

    Ids are ``<submission>-<index>`` (``f"{job}-{index:05d}"`` in both
    backends), so everything up to and including the final ``-`` names
    the submission; an id with no ``-`` is its own bucket.  Submitters
    scope claims and collects by exactly this prefix, which is what
    makes a bucket the unit of O(own submission) work.
    """
    head, sep, _ = task_id.rpartition("-")
    return head + sep if sep else task_id


class _Bucket:
    """One submission's live state: pending, claimed, finished."""

    __slots__ = ("order", "tasks", "claimed", "results", "touched_at")

    def __init__(self, touched_at: float) -> None:
        #: Sorted pending task ids — claim order is id order, which is
        #: submission order (ids embed the submitter's planned index).
        self.order: list[str] = []
        self.tasks: dict[str, dict[str, Any]] = {}
        #: id -> (envelope, lease deadline, worker name)
        self.claimed: dict[str, tuple[dict[str, Any], float, str]] = {}
        self.results: dict[str, dict[str, Any]] = {}
        #: Last time anyone (submitter or worker) touched this
        #: submission — the abandoned-submission GC clock.
        self.touched_at = touched_at

    def empty(self) -> bool:
        return not (self.tasks or self.claimed or self.results)


class BrokerQueue:
    """The broker's task state, bucketed by submission; thread-safe.

    Args:
        lease_s: fallback lease for task envelopes that carry none.
        max_attempts: fallback retry budget, likewise.
        ttl_s: idle time after which a submission is garbage — a
            submitter killed before its ``cancel`` leaves its submission
            behind, and without a horizon a long-lived shared broker
            would grow forever (and external workers would burn compute
            on sweeps nobody is waiting for).  Live submissions never
            come close: submitters poll every tick and workers heartbeat
            every quarter lease.  The default matches the file queue's
            deliberately paranoid one-week orphan horizon.
        time_fn: monotonic clock, injectable so lease-expiry tests need
            no real sleeping.
        store: optional :class:`~repro.experiment.broker_store.BrokerStore`
            — every state transition is journaled through it and the
            persisted state is recovered (with lease deadlines
            re-anchored against ``time_fn``'s axis) before the queue
            serves its first request.  ``None`` keeps the queue
            in-memory.
    """

    #: Default ``ttl_s`` — the file queue's ``_STALE_RESULT_S`` horizon.
    DEFAULT_TTL_S = 7 * 24 * 3600.0

    def __init__(
        self,
        lease_s: float | None = None,
        max_attempts: int | None = None,
        ttl_s: float | None = None,
        time_fn: Callable[[], float] = time.monotonic,
        store: BrokerStore | None = None,
    ) -> None:
        self._lease_s = lease_s if lease_s is not None else default_lease_s()
        self._max_attempts = (
            max_attempts if max_attempts is not None else default_max_attempts()
        )
        self._ttl_s = ttl_s if ttl_s is not None else self.DEFAULT_TTL_S
        self._now = time_fn
        self._lock = threading.Lock()
        self._buckets: dict[str, _Bucket] = {}
        self._keys: list[str] = []  # sorted bucket keys
        self._store = store
        if store is not None:
            now = self._now()
            state, records = store.recover()
            if state is not None:
                self._load_state(state, now)
            for record in records:
                self._replay(record, now)
            # Compact at boot: the recovered state becomes the snapshot,
            # replayed generations are retired, and a fresh journal
            # generation is opened for this process's appends.
            store.checkpoint(self._state_dict(now))

    # ----------------------------------------------------------- durability
    def _journal(self, record: Mapping[str, Any]) -> None:
        """Persist one applied transition (lock held, state mutated)."""
        if self._store is None:
            return
        if self._store.append(record):
            self._store.checkpoint(self._state_dict(self._now()))

    def _state_dict(self, now: float) -> dict[str, Any]:
        """Full state with every clock converted to a *duration*.

        Deadlines and touch times are instants on this process's
        monotonic axis — meaningless to the next process — so claims
        persist their remaining lease and buckets their idle age, both
        re-anchored against the new clock at load.
        """
        buckets: dict[str, Any] = {}
        for key in self._keys:
            bucket = self._buckets[key]
            buckets[key] = {
                "pending": [bucket.tasks[tid] for tid in bucket.order],
                "claimed": [
                    [env, max(deadline - now, 0.0), worker]
                    for tid, (env, deadline, worker) in sorted(
                        bucket.claimed.items()
                    )
                ],
                "results": [
                    bucket.results[tid] for tid in sorted(bucket.results)
                ],
                "idle_s": max(now - bucket.touched_at, 0.0),
            }
        return {"buckets": buckets}

    def _load_state(self, state: Mapping[str, Any], now: float) -> None:
        """Rebuild from a snapshot, re-anchoring durations at ``now``."""
        for key, raw in state.get("buckets", {}).items():
            bucket = self._bucket(str(key), now)
            bucket.touched_at = now - float(raw.get("idle_s", 0.0))
            for envelope in raw.get("pending", ()):
                task_id = str(envelope["id"])
                bucket.tasks[task_id] = dict(envelope)
                bisect.insort(bucket.order, task_id)
            for envelope, remaining_s, worker in raw.get("claimed", ()):
                bucket.claimed[str(envelope["id"])] = (
                    dict(envelope),
                    now + max(float(remaining_s), 0.0),
                    str(worker),
                )
            for outcome in raw.get("results", ()):
                bucket.results[str(outcome["id"])] = dict(outcome)

    def _replay(self, record: Mapping[str, Any], now: float) -> None:
        """Re-apply one journaled transition during recovery.

        Claims replay with a *full fresh* lease on the new clock — the
        journal records that a claim happened, not how much lease was
        left when the broker died, and granting the whole lease is the
        conservative re-anchoring: a worker that died with the broker
        costs one extra lease interval, one that survived just keeps
        heartbeating.  Replay is idempotent: a transition whose subject
        is already gone (acked, cancelled, GC'd) is a no-op.
        """
        op = record.get("op")
        if op == "submit":
            self._do_submit(record.get("tasks", ()), now)
        elif op == "claim":
            task_id = str(record.get("id", ""))
            bucket = self._buckets.get(bucket_key(task_id))
            if bucket is not None and task_id in bucket.tasks:
                envelope = bucket.tasks.pop(task_id)
                index = bisect.bisect_left(bucket.order, task_id)
                if index < len(bucket.order) and bucket.order[index] == task_id:
                    bucket.order.pop(index)
                bucket.claimed[task_id] = (
                    envelope,
                    now + self._lease_of(envelope),
                    str(record.get("worker", "")),
                )
                bucket.touched_at = now
        elif op == "result":
            self._do_result(record.get("outcome", {}), now)
        elif op == "ack":
            self._do_ack(record.get("ids", ()), now)
        elif op == "requeue":
            task_id = str(record.get("id", ""))
            bucket = self._buckets.get(bucket_key(task_id))
            if bucket is not None and task_id in bucket.claimed:
                envelope, _, _ = bucket.claimed.pop(task_id)
                envelope["attempts"] = int(record.get("attempts", 0))
                bucket.tasks[task_id] = envelope
                bisect.insort(bucket.order, task_id)
                bucket.touched_at = now
        elif op == "exhaust":
            task_id = str(record.get("id", ""))
            bucket = self._buckets.get(bucket_key(task_id))
            if bucket is not None and task_id in bucket.claimed:
                bucket.claimed.pop(task_id)
                attempts = int(record.get("attempts", 0))
                bucket.results[task_id] = {
                    "id": task_id,
                    "error": exhausted_error(
                        task_id, attempts, int(record.get("budget", attempts))
                    ),
                    "attempts": attempts,
                }
                bucket.touched_at = now
        elif op == "cancel":
            self._do_cancel(record.get("ids", ()))
        elif op == "gc":
            for key in record.get("keys", ()):
                self._drop_bucket(str(key))

    # ------------------------------------------------------------ internals
    def _lease_of(self, envelope: Mapping[str, Any]) -> float:
        return float(envelope.get("lease_s") or self._lease_s)

    def _budget_of(self, envelope: Mapping[str, Any]) -> int:
        return int(envelope.get("max_attempts") or self._max_attempts)

    def _bucket(self, key: str, now: float) -> _Bucket:
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = _Bucket(now)
            self._buckets[key] = bucket
            bisect.insort(self._keys, key)
        return bucket

    def _drop_bucket(self, key: str) -> None:
        if self._buckets.pop(key, None) is not None:
            index = bisect.bisect_left(self._keys, key)
            if index < len(self._keys) and self._keys[index] == key:
                self._keys.pop(index)

    def _drop_if_empty(self, key: str) -> None:
        bucket = self._buckets.get(key)
        if bucket is not None and bucket.empty():
            self._drop_bucket(key)

    def _candidates(self, match: str) -> list[str]:
        """Bucket keys a ``match`` prefix can reach, in sorted order.

        A task matches iff its id starts with ``match``; all of a
        bucket's ids start with its key, so the only reachable buckets
        are those whose key extends the match (``key.startswith``) or
        that the match reaches into (``match.startswith(key)``) — for
        the canonical "submitter polls its own prefix" case this is a
        single bucket, never the whole table.
        """
        if not match:
            return list(self._keys)
        return [
            key
            for key in self._keys
            if key.startswith(match) or match.startswith(key)
        ]

    def _matching_ids(self, ids: Iterable[str], match: str) -> list[str]:
        return sorted(tid for tid in ids if tid.startswith(match))

    def _expire(self, now: float) -> None:
        """Requeue expired claims and GC abandoned buckets (lock held)."""
        for key in list(self._keys):
            bucket = self._buckets[key]
            expired = sorted(
                task_id
                for task_id, (_, deadline, _) in bucket.claimed.items()
                if deadline < now
            )
            for task_id in expired:
                envelope, _, _ = bucket.claimed.pop(task_id)
                bucket.touched_at = now
                attempts = int(envelope.get("attempts", 0)) + 1
                envelope["attempts"] = attempts
                budget = self._budget_of(envelope)
                if attempts >= budget:
                    bucket.results[task_id] = {
                        "id": task_id,
                        "error": exhausted_error(task_id, attempts, budget),
                        "attempts": attempts,
                    }
                    self._journal(
                        {
                            "op": "exhaust",
                            "id": task_id,
                            "attempts": attempts,
                            "budget": budget,
                        }
                    )
                else:
                    bucket.tasks[task_id] = envelope
                    bisect.insort(bucket.order, task_id)
                    self._journal(
                        {"op": "requeue", "id": task_id, "attempts": attempts}
                    )
        # Abandoned-submission GC: a submitter that died without its
        # cancel stops collecting, so nothing refreshes its bucket —
        # once idle past the TTL the whole submission is garbage.
        horizon = now - self._ttl_s
        stale = [
            key for key in self._keys if self._buckets[key].touched_at < horizon
        ]
        for key in stale:
            self._drop_bucket(key)
        if stale:
            self._journal({"op": "gc", "keys": stale})

    # ------------------------------------------------------------- protocol
    def _do_submit(self, tasks: Iterable[Mapping[str, Any]], now: float) -> int:
        count = 0
        for envelope in tasks:
            count += 1
            task_id = str(envelope["id"])
            bucket = self._bucket(bucket_key(task_id), now)
            bucket.touched_at = now
            if (
                task_id in bucket.tasks
                or task_id in bucket.claimed
                or task_id in bucket.results
            ):
                continue  # resubmission of a known task is a no-op
            bucket.tasks[task_id] = dict(envelope)
            bisect.insort(bucket.order, task_id)
        return count

    def submit(self, tasks: list[Mapping[str, Any]]) -> int:
        now = self._now()
        with self._lock:
            accepted = self._do_submit(tasks, now)
            if accepted:
                self._journal(
                    {"op": "submit", "tasks": [dict(t) for t in tasks]}
                )
            return accepted

    def claim(self, match: str = "", worker: str = "") -> dict[str, Any] | None:
        """Pop the first pending task matching ``match`` and lease it.

        Bucketing makes the scan O(own submission): only the buckets the
        prefix can reach are visited, and within a bucket the sorted
        pending list is bisected straight to the prefix — a drainer
        polling for its own submission never pays for other submissions'
        backlogs.
        """
        now = self._now()
        with self._lock:
            self._expire(now)
            for key in self._candidates(match):
                bucket = self._buckets[key]
                index = bisect.bisect_left(bucket.order, match) if match else 0
                if index >= len(bucket.order):
                    continue
                task_id = bucket.order[index]
                if match and not task_id.startswith(match):
                    continue  # sorted: past the prefix range in this bucket
                bucket.order.pop(index)
                envelope = bucket.tasks.pop(task_id)
                bucket.claimed[task_id] = (
                    envelope,
                    now + self._lease_of(envelope),
                    worker,
                )
                bucket.touched_at = now
                self._journal({"op": "claim", "id": task_id, "worker": worker})
                return dict(envelope)
            return None

    def heartbeat(self, task_id: str) -> bool:
        """Extend a live claim's lease; False if the claim is gone.

        Deliberately not journaled: heartbeats only move deadlines,
        which recovery re-anchors from scratch anyway, and a fleet beats
        every quarter lease — journaling that would drown the journal in
        records that carry no recoverable information.
        """
        now = self._now()
        with self._lock:
            self._expire(now)
            bucket = self._buckets.get(bucket_key(task_id))
            entry = bucket.claimed.get(task_id) if bucket is not None else None
            if bucket is None or entry is None:
                return False
            envelope, _, worker = entry
            bucket.claimed[task_id] = (
                envelope,
                now + self._lease_of(envelope),
                worker,
            )
            bucket.touched_at = now
            return True

    def _do_result(self, outcome: Mapping[str, Any], now: float) -> bool:
        task_id = str(outcome.get("id", ""))
        bucket = self._buckets.get(bucket_key(task_id))
        if bucket is None:
            return False
        known = (
            task_id in bucket.tasks
            or task_id in bucket.claimed
            or task_id in bucket.results
        )
        if not known:
            return False
        bucket.touched_at = now
        entry = bucket.claimed.pop(task_id, None)
        pending = bucket.tasks.pop(task_id, None)
        if pending is not None:
            index = bisect.bisect_left(bucket.order, task_id)
            if index < len(bucket.order) and bucket.order[index] == task_id:
                bucket.order.pop(index)
        envelope = entry[0] if entry else pending
        stored = dict(outcome)
        if envelope is not None:
            stored.setdefault("attempts", int(envelope.get("attempts", 0)))
        bucket.results[task_id] = stored
        return True

    def result(self, outcome: Mapping[str, Any]) -> bool:
        """Accept an outcome envelope; False if the task is unknown.

        A result is accepted from a worker whose lease already expired —
        its task may have been requeued (or re-claimed by someone else),
        but by the engine's determinism a late result is byte-identical
        to the eventual one, so it completes the task immediately and
        the duplicate execution is cancelled where possible.  Outcomes
        for ids the broker has never seen (a cancelled submission) are
        refused so they cannot accumulate forever.
        """
        now = self._now()
        with self._lock:
            accepted = self._do_result(outcome, now)
            if accepted:
                self._journal({"op": "result", "outcome": dict(outcome)})
            return accepted

    def _do_ack(self, ids: Iterable[str], now: float) -> list[str]:
        dropped = []
        for task_id in ids:
            task_id = str(task_id)
            key = bucket_key(task_id)
            bucket = self._buckets.get(key)
            if bucket is None:
                continue
            if bucket.results.pop(task_id, None) is not None:
                dropped.append(task_id)
                bucket.touched_at = now
            self._drop_if_empty(key)
        return dropped

    def collect(
        self,
        ids: list[str] | None = None,
        match: str | None = None,
        ack: list[str] | None = None,
    ) -> dict[str, Any]:
        """Hand over finished results, plus the live pending/claimed
        counts the submitter's auto-scaler and liveness logic need —
        one round trip per poll tick.

        Address the submission either by explicit ``ids`` or by a
        ``match`` prefix; prefix collection keeps each poll tick's
        request O(newly finished), not O(submission size), and the
        bucket table keeps the server-side scan O(own submission) — a
        busy shared broker never walks every tenant's state to answer
        one tenant's poll.

        Handover is **ack-based, never speculative**: results stay in
        the tables (and are re-sent) until a later request lists them in
        ``ack``, which the submitter only does after safely receiving
        the previous response.  A response lost on the wire therefore
        loses nothing — the exact failure class the lease machinery
        exists to kill.  The final :meth:`cancel` purges whatever was
        never acked, so nothing accumulates past a submission's
        lifetime (and the TTL GC covers submitters that died before
        even that)."""
        now = self._now()
        with self._lock:
            self._expire(now)
            acked = self._do_ack(ack or (), now)
            if acked:
                self._journal({"op": "ack", "ids": acked})
            results: list[dict[str, Any]] = []
            pending = claimed = 0
            if match is not None:
                for key in self._candidates(match):
                    bucket = self._buckets[key]
                    # The asker is a live submitter: its submission
                    # stays fresh for the abandoned-submission GC.
                    bucket.touched_at = now
                    if key.startswith(match):
                        # Whole bucket matches: counts are O(1), results
                        # are O(finished) — the steady-state poll tick.
                        wanted = sorted(bucket.results)
                        pending += len(bucket.order)
                        claimed += len(bucket.claimed)
                    else:
                        wanted = self._matching_ids(bucket.results, match)
                        index = bisect.bisect_left(bucket.order, match)
                        while (
                            index < len(bucket.order)
                            and bucket.order[index].startswith(match)
                        ):
                            pending += 1
                            index += 1
                        claimed += sum(
                            1 for t in bucket.claimed if t.startswith(match)
                        )
                    results.extend(dict(bucket.results[t]) for t in wanted)
            else:
                wanted_ids = [str(task_id) for task_id in ids or []]
                touched: set[str] = set()
                for task_id in wanted_ids:
                    key = bucket_key(task_id)
                    bucket = self._buckets.get(key)
                    if bucket is None:
                        continue
                    if key not in touched:
                        touched.add(key)
                        bucket.touched_at = now
                    if task_id in bucket.results:
                        results.append(dict(bucket.results[task_id]))
                    pending += task_id in bucket.tasks
                    claimed += task_id in bucket.claimed
            return {
                "results": results,
                "pending": pending,
                "claimed": claimed,
            }

    def _do_cancel(self, ids: Iterable[str]) -> int:
        cancelled = 0
        for task_id in ids:
            task_id = str(task_id)
            key = bucket_key(task_id)
            bucket = self._buckets.get(key)
            if bucket is None:
                continue
            if bucket.tasks.pop(task_id, None) is not None:
                cancelled += 1
                index = bisect.bisect_left(bucket.order, task_id)
                if index < len(bucket.order) and bucket.order[index] == task_id:
                    bucket.order.pop(index)
            cancelled += bucket.claimed.pop(task_id, None) is not None
            bucket.results.pop(task_id, None)
            self._drop_if_empty(key)
        return cancelled

    def cancel(self, ids: list[str]) -> int:
        """Withdraw a submission: nobody is waiting for these tasks."""
        with self._lock:
            cancelled = self._do_cancel(ids)
            self._journal({"op": "cancel", "ids": [str(t) for t in ids]})
            return cancelled

    def stats(self) -> dict[str, Any]:
        now = self._now()
        with self._lock:
            self._expire(now)
            buckets = [self._buckets[key] for key in self._keys]
            return {
                "pending": sum(len(b.tasks) for b in buckets),
                "claimed": sum(len(b.claimed) for b in buckets),
                "results": sum(len(b.results) for b in buckets),
                "buckets": len(buckets),
                "durable": self._store is not None,
                "lease_s": self._lease_s,
                "max_attempts": self._max_attempts,
            }


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON shim over :class:`BrokerQueue`; no state of its own.

    With a ``token`` configured (``REPRO_BROKER_TOKEN``), every request
    must carry ``Authorization: Bearer <token>`` — a constant-time
    comparison, 401 on mismatch — before it reaches the queue.
    """

    queue: BrokerQueue  # set by BrokerServer
    token: str | None = None  # set by BrokerServer
    protocol_version = "HTTP/1.1"
    # Keep-alive + Nagle is pathological for this protocol: headers and
    # body go out as separate small segments, and Nagle holds the second
    # for the peer's delayed ACK — ~40 ms added to every round trip.
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # a fleet heartbeating every lease/4 would drown stderr

    def _reply(self, status: int, payload: Mapping[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        return json.loads(raw.decode("utf-8"))

    def _authorized(self) -> bool:
        if not self.token:
            return True
        supplied = self.headers.get("Authorization") or ""
        expected = f"Bearer {self.token}"
        return hmac.compare_digest(
            supplied.encode("utf-8"), expected.encode("utf-8")
        )

    def _refuse_unauthorized(self) -> None:
        self._reply(
            401,
            {
                "error": "missing or invalid broker token; send "
                f"'Authorization: Bearer <token>' (set {BROKER_TOKEN_ENV_VAR} "
                "in the client environment)"
            },
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if not self._authorized():
            self._refuse_unauthorized()
            return
        if self.path.split("?", 1)[0] == "/stats":
            self._reply(200, self.queue.stats())
        else:
            self._reply(404, {"error": f"unknown endpoint {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            body = self._body()
        except (ValueError, UnicodeDecodeError) as exc:
            self._reply(400, {"error": f"bad JSON body: {exc}"})
            return
        if not self._authorized():
            # Body read first so the keep-alive stream stays in sync.
            self._refuse_unauthorized()
            return
        route = self.path.split("?", 1)[0]
        try:
            if route == "/submit":
                self._reply(
                    200, {"accepted": self.queue.submit(body.get("tasks", []))}
                )
            elif route == "/claim":
                task = self.queue.claim(
                    match=str(body.get("match", "")),
                    worker=str(body.get("worker", "")),
                )
                self._reply(200, {"task": task})
            elif route == "/heartbeat":
                self._reply(200, {"ok": self.queue.heartbeat(str(body.get("id")))})
            elif route == "/result":
                self._reply(200, {"ok": self.queue.result(body)})
            elif route == "/collect":
                self._reply(
                    200,
                    self.queue.collect(
                        ids=body.get("ids"),
                        match=body.get("match"),
                        ack=list(body.get("ack", [])),
                    ),
                )
            elif route == "/cancel":
                self._reply(
                    200, {"cancelled": self.queue.cancel(list(body.get("ids", [])))}
                )
            else:
                self._reply(404, {"error": f"unknown endpoint {route!r}"})
        except Exception as exc:  # a broken request must not kill the broker
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})


class BrokerServer(ThreadingHTTPServer):
    """One listening socket bound to one :class:`BrokerQueue`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        queue: BrokerQueue,
        token: str | None = None,
    ) -> None:
        handler = type(
            "BoundHandler", (_Handler,), {"queue": queue, "token": token}
        )
        super().__init__(address, handler)
        self.queue = queue
        self.token = token

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        display = "127.0.0.1" if host in ("0.0.0.0", "::") else host
        return f"http://{display}:{port}"


def start_broker(
    host: str = "127.0.0.1",
    port: int = 0,
    lease_s: float | None = None,
    max_attempts: int | None = None,
    ttl_s: float | None = None,
    token: str | None = None,
    store_dir: str | None = None,
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
    fsync: bool = False,
) -> BrokerServer:
    """Start a broker on a background thread; returns the live server.

    ``port=0`` picks a free port — read the result's ``.url``.  Shut it
    down with ``server.shutdown(); server.server_close()``.  ``token``
    defaults to ``REPRO_BROKER_TOKEN`` (``None`` with the variable
    unset: open broker); ``store_dir`` makes the queue durable.  This is
    what :class:`~repro.experiment.backends.broker_client.BrokerBackend`
    uses for its private per-run broker, and what tests use to get a
    real HTTP broker without a subprocess.
    """
    store = (
        BrokerStore(store_dir, snapshot_every=snapshot_every, fsync=fsync)
        if store_dir
        else None
    )
    server = BrokerServer(
        (host, port),
        BrokerQueue(
            lease_s=lease_s, max_attempts=max_attempts, ttl_s=ttl_s, store=store
        ),
        token=token if token is not None else default_broker_token(),
    )
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        name="repro-broker",
        daemon=True,
    )
    thread.start()
    return server


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiment.broker",
        description="Serve the repro task/claim/result protocol over HTTP "
        "(see repro.experiment.backends.BrokerBackend).",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (0.0.0.0 to accept a remote fleet; set "
        f"{BROKER_TOKEN_ENV_VAR} before binding beyond a trusted network)",
    )
    parser.add_argument("--port", type=int, default=8123, help="bind port")
    parser.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="journal + snapshot directory; with it the broker is durable — "
        "a restart on the same directory recovers every pending task, live "
        "claim and uncollected result (default: in-memory only)",
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=DEFAULT_SNAPSHOT_EVERY,
        help="journal records between snapshot checkpoints "
        f"(default: {DEFAULT_SNAPSHOT_EVERY})",
    )
    parser.add_argument(
        "--fsync",
        action="store_true",
        help="fsync every journal append (host-crash durability; the "
        "default flush already survives any broker process death)",
    )
    parser.add_argument(
        "--lease-s",
        type=float,
        default=None,
        help="fallback claim lease for tasks that carry none "
        "(default: REPRO_QUEUE_LEASE_S or 30)",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        help="fallback per-task retry budget "
        "(default: REPRO_QUEUE_MAX_ATTEMPTS or 3)",
    )
    parser.add_argument(
        "--ttl-s",
        type=float,
        default=None,
        help="drop submissions idle this long — abandoned-submitter "
        "garbage collection (default: one week)",
    )
    args = parser.parse_args(argv)
    store = (
        BrokerStore(
            args.store_dir, snapshot_every=args.snapshot_every, fsync=args.fsync
        )
        if args.store_dir
        else None
    )
    token = default_broker_token()
    server = BrokerServer(
        (args.host, args.port),
        BrokerQueue(
            lease_s=args.lease_s,
            max_attempts=args.max_attempts,
            ttl_s=args.ttl_s,
            store=store,
        ),
        token=token,
    )
    durability = f"durable store {args.store_dir}" if args.store_dir else "in-memory"
    auth = "token auth on" if token else "unauthenticated"
    print(
        f"repro broker listening on {server.url} ({durability}, {auth})",
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.server_close()
        if store is not None:
            store.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
