"""Multi-seed / multi-scenario batch execution.

:class:`BatchRunner` sweeps a list of :class:`ExperimentSpec`s — most
commonly one base spec across seeds via :func:`seed_sweep` — and runs
them either sequentially or across worker processes with
``concurrent.futures.ProcessPoolExecutor``.

Workers receive a spec as a plain dict and return the experiment result
as a plain dict, so nothing unpicklable ever crosses the process
boundary; the parent reconstructs typed :class:`ExperimentResult`s.  The
sequential path round-trips through exactly the same dict encoding,
which is what makes parallel and sequential sweeps bit-identical (the
simulator's RNG streams are derived from the spec seeds with stable
CRC32 spawn keys — see :func:`repro.engine.rng_spawn_key`).

With a :class:`repro.experiment.cache.ResultCache` attached (or
``REPRO_CACHE_DIR`` exported), the parent looks every spec up *before*
fanning out: a fully warm sweep spawns zero worker processes, misses
still run in parallel, and their payloads are written back on
completion — so a repeated sweep is bit-identical to the cold run while
costing only JSON reads.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.analysis.reporting import ExperimentReport, batch_summary_table
from repro.experiment.runner import Experiment, ExperimentResult
from repro.experiment.specs import ExperimentSpec

if TYPE_CHECKING:
    from repro.experiment.cache import ResultCache


def seed_sweep(
    base: ExperimentSpec,
    seeds: Iterable[int],
    vary_topology: bool = True,
) -> list[ExperimentSpec]:
    """The same experiment across seeds.

    With ``vary_topology`` each seed re-draws topology and traffic (a new
    configuration per seed); without it the topology seed is kept and
    only the traffic ``run_seed`` varies — the repeated-run stability
    setup of Figure 14(d).
    """
    if vary_topology:
        return [base.with_seed(int(seed)) for seed in seeds]
    return [
        base.with_seed(base.scenario.seed, run_seed=int(seed)) for seed in seeds
    ]


def _run_spec_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Process-pool entry point: spec dict in, result dict out.

    Caching is disabled here even when ``REPRO_CACHE_DIR`` is set: the
    parent already resolved lookups before fanning out and owns every
    writeback, so workers must not contend for the cache index.
    """
    spec = ExperimentSpec.from_dict(payload)
    return Experiment(spec, keep_decisions=False).run(cache=False).to_dict()


@dataclass
class BatchResult:
    """Results of a batch sweep, in submission order.

    ``cache_hits`` / ``cache_misses`` count how many cells were served
    from the attached :class:`ResultCache` versus simulated (both stay 0
    when no cache was in play).
    """

    results: list[ExperimentResult]
    wall_time_s: float = 0.0
    parallel: bool = False
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Hits over sweep size, 0.0 for uncached sweeps."""
        return self.cache_hits / len(self.results) if self.results else 0.0

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def to_dicts(self, include_runtime: bool = True) -> list[dict[str, Any]]:
        return [r.to_dict(include_runtime=include_runtime) for r in self.results]

    # ------------------------------------------------------------ aggregation
    def aggregate_throughputs_bps(self) -> list[float]:
        return [r.aggregate_bps for r in self.results]

    def jain_indices(self) -> list[float]:
        return [r.jain_index for r in self.results]

    def report(self, title: str = "batch sweep") -> ExperimentReport:
        """Aggregate the sweep into a :class:`repro.analysis` report."""
        mode = "process-parallel" if self.parallel else "sequential"
        if self.cache_hits:
            mode += f", {self.cache_hits}/{len(self.results)} from cache"
        report = ExperimentReport(
            title, f"{len(self.results)} experiment(s), {mode}"
        )
        report.add(batch_summary_table(self.results))
        return report


@dataclass
class BatchRunner:
    """Run many experiments, optionally across processes.

    Args:
        experiments: the specs to run (build with :func:`seed_sweep` for
            the common multi-seed case).
        parallel: use a process pool (results are bit-identical to a
            sequential run either way).
        max_workers: process count (defaults to CPU count, capped at the
            number of experiments left after cache hits).
        cache: result cache, resolved by
            :func:`repro.experiment.cache.resolve_cache` — pass a
            :class:`ResultCache`, ``True`` for the default cache,
            ``False`` to force caching off; the default ``None`` uses
            the default cache iff ``REPRO_CACHE_DIR`` is set.
    """

    experiments: Sequence[ExperimentSpec]
    parallel: bool = True
    max_workers: int | None = None
    cache: "ResultCache | None | bool" = None
    _payloads: list[dict[str, Any]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.experiments:
            raise ValueError("at least one experiment is required")
        self._payloads = [spec.to_dict() for spec in self.experiments]

    def run(self) -> BatchResult:
        import time

        from repro.experiment.cache import resolve_cache

        wall_start = time.perf_counter()
        cache = resolve_cache(self.cache)

        # Cache lookups happen here in the parent, before any fan-out:
        # a fully warm sweep never pays process-pool startup.
        raw: list[dict[str, Any] | None] = [None] * len(self._payloads)
        if cache is not None:
            for index, payload in enumerate(self._payloads):
                raw[index] = cache.get_payload(payload)
        misses = [index for index, data in enumerate(raw) if data is None]

        workers = self.max_workers or min(
            max(len(misses), 1), os.cpu_count() or 1
        )
        use_pool = self.parallel and workers > 1 and len(misses) > 1
        miss_payloads = [self._payloads[index] for index in misses]
        if use_pool:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                fresh = list(pool.map(_run_spec_payload, miss_payloads))
        else:
            fresh = [_run_spec_payload(payload) for payload in miss_payloads]
        # Writebacks defer the index flush to a single write after the
        # loop — one put per miss with a full index rewrite each would
        # cost O(misses x index size).
        for index, data in zip(misses, fresh):
            raw[index] = data
            if cache is not None:
                cache.put_payload(
                    self._payloads[index],
                    data,
                    label=self.experiments[index].label,
                    flush=False,
                )
        if cache is not None and misses:
            cache.flush()

        results = [ExperimentResult.from_dict(data) for data in raw]
        cached = cache is not None
        return BatchResult(
            results=results,
            wall_time_s=time.perf_counter() - wall_start,
            parallel=use_pool,
            cache_hits=len(self._payloads) - len(misses) if cached else 0,
            cache_misses=len(misses) if cached else 0,
        )
