"""Multi-seed / multi-scenario batch execution.

:class:`BatchRunner` sweeps a list of :class:`ExperimentSpec`s — most
commonly one base spec across seeds via :func:`seed_sweep` — and runs
them either sequentially or across worker processes with
``concurrent.futures.ProcessPoolExecutor``.

Workers receive a spec as a plain dict and return the experiment result
as a plain dict, so nothing unpicklable ever crosses the process
boundary; the parent reconstructs typed :class:`ExperimentResult`s.  The
sequential path round-trips through exactly the same dict encoding,
which is what makes parallel and sequential sweeps bit-identical (the
simulator's RNG streams are derived from the spec seeds with stable
CRC32 spawn keys — see :func:`repro.engine.rng_spawn_key`).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.analysis.reporting import ExperimentReport, batch_summary_table
from repro.experiment.runner import Experiment, ExperimentResult
from repro.experiment.specs import ExperimentSpec


def seed_sweep(
    base: ExperimentSpec,
    seeds: Iterable[int],
    vary_topology: bool = True,
) -> list[ExperimentSpec]:
    """The same experiment across seeds.

    With ``vary_topology`` each seed re-draws topology and traffic (a new
    configuration per seed); without it the topology seed is kept and
    only the traffic ``run_seed`` varies — the repeated-run stability
    setup of Figure 14(d).
    """
    if vary_topology:
        return [base.with_seed(int(seed)) for seed in seeds]
    return [
        base.with_seed(base.scenario.seed, run_seed=int(seed)) for seed in seeds
    ]


def _run_spec_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Process-pool entry point: spec dict in, result dict out."""
    spec = ExperimentSpec.from_dict(payload)
    return Experiment(spec, keep_decisions=False).run().to_dict()


@dataclass
class BatchResult:
    """Results of a batch sweep, in submission order."""

    results: list[ExperimentResult]
    wall_time_s: float = 0.0
    parallel: bool = False

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def to_dicts(self, include_runtime: bool = True) -> list[dict[str, Any]]:
        return [r.to_dict(include_runtime=include_runtime) for r in self.results]

    # ------------------------------------------------------------ aggregation
    def aggregate_throughputs_bps(self) -> list[float]:
        return [r.aggregate_bps for r in self.results]

    def jain_indices(self) -> list[float]:
        return [r.jain_index for r in self.results]

    def report(self, title: str = "batch sweep") -> ExperimentReport:
        """Aggregate the sweep into a :class:`repro.analysis` report."""
        report = ExperimentReport(
            title,
            f"{len(self.results)} experiment(s), "
            + ("process-parallel" if self.parallel else "sequential"),
        )
        report.add(batch_summary_table(self.results))
        return report


@dataclass
class BatchRunner:
    """Run many experiments, optionally across processes.

    Args:
        experiments: the specs to run (build with :func:`seed_sweep` for
            the common multi-seed case).
        parallel: use a process pool (results are bit-identical to a
            sequential run either way).
        max_workers: process count (defaults to CPU count, capped at the
            number of experiments).
    """

    experiments: Sequence[ExperimentSpec]
    parallel: bool = True
    max_workers: int | None = None
    _payloads: list[dict[str, Any]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.experiments:
            raise ValueError("at least one experiment is required")
        self._payloads = [spec.to_dict() for spec in self.experiments]

    def run(self) -> BatchResult:
        import time

        wall_start = time.perf_counter()
        workers = self.max_workers or min(len(self._payloads), os.cpu_count() or 1)
        use_pool = self.parallel and workers > 1 and len(self._payloads) > 1
        if use_pool:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                raw = list(pool.map(_run_spec_payload, self._payloads))
        else:
            raw = [_run_spec_payload(payload) for payload in self._payloads]
        results = [ExperimentResult.from_dict(data) for data in raw]
        return BatchResult(
            results=results,
            wall_time_s=time.perf_counter() - wall_start,
            parallel=use_pool,
        )
