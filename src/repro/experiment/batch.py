"""Multi-seed / multi-scenario batch execution.

:class:`BatchRunner` sweeps a list of :class:`ExperimentSpec`s — most
commonly one base spec across seeds via :func:`seed_sweep` — in three
stages:

1. the :class:`repro.experiment.planner.SweepPlanner` deduplicates
   identical specs, resolves :class:`ResultCache` hits up front, and
   orders the remaining unique cells slowest-first — by the cache's
   *measured* per-digest wall clocks where the store has run a spec
   before, by the static cost estimate otherwise;
2. a pluggable :class:`repro.experiment.backends.ExecutionBackend`
   executes those cells — inline (:class:`SerialBackend`), across local
   processes (:class:`ProcessPoolBackend`), through a shared directory
   any worker host can drain (:class:`WorkQueueBackend`), or through an
   HTTP broker so submitter and workers need only a URL in common
   (:class:`BrokerBackend`).  The queue-shaped backends are
   self-healing: claims are heartbeat leases with a per-task retry
   budget, so a worker killed mid-task costs one lease interval, not
   the sweep;
3. results are scattered back to submission order and written back to
   the cache (once per unique spec).

Every backend speaks the same dict-in/dict-out protocol
(:func:`repro.experiment.backends.run_spec_payload`): only plain dicts
cross an execution boundary, and the simulator's RNG streams are derived
from the spec seeds with stable CRC32 spawn keys (see
:func:`repro.engine.rng_spawn_key`) — which is why serial, process-pool
and work-queue sweeps of the same specs return byte-equal payloads, as
the cross-backend determinism suite asserts.

With a :class:`repro.experiment.cache.ResultCache` attached (or
``REPRO_CACHE_DIR`` exported), a fully warm sweep dispatches zero cells;
misses are simulated by the backend and written back on completion — so
a repeated sweep is bit-identical to the cold run while costing only
JSON reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.analysis.reporting import ExperimentReport, batch_summary_table
from repro.experiment.backends import BackendError, run_spec_payload
from repro.experiment.planner import PlannerStats
from repro.experiment.runner import ExperimentResult
from repro.experiment.specs import ExperimentSpec

if TYPE_CHECKING:
    from repro.experiment.backends import ExecutionBackend, QueueStats
    from repro.experiment.cache import ResultCache

#: Backward-compatible alias: the dict-in/dict-out worker protocol lived
#: here before the backend abstraction was factored out.
_run_spec_payload = run_spec_payload


def seed_sweep(
    base: ExperimentSpec,
    seeds: Iterable[int],
    vary_topology: bool = True,
) -> list[ExperimentSpec]:
    """The same experiment across seeds.

    With ``vary_topology`` each seed re-draws topology and traffic (a new
    configuration per seed); without it the topology seed is kept and
    only the traffic ``run_seed`` varies — the repeated-run stability
    setup of Figure 14(d).
    """
    if vary_topology:
        return [base.with_seed(int(seed)) for seed in seeds]
    return [
        base.with_seed(base.scenario.seed, run_seed=int(seed)) for seed in seeds
    ]


@dataclass
class BatchResult:
    """Results of a batch sweep, in submission order.

    ``cache_hits`` / ``cache_misses`` count how many cells were served
    from the attached :class:`ResultCache` versus simulated or shared
    with a duplicate cell (both stay 0 when no cache was in play).
    ``backend`` names the execution backend that ran the misses, and
    ``planner`` carries the full :class:`PlannerStats` of the submission
    (dedup, cache resolution, estimated cost).  ``queue`` carries the
    :class:`~repro.experiment.backends.QueueStats` of queue-shaped
    backends — drainers spawned, leases requeued after worker deaths,
    retry budgets exhausted — and stays ``None`` for in-process ones.
    """

    results: list[ExperimentResult]
    wall_time_s: float = 0.0
    parallel: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    backend: str = "serial"
    planner: PlannerStats = field(default_factory=PlannerStats)
    queue: "QueueStats | None" = None

    @property
    def cache_hit_rate(self) -> float:
        """Hits over sweep size, 0.0 for uncached or empty sweeps."""
        return self.cache_hits / len(self.results) if self.results else 0.0

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def to_dicts(self, include_runtime: bool = True) -> list[dict[str, Any]]:
        return [r.to_dict(include_runtime=include_runtime) for r in self.results]

    # ------------------------------------------------------------ aggregation
    def aggregate_throughputs_bps(self) -> list[float]:
        return [r.aggregate_bps for r in self.results]

    def jain_indices(self) -> list[float]:
        return [r.jain_index for r in self.results]

    def report(self, title: str = "batch sweep") -> ExperimentReport:
        """Aggregate the sweep into a :class:`repro.analysis` report."""
        # Always name the backend: an external-drain work queue reports
        # parallel=False (the submitter spawned no workers itself) but is
        # anything but sequential, and provenance belongs in the record.
        mode = "sequential" if self.backend == "serial" else f"{self.backend} backend"
        if self.parallel:
            mode += " (parallel)"
        if self.cache_hits:
            mode += f", {self.cache_hits}/{len(self.results)} from cache"
        if self.planner.duplicates:
            mode += f", {self.planner.duplicates} deduplicated"
        if self.queue is not None and self.queue.requeued:
            # Worker deaths the lease machinery survived belong in the
            # record: the results are byte-identical either way, but the
            # wall clock is not.
            mode += f", {self.queue.requeued} requeued after worker loss"
        report = ExperimentReport(
            title, f"{len(self.results)} experiment(s), {mode}"
        )
        report.add(batch_summary_table(self.results))
        return report


@dataclass
class BatchRunner:
    """Run many experiments through a planned, pluggable backend.

    Args:
        experiments: the specs to run (build with :func:`seed_sweep` for
            the common multi-seed case).
        parallel: legacy toggle, honored when no ``backend`` is given —
            ``False`` forces the serial backend (and wins over
            ``REPRO_BATCH_BACKEND``; explicit code intent beats the
            environment), ``True`` (the default) uses the environment's
            backend or the process pool.
        max_workers: worker count for backends that fan out (defaults to
            the CPU count, capped at the number of cells to execute).
        cache: result cache, resolved by
            :func:`repro.experiment.cache.resolve_cache` — pass a
            :class:`ResultCache`, ``True`` for the default cache,
            ``False`` to force caching off; the default ``None`` uses
            the default cache iff ``REPRO_CACHE_DIR`` is set.
        backend: an :class:`ExecutionBackend` instance, a backend name
            (``"serial"``, ``"process"``, ``"work_queue"``,
            ``"broker"``), or ``None`` to resolve from
            ``parallel``/``REPRO_BATCH_BACKEND`` (see
            :func:`repro.experiment.backends.resolve_backend`).
    """

    experiments: Sequence[ExperimentSpec]
    parallel: bool = True
    max_workers: int | None = None
    cache: "ResultCache | None | bool" = None
    backend: "ExecutionBackend | str | None" = None
    _payloads: list[dict[str, Any]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.experiments:
            raise ValueError("at least one experiment is required")
        self._payloads = [spec.to_dict() for spec in self.experiments]

    def run(self) -> BatchResult:
        import time

        from repro.experiment.backends import resolve_backend
        from repro.experiment.cache import resolve_cache
        from repro.experiment.planner import SweepPlanner

        wall_start = time.perf_counter()
        cache = resolve_cache(self.cache)
        backend = resolve_backend(
            self.backend, parallel=self.parallel, max_workers=self.max_workers
        )

        # Plan in the submitting process, before any fan-out: duplicates
        # collapse to one job each, cache hits never reach the backend
        # (a fully warm sweep dispatches nothing), and the remaining
        # jobs are ordered slowest-first.
        plan = SweepPlanner(cache).plan(
            self._payloads, labels=[spec.label for spec in self.experiments]
        )
        if plan.jobs:
            fresh = backend.run([job.payload for job in plan.jobs])
            if len(fresh) != len(plan.jobs):
                # Guard the public ExecutionBackend contract here, where
                # the misbehaving backend can still be named — a silent
                # zip truncation would crash far from the cause.
                raise BackendError(
                    f"backend {backend.name!r} returned {len(fresh)} result(s) "
                    f"for {len(plan.jobs)} dispatched job(s)"
                )
            for job, data in zip(plan.jobs, fresh):
                plan.scatter(job, data)
            if cache is not None:
                # One writeback per unique executed spec, one index
                # flush for the whole sweep; the planner's digests are
                # reused so nothing is hashed twice.
                cache.put_payloads(
                    (
                        (job.payload, data, job.label)
                        for job, data in zip(plan.jobs, fresh)
                    ),
                    digests=(job.digest for job in plan.jobs),
                )

        results = [ExperimentResult.from_dict(data) for data in plan.results]
        cached = cache is not None
        return BatchResult(
            results=results,
            wall_time_s=time.perf_counter() - wall_start,
            parallel=backend.workers_for(len(plan.jobs)) > 1,
            cache_hits=plan.stats.cache_hits if cached else 0,
            cache_misses=plan.stats.cache_misses if cached else 0,
            backend=backend.name,
            planner=plan.stats,
            # Only when this run actually dispatched: a fully-cached
            # sweep never calls backend.run(), and a reused backend
            # instance would otherwise leak the *previous* run's stats.
            queue=getattr(backend, "last_run_stats", None) if plan.jobs else None,
        )
