"""Named scenario registry.

A *scenario builder* materializes a :class:`ScenarioSpec` into a live
:class:`MeshNetwork` plus flow handles.  Builders register under a name
with :func:`register_scenario`, which makes every scenario discoverable
(``scenario_names()``), describable (``scenario_description()``) and
runnable by name through :class:`repro.experiment.runner.Experiment`.

The built-ins are thin presets over the composable generator layer of
:mod:`repro.sim.generators` (topology generators x workload generators
x radio profiles):

* ``generated`` — the fully declarative composition: any registered
  topology generator (grid, ring, random-disk, binary-tree,
  parking-lot, ...), flows from a registered workload generator (or
  explicit :class:`FlowSpec`\\ s), link rates assigned per ``rate_mode``,
  and an optional named radio profile;
* ``chain`` — an N-node chain with explicit flows (defaults to one UDP
  flow over the whole chain);
* ``testbed`` — the synthetic 18-node testbed with explicit flows;
* ``random_multiflow`` — ETT-routed random multi-flow configurations of
  Sections 4.5 / 6.3 (kept on its legacy single-RNG draw discipline so
  historical results replay bit-identically);
* ``starvation`` — the two-flow upstream TCP gateway scenario of
  Figure 13: a three-node chain under the ``hidden_terminal`` radio
  profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Protocol

from repro.experiment.specs import FlowSpec, ScenarioSpec, SpecError, TopologySpec
from repro.sim.generators import GeneratedFlow
from repro.sim.network import MeshNetwork, TcpFlowHandle, UdpFlowHandle

FlowHandle = UdpFlowHandle | TcpFlowHandle


@dataclass
class BuiltScenario:
    """A materialized scenario: the live network plus its flows.

    ``meta`` carries builder-specific annotations (flow roles, routed
    paths, ...) onto the experiment result; keep its values plain
    JSON-safe data so results serialize losslessly.
    """

    name: str
    spec: ScenarioSpec
    network: MeshNetwork
    flows: list[FlowHandle]
    meta: dict[str, object] = field(default_factory=dict)

    @property
    def links(self) -> list[tuple[int, int]]:
        ordered: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for flow in self.flows:
            for link in flow.links:
                if link not in seen:
                    seen.add(link)
                    ordered.append(link)
        return ordered


class ScenarioBuilder(Protocol):
    def __call__(self, spec: ScenarioSpec) -> BuiltScenario: ...


@dataclass(frozen=True)
class _Registration:
    builder: ScenarioBuilder
    description: str


_SCENARIOS: dict[str, _Registration] = {}


def register_scenario(
    name: str, *, description: str = ""
) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
    """Class-of-scenarios decorator: register ``builder`` under ``name``."""

    def decorator(builder: ScenarioBuilder) -> ScenarioBuilder:
        if name in _SCENARIOS:
            raise ValueError(f"scenario {name!r} is already registered")
        _SCENARIOS[name] = _Registration(
            builder=builder, description=description or (builder.__doc__ or "").strip()
        )
        return builder

    return decorator


def scenario_names() -> list[str]:
    """Every registered scenario name, sorted."""
    return sorted(_SCENARIOS)


def scenario_description(name: str) -> str:
    """The one-line description a scenario registered with."""
    return _get(name).description


def build_scenario(spec: ScenarioSpec) -> BuiltScenario:
    """Materialize ``spec`` via its registered builder."""
    return _get(spec.scenario).builder(spec)


def _get(name: str) -> _Registration:
    if name not in _SCENARIOS:
        raise SpecError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        )
    return _SCENARIOS[name]


# ---------------------------------------------------------------------------
# Built-in scenarios
# ---------------------------------------------------------------------------
def _add_flows(
    network: MeshNetwork, flows: "Iterable[FlowSpec | GeneratedFlow]"
) -> list[FlowHandle]:
    """Attach declarative flows — explicit :class:`FlowSpec`\\ s or a
    workload generator's :class:`GeneratedFlow`\\ s, which share the same
    field vocabulary — to the live network, in order."""
    handles: list[FlowHandle] = []
    for flow in flows:
        if flow.transport == "udp":
            handles.append(
                network.add_udp_flow(
                    list(flow.path),
                    payload_bytes=flow.payload_bytes,
                    rate_bps=flow.rate_bps,
                )
            )
        else:
            handles.append(
                network.add_tcp_flow(list(flow.path), mss_bytes=flow.mss_bytes)
            )
    return handles


@register_scenario(
    "generated",
    description="declarative topology x workload x radio-profile composition",
)
def _build_generated(spec: ScenarioSpec) -> BuiltScenario:
    """The open half of the scenario space: every axis is a registered
    generator driven purely by the spec, so new interference structures
    need parameters, not builder code.

    Construction order (all randomness from named, seed-derived RNG
    streams, so the scenario is a pure function of the spec):

    1. node positions via the topology generator (``spec.topology``);
    2. radio from ``spec.radio``, else the named ``spec.radio_profile``
       at the scenario's data rate, else the default radio;
    3. per-link modulations per ``spec.rate_mode`` (the ``mixed`` draw
       uses the ``generated.link_rates`` stream) — or, under an adaptive
       radio profile, SNR-thresholded rates via
       :func:`repro.sim.dynamics.apply_rate_adaptation`;
    4. flows from explicit ``spec.flows``, or routed over ETT paths by
       the workload generator (``spec.workload``);
    5. dynamics, when the spec asks for them: a mobility trajectory
       and/or a churn schedule (endpoints of routed flows protected by
       default) installed through a :class:`repro.sim.dynamics.DynamicsDriver`,
       whose live ``meta`` dict lands in ``meta["dynamics"]`` so epoch
       and churn counters appear in the experiment result.
    """
    import numpy as np

    from repro.engine import rng_spawn_key
    from repro.phy.propagation import LogDistancePathLoss
    from repro.sim.dynamics import (
        DynamicsDriver,
        apply_rate_adaptation,
        build_mobility,
        generate_churn_schedule,
    )
    from repro.sim.generators import (
        assign_link_rates,
        generate_workload,
        radio_profile_config,
        radio_profile_is_adaptive,
    )

    if spec.topology is None:
        raise SpecError(
            "the 'generated' scenario needs spec.topology naming a "
            "registered topology generator"
        )
    if not spec.flows and spec.workload is None:
        raise SpecError(
            "the 'generated' scenario needs explicit spec.flows or a "
            "spec.workload generator"
        )
    positions = spec.topology.build(seed=spec.seed)
    if spec.radio is not None:
        radio = spec.radio.build()
    elif spec.radio_profile is not None:
        radio = radio_profile_config(
            spec.radio_profile, data_rate_mbps=spec.data_rate_mbps
        )
    else:
        radio = None
    sigma = 0.0 if spec.shadowing_sigma_db is None else spec.shadowing_sigma_db
    network = MeshNetwork(
        positions,
        seed=spec.seed if spec.run_seed is None else spec.run_seed,
        radio=radio,
        propagation=LogDistancePathLoss(shadowing_sigma_db=sigma, seed=spec.seed),
        data_rate_mbps=spec.data_rate_mbps,
    )
    adaptive = spec.radio_profile is not None and radio_profile_is_adaptive(
        spec.radio_profile
    )
    if adaptive:
        # SNR-thresholded initial rates; the DynamicsDriver re-applies
        # them after every position epoch.  RNG-free, so this never
        # perturbs the ``generated.link_rates`` stream of other specs.
        apply_rate_adaptation(network)
    else:
        link_rate_rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=spec.seed, spawn_key=(rng_spawn_key("generated.link_rates"),)
            )
        )
        assign_link_rates(network, spec.rate_mode, link_rate_rng)
    meta: dict[str, object] = {
        "topology_generator": spec.topology.kind,
        "node_count": len(positions),
        "rate_mode": spec.rate_mode,
        "radio_profile": spec.radio_profile,
        "workload_generator": spec.workload.generator if spec.workload else None,
    }
    if spec.flows:
        handles = _add_flows(network, spec.flows)
    else:
        assert spec.workload is not None  # guarded above
        generated = generate_workload(
            network,
            spec.workload.generator,
            seed=spec.seed,
            **spec.workload.params(),
        )
        handles = _add_flows(network, generated)
        meta["transports"] = [flow.transport for flow in generated]
    meta["routes"] = [list(handle.path) for handle in handles]
    if spec.mobility is not None or spec.churn is not None or adaptive:
        trajectory = None
        epoch_s = 1.0
        if spec.mobility is not None:
            trajectory = build_mobility(
                spec.mobility.model,
                network.positions,
                spec.mobility.params(),
                seed=spec.seed,
            )
            epoch_s = spec.mobility.epoch_s
        schedule = ()
        if spec.churn is not None:
            protected: frozenset[int] = frozenset()
            if spec.churn.protect_endpoints:
                protected = frozenset(
                    node for handle in handles for node in (handle.path[0], handle.path[-1])
                )
            schedule = generate_churn_schedule(
                network.node_ids,
                protected=protected,
                num_events=spec.churn.num_events,
                start_s=spec.churn.start_s,
                end_s=spec.churn.end_s,
                down_s=spec.churn.down_s,
                seed=spec.seed,
            )
        driver = DynamicsDriver(
            network,
            trajectory=trajectory,
            epoch_s=epoch_s,
            churn=schedule,
            rate_adaptation=adaptive,
        )
        driver.install()
        # The driver mutates this dict as epochs and churn events apply;
        # the runner copies scenario.meta AFTER the run, so the final
        # counters serialize into the experiment result.
        meta["dynamics"] = driver.meta
    return BuiltScenario(
        name="generated", spec=spec, network=network, flows=handles, meta=meta
    )


@register_scenario(
    "chain", description="N-node chain with explicit flows (deterministic propagation)"
)
def _build_chain(spec: ScenarioSpec) -> BuiltScenario:
    from repro.phy.propagation import LogDistancePathLoss

    topology = spec.topology or TopologySpec(kind="chain", num_nodes=3, spacing_m=60.0)
    positions = topology.build(seed=spec.seed)
    sigma = 0.0 if spec.shadowing_sigma_db is None else spec.shadowing_sigma_db
    network = MeshNetwork(
        positions,
        seed=spec.seed if spec.run_seed is None else spec.run_seed,
        radio=spec.radio.build() if spec.radio else None,
        propagation=LogDistancePathLoss(shadowing_sigma_db=sigma, seed=spec.seed),
        data_rate_mbps=spec.data_rate_mbps,
    )
    flows = spec.flows or (
        FlowSpec(transport=spec.transport, path=tuple(sorted(positions))),
    )
    return BuiltScenario(
        name="chain", spec=spec, network=network, flows=_add_flows(network, flows)
    )


@register_scenario(
    "testbed", description="the synthetic 18-node testbed with explicit flows"
)
def _build_testbed(spec: ScenarioSpec) -> BuiltScenario:
    from repro.sim.scenarios import build_testbed_network

    if not spec.flows:
        raise SpecError("the 'testbed' scenario needs explicit FlowSpecs")
    sigma = 6.0 if spec.shadowing_sigma_db is None else spec.shadowing_sigma_db
    network = build_testbed_network(
        seed=spec.seed,
        data_rate_mbps=spec.data_rate_mbps,
        shadowing_sigma_db=sigma,
        radio=spec.radio.build() if spec.radio else None,
        run_seed=spec.run_seed,
    )
    return BuiltScenario(
        name="testbed", spec=spec, network=network, flows=_add_flows(network, spec.flows)
    )


@register_scenario(
    "random_multiflow",
    description="ETT-routed random multi-flow testbed configuration (Sections 4.5/6.3)",
)
def _build_random_multiflow(spec: ScenarioSpec) -> BuiltScenario:
    from repro.sim.scenarios import random_multiflow_scenario

    scenario = random_multiflow_scenario(
        seed=spec.seed,
        num_flows=spec.num_flows,
        max_hops=spec.max_hops,
        rate_mode=spec.rate_mode,  # type: ignore[arg-type]
        transport=spec.transport,  # type: ignore[arg-type]
        run_seed=spec.run_seed,
    )
    return BuiltScenario(
        name="random_multiflow",
        spec=spec,
        network=scenario.network,
        flows=list(scenario.flows),
        meta={
            "scenario_label": scenario.name,
            "routes": [list(route.path) for route in scenario.routes],
        },
    )


@register_scenario(
    "starvation",
    description="two-flow upstream TCP starvation at a gateway (Figure 13)",
)
def _build_starvation(spec: ScenarioSpec) -> BuiltScenario:
    from repro.sim.scenarios import starvation_scenario

    scenario = starvation_scenario(
        seed=spec.seed, data_rate_mbps=spec.data_rate_mbps, run_seed=spec.run_seed
    )
    return BuiltScenario(
        name="starvation",
        spec=spec,
        network=scenario.network,
        flows=[scenario.two_hop, scenario.one_hop],
        meta={"two_hop": scenario.two_hop.flow_id, "one_hop": scenario.one_hop.flow_id},
    )
