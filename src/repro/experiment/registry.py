"""Named scenario registry.

A *scenario builder* materializes a :class:`ScenarioSpec` into a live
:class:`MeshNetwork` plus flow handles.  Builders register under a name
with :func:`register_scenario`, which makes every scenario discoverable
(``scenario_names()``), describable (``scenario_description()``) and
runnable by name through :class:`repro.experiment.runner.Experiment`.

The built-ins wrap the canned constructions of
:mod:`repro.sim.scenarios`:

* ``chain`` — an N-node chain with explicit flows (defaults to one UDP
  flow over the whole chain);
* ``testbed`` — the synthetic 18-node testbed with explicit flows;
* ``random_multiflow`` — ETT-routed random multi-flow configurations of
  Sections 4.5 / 6.3;
* ``starvation`` — the two-flow upstream TCP gateway scenario of
  Figure 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.experiment.specs import FlowSpec, ScenarioSpec, SpecError, TopologySpec
from repro.sim.network import MeshNetwork, TcpFlowHandle, UdpFlowHandle

FlowHandle = UdpFlowHandle | TcpFlowHandle


@dataclass
class BuiltScenario:
    """A materialized scenario: the live network plus its flows.

    ``meta`` carries builder-specific annotations (flow roles, routed
    paths, ...) onto the experiment result; keep its values plain
    JSON-safe data so results serialize losslessly.
    """

    name: str
    spec: ScenarioSpec
    network: MeshNetwork
    flows: list[FlowHandle]
    meta: dict[str, object] = field(default_factory=dict)

    @property
    def links(self) -> list[tuple[int, int]]:
        ordered: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for flow in self.flows:
            for link in flow.links:
                if link not in seen:
                    seen.add(link)
                    ordered.append(link)
        return ordered


class ScenarioBuilder(Protocol):
    def __call__(self, spec: ScenarioSpec) -> BuiltScenario: ...


@dataclass(frozen=True)
class _Registration:
    builder: ScenarioBuilder
    description: str


_SCENARIOS: dict[str, _Registration] = {}


def register_scenario(
    name: str, *, description: str = ""
) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
    """Class-of-scenarios decorator: register ``builder`` under ``name``."""

    def decorator(builder: ScenarioBuilder) -> ScenarioBuilder:
        if name in _SCENARIOS:
            raise ValueError(f"scenario {name!r} is already registered")
        _SCENARIOS[name] = _Registration(
            builder=builder, description=description or (builder.__doc__ or "").strip()
        )
        return builder

    return decorator


def scenario_names() -> list[str]:
    """Every registered scenario name, sorted."""
    return sorted(_SCENARIOS)


def scenario_description(name: str) -> str:
    """The one-line description a scenario registered with."""
    return _get(name).description


def build_scenario(spec: ScenarioSpec) -> BuiltScenario:
    """Materialize ``spec`` via its registered builder."""
    return _get(spec.scenario).builder(spec)


def _get(name: str) -> _Registration:
    if name not in _SCENARIOS:
        raise SpecError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        )
    return _SCENARIOS[name]


# ---------------------------------------------------------------------------
# Built-in scenarios
# ---------------------------------------------------------------------------
def _add_flows(network: MeshNetwork, flows: tuple[FlowSpec, ...]) -> list[FlowHandle]:
    handles: list[FlowHandle] = []
    for flow in flows:
        if flow.transport == "udp":
            handles.append(
                network.add_udp_flow(
                    list(flow.path),
                    payload_bytes=flow.payload_bytes,
                    rate_bps=flow.rate_bps,
                )
            )
        else:
            handles.append(
                network.add_tcp_flow(list(flow.path), mss_bytes=flow.mss_bytes)
            )
    return handles


@register_scenario(
    "chain", description="N-node chain with explicit flows (deterministic propagation)"
)
def _build_chain(spec: ScenarioSpec) -> BuiltScenario:
    from repro.phy.propagation import LogDistancePathLoss

    topology = spec.topology or TopologySpec(kind="chain", num_nodes=3, spacing_m=60.0)
    positions = topology.build(seed=spec.seed)
    sigma = 0.0 if spec.shadowing_sigma_db is None else spec.shadowing_sigma_db
    network = MeshNetwork(
        positions,
        seed=spec.seed if spec.run_seed is None else spec.run_seed,
        radio=spec.radio.build() if spec.radio else None,
        propagation=LogDistancePathLoss(shadowing_sigma_db=sigma, seed=spec.seed),
        data_rate_mbps=spec.data_rate_mbps,
    )
    flows = spec.flows or (
        FlowSpec(transport=spec.transport, path=tuple(sorted(positions))),
    )
    return BuiltScenario(
        name="chain", spec=spec, network=network, flows=_add_flows(network, flows)
    )


@register_scenario(
    "testbed", description="the synthetic 18-node testbed with explicit flows"
)
def _build_testbed(spec: ScenarioSpec) -> BuiltScenario:
    from repro.sim.scenarios import build_testbed_network

    if not spec.flows:
        raise SpecError("the 'testbed' scenario needs explicit FlowSpecs")
    sigma = 6.0 if spec.shadowing_sigma_db is None else spec.shadowing_sigma_db
    network = build_testbed_network(
        seed=spec.seed,
        data_rate_mbps=spec.data_rate_mbps,
        shadowing_sigma_db=sigma,
        radio=spec.radio.build() if spec.radio else None,
        run_seed=spec.run_seed,
    )
    return BuiltScenario(
        name="testbed", spec=spec, network=network, flows=_add_flows(network, spec.flows)
    )


@register_scenario(
    "random_multiflow",
    description="ETT-routed random multi-flow testbed configuration (Sections 4.5/6.3)",
)
def _build_random_multiflow(spec: ScenarioSpec) -> BuiltScenario:
    from repro.sim.scenarios import random_multiflow_scenario

    scenario = random_multiflow_scenario(
        seed=spec.seed,
        num_flows=spec.num_flows,
        max_hops=spec.max_hops,
        rate_mode=spec.rate_mode,  # type: ignore[arg-type]
        transport=spec.transport,  # type: ignore[arg-type]
        run_seed=spec.run_seed,
    )
    return BuiltScenario(
        name="random_multiflow",
        spec=spec,
        network=scenario.network,
        flows=list(scenario.flows),
        meta={
            "scenario_label": scenario.name,
            "routes": [list(route.path) for route in scenario.routes],
        },
    )


@register_scenario(
    "starvation",
    description="two-flow upstream TCP starvation at a gateway (Figure 13)",
)
def _build_starvation(spec: ScenarioSpec) -> BuiltScenario:
    from repro.sim.scenarios import starvation_scenario

    scenario = starvation_scenario(
        seed=spec.seed, data_rate_mbps=spec.data_rate_mbps, run_seed=spec.run_seed
    )
    return BuiltScenario(
        name="starvation",
        spec=spec,
        network=scenario.network,
        flows=[scenario.two_hop, scenario.one_hop],
        meta={"two_hop": scenario.two_hop.flow_id, "one_hop": scenario.one_hop.flow_id},
    )
