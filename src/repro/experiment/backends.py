"""Pluggable execution backends for batch sweeps.

The :class:`repro.experiment.batch.BatchRunner` does not run specs
itself: it plans the sweep (see :mod:`repro.experiment.planner`) and
hands the cells that actually need simulating to an
:class:`ExecutionBackend`.  Every backend speaks the same dict-in /
dict-out protocol as :func:`run_spec_payload` — a spec's canonical dict
goes in, the result's canonical dict comes out — which is exactly the
protocol the process-parallel runner has always used, so swapping
backends can never change results: by the determinism guarantees of the
engine (CRC32-derived RNG spawn keys), the payload a backend returns is
byte-identical no matter where the simulation ran.

Three backends ship with the library:

* :class:`SerialBackend` — run every cell inline in the calling
  process.  The reference implementation the others are tested against.
* :class:`ProcessPoolBackend` — fan out across local worker processes
  with :class:`concurrent.futures.ProcessPoolExecutor` (what
  ``BatchRunner(parallel=True)`` has always done).
* :class:`WorkQueueBackend` — a shared-directory work queue.  The
  submitting process writes one JSON task file per cell; *any* process
  that can see the directory — locally spawned drainers, or remote
  workers started with ``python -m repro.experiment.worker <dir>`` on
  hosts sharing the filesystem — claims tasks by atomic rename, runs
  them, and writes result files back.  This is the distributed-ready
  backend: the queue directory is the only coupling between submitter
  and workers.

:func:`resolve_backend` maps the ``backend`` argument of
:class:`BatchRunner` (a name, an instance, or ``None``) to an instance;
exporting ``REPRO_BATCH_BACKEND=serial|process|work_queue`` selects the
default backend for every ``BatchRunner`` that did not pass one
explicitly, which is how the CI backend matrix drives the whole
experiment test package through each backend in turn.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
import uuid
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.experiment.fsio import atomic_write_text

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "WorkQueueBackend",
    "BackendError",
    "backend_names",
    "resolve_backend",
    "run_spec_payload",
]

#: Environment variable naming the default backend (see :func:`resolve_backend`).
BACKEND_ENV_VAR = "REPRO_BATCH_BACKEND"


class BackendError(RuntimeError):
    """A backend failed to produce a result for a submitted spec."""


def run_spec_payload(payload: Mapping[str, Any]) -> dict[str, Any]:
    """The worker protocol: spec dict in, result dict out.

    Caching is disabled here even when ``REPRO_CACHE_DIR`` is set: the
    submitting process resolves cache hits before dispatching and owns
    every writeback, so executors must not contend for the cache index.
    """
    from repro.experiment.runner import Experiment
    from repro.experiment.specs import ExperimentSpec

    spec = ExperimentSpec.from_dict(payload)
    return Experiment(spec, keep_decisions=False).run(cache=False).to_dict()


class ExecutionBackend(ABC):
    """Executes spec payloads and returns result payloads, in order.

    Implementations must be order-preserving (``results[i]`` corresponds
    to ``payloads[i]``) and must produce payloads byte-identical to
    :func:`run_spec_payload` run inline — the cross-backend determinism
    suite holds every backend to that bar.
    """

    #: Registry name (also the value ``REPRO_BATCH_BACKEND`` takes).
    name: str = ""

    @abstractmethod
    def run(self, payloads: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
        """Execute every payload and return the result payloads in order."""

    def workers_for(self, num_tasks: int) -> int:
        """How many workers this backend would engage for ``num_tasks``
        (1 means the work effectively runs serially)."""
        return 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Run every cell inline, in submission order, in this process."""

    name = "serial"

    def run(self, payloads: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
        return [run_spec_payload(payload) for payload in payloads]


class ProcessPoolBackend(ExecutionBackend):
    """Fan out across local processes with a ``ProcessPoolExecutor``.

    Args:
        max_workers: process count; defaults to the CPU count capped at
            the number of submitted cells.  With one cell (or one
            worker) the pool is skipped entirely and the cell runs
            inline — identical results, no startup cost.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers

    def workers_for(self, num_tasks: int) -> int:
        if num_tasks <= 1:
            return 1
        return self.max_workers or min(num_tasks, os.cpu_count() or 1)

    def run(self, payloads: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
        workers = self.workers_for(len(payloads))
        if workers <= 1:
            return [run_spec_payload(payload) for payload in payloads]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(run_spec_payload, payloads))


# ---------------------------------------------------------------------------
# File-based work queue
# ---------------------------------------------------------------------------
#: Queue-directory layout, shared with :mod:`repro.experiment.worker`.
TASKS_DIR = "tasks"
CLAIMED_DIR = "claimed"
RESULTS_DIR = "results"

#: Result files this old are orphans of dead submissions (see
#: :meth:`WorkQueueBackend._reap_stale_results`).
_STALE_RESULT_S = 7 * 24 * 3600.0


def _atomic_write_json(target: Path, payload: Mapping[str, Any]) -> None:
    """Write JSON atomically so queue consumers never see partial files."""
    atomic_write_text(target, json.dumps(payload))


def ensure_queue_dirs(queue_dir: str | os.PathLike[str]) -> Path:
    """Create the tasks/claimed/results layout; returns the queue root."""
    root = Path(queue_dir).expanduser()
    for name in (TASKS_DIR, CLAIMED_DIR, RESULTS_DIR):
        (root / name).mkdir(parents=True, exist_ok=True)
    return root


class WorkQueueBackend(ExecutionBackend):
    """A shared-directory work queue any worker process can drain.

    One task file per cell lands in ``<queue_dir>/tasks/``; workers
    claim a task by atomically renaming it into ``claimed/`` (the rename
    is the lock — exactly one claimant wins), run
    :func:`run_spec_payload`, and write the result JSON into
    ``results/``.  The submitter polls for result files and reassembles
    them in submission order.  Task ids are unique per submission, so
    several submitters (and any number of workers) can share one
    directory.

    Args:
        queue_dir: the shared directory.  ``None`` creates a private
            temporary queue per :meth:`run` — convenient for local use,
            pointless for remote workers, which need a directory they
            can see too.
        workers: how many local drainer processes to spawn per
            :meth:`run` (``python -m repro.experiment.worker``).  ``0``
            spawns none and relies entirely on external workers already
            watching the directory.
        cache_dir: optional shared :class:`ResultCache` directory the
            spawned workers write results back to (content-addressed,
            so concurrent writers are safe) — lets a warm shared store
            build up even when the submitter itself runs uncached.
        poll_interval_s: how often the submitter re-scans ``results/``.
        timeout_s: give up (``BackendError``) when results stop arriving
            for this long and no local worker is still alive.
    """

    name = "work_queue"

    def __init__(
        self,
        queue_dir: str | os.PathLike[str] | None = None,
        workers: int | None = None,
        cache_dir: str | os.PathLike[str] | None = None,
        poll_interval_s: float = 0.05,
        timeout_s: float = 600.0,
    ) -> None:
        if workers is not None and workers < 0:
            raise ValueError("workers must be non-negative")
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if workers == 0 and queue_dir is None:
            raise ValueError(
                "workers=0 (external drain) requires a queue_dir the "
                "external workers can see; a private temporary queue "
                "would hang until timeout"
            )
        self.queue_dir = Path(queue_dir).expanduser() if queue_dir else None
        self.workers = workers
        self.cache_dir = Path(cache_dir).expanduser() if cache_dir else None
        self.poll_interval_s = poll_interval_s
        self.timeout_s = timeout_s

    def workers_for(self, num_tasks: int) -> int:
        """Locally spawned drainers (external-drain mode reports 1 —
        the submitter cannot know how many remote workers are watching)."""
        if num_tasks <= 0 or self.workers == 0:
            return 1
        if self.workers is not None:
            return min(self.workers, max(num_tasks, 1))
        return min(num_tasks, os.cpu_count() or 1)

    # ------------------------------------------------------------- internals
    def _spawn_worker(
        self, queue_dir: Path, log_path: Path, match: str
    ) -> subprocess.Popen:
        command = [
            sys.executable,
            "-m",
            "repro.experiment.worker",
            str(queue_dir),
            "--exit-when-empty",
            "--poll-interval-s",
            str(self.poll_interval_s),
            # Scoped to this submission: terminating these drainers at the
            # end of run() must never kill another submitter's task
            # mid-simulation in a shared directory.
            "--match",
            match,
        ]
        if self.cache_dir is not None:
            command += ["--cache-dir", str(self.cache_dir)]
        # Workers must be able to import repro even when the submitter
        # runs from a source checkout that was put on sys.path by hand
        # (tests, conftest) rather than installed.
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                package_root + (os.pathsep + existing if existing else "")
            )
        log = open(log_path, "ab")
        try:
            return subprocess.Popen(
                command, stdout=log, stderr=subprocess.STDOUT, env=env
            )
        finally:
            log.close()

    def run(self, payloads: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
        if not payloads:
            return []
        if self.queue_dir is not None:
            return self._run_in(ensure_queue_dirs(self.queue_dir), payloads)
        with tempfile.TemporaryDirectory(prefix="repro-queue-") as tmp:
            return self._run_in(ensure_queue_dirs(tmp), payloads)

    def _reap_stale_results(self, root: Path) -> None:
        """Collect orphan result files abandoned in a shared directory.

        A submitter that timed out withdraws its files, but a claimant
        that outlived the timeout may write its result afterwards with
        nobody left to consume it.  Live submitters unlink results
        within a poll tick, so anything old belongs to no one — but
        "old" is judged from *other hosts'* mtimes, so the horizon is a
        deliberately paranoid fixed week, far beyond any clock skew,
        suspended submitter, or long custom ``timeout_s``: orphans
        accumulate slowly, and deleting a live result would lose work.
        """
        horizon = time.time() - _STALE_RESULT_S
        try:
            entries = list(os.scandir(root / RESULTS_DIR))
        except OSError:
            return
        for entry in entries:
            try:
                if entry.stat().st_mtime < horizon:
                    os.unlink(entry.path)
            except OSError:
                continue

    def _run_in(
        self, root: Path, payloads: Sequence[Mapping[str, Any]]
    ) -> list[dict[str, Any]]:
        self._reap_stale_results(root)
        job = uuid.uuid4().hex[:12]
        task_ids = [f"{job}-{index:05d}" for index in range(len(payloads))]
        for task_id, payload in zip(task_ids, payloads):
            _atomic_write_json(
                root / TASKS_DIR / f"{task_id}.json",
                {"id": task_id, "spec": dict(payload)},
            )
        drainers: list[subprocess.Popen] = []
        spawn = min(
            self.workers if self.workers is not None else (os.cpu_count() or 1),
            len(payloads),  # surplus drainers would only pay startup to exit
        )
        log_path = root / f"worker-{job}.log"
        try:
            for _ in range(spawn):
                drainers.append(self._spawn_worker(root, log_path, f"{job}-"))
            return self._collect(root, task_ids, drainers, log_path)
        finally:
            for proc in drainers:
                if proc.poll() is None:
                    proc.terminate()
            for proc in drainers:
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    proc.kill()
            # On failure/timeout, withdraw this submission's leftovers so
            # a shared queue's external workers don't burn compute on a
            # sweep nobody is waiting for.  Best-effort: a claimant that
            # outlives our timeout can still write an orphan result
            # afterwards — _reap_stale_results on the next submission
            # collects those.
            for task_id in task_ids:
                for subdir in (TASKS_DIR, CLAIMED_DIR, RESULTS_DIR):
                    try:
                        (root / subdir / f"{task_id}.json").unlink()
                    except OSError:
                        pass
            try:
                log_path.unlink()  # failures embed the log tail in the error
            except OSError:
                pass

    def _scan_results(
        self,
        results_dir: Path,
        pending: set[str],
        collected: dict[str, dict[str, Any]],
    ) -> bool:
        """Collect every pending result currently on disk; True if any.

        One ``scandir`` per tick, not one failing ``open`` per pending
        task — the difference between O(results) and O(pending) syscalls
        matters when thousands of cells wait on a network filesystem.
        """
        try:
            present = {entry.name for entry in os.scandir(results_dir)}
        except OSError:
            return False
        progressed = False
        for task_id in sorted(pending):
            name = f"{task_id}.json"
            if name not in present:
                continue
            path = results_dir / name
            try:
                with open(path, encoding="utf-8") as fh:
                    envelope = json.load(fh)
            except (OSError, ValueError):
                continue  # mid-replace on an exotic fs; next tick has it
            if envelope.get("error") is not None:
                raise BackendError(
                    f"work-queue task {task_id} failed in a worker:\n"
                    f"{envelope['error']}"
                )
            collected[task_id] = envelope["result"]
            pending.discard(task_id)
            try:
                path.unlink()
            except OSError:
                pass
            progressed = True
        return progressed

    def _collect(
        self,
        root: Path,
        task_ids: list[str],
        drainers: list[subprocess.Popen],
        log_path: Path,
    ) -> list[dict[str, Any]]:
        results_dir = root / RESULTS_DIR
        pending = set(task_ids)
        collected: dict[str, dict[str, Any]] = {}
        last_progress = time.monotonic()
        drainers_dead_rescan = False
        while pending:
            if self._scan_results(results_dir, pending, collected):
                last_progress = time.monotonic()
                drainers_dead_rescan = False
                continue
            if any(proc.poll() is None for proc in drainers):
                # A live local drainer is computing (simulations always
                # terminate) — a big cell legitimately takes as long as
                # it takes, so the stall timeout does not apply here.
                time.sleep(self.poll_interval_s)
                continue
            if drainers:
                # Our drainers all exited.  A drainer may write its last
                # result and exit between scan and liveness check —
                # rescan once before judging, or that window is a flake.
                if not drainers_dead_rescan:
                    drainers_dead_rescan = True
                    continue
                # In a shared directory, another submitter's workers may
                # have claimed our tasks (our --exit-when-empty drainers
                # then see an empty queue and leave); a claimed task is
                # being computed, so keep waiting under the timeout.
                claimed = any(
                    (root / CLAIMED_DIR / f"{task_id}.json").exists()
                    for task_id in pending
                )
                if not claimed:
                    log_tail = ""
                    try:
                        log_tail = log_path.read_text(encoding="utf-8")[-2000:]
                    except OSError:
                        pass
                    raise BackendError(
                        f"all {len(drainers)} local queue worker(s) exited "
                        f"with {len(pending)} task(s) unfinished in {root}\n"
                        f"{log_tail}"
                    )
            # External workers (or another submitter's claimants) own the
            # remaining tasks: give up only when results stop arriving
            # for timeout_s — a stalled fleet, or a claimant that died
            # holding our tasks.
            if time.monotonic() - last_progress > self.timeout_s:
                raise BackendError(
                    f"timed out after {self.timeout_s:.0f}s waiting for "
                    f"{len(pending)} work-queue task(s) in {root}"
                )
            time.sleep(self.poll_interval_s)
        return [collected[task_id] for task_id in task_ids]


# ---------------------------------------------------------------------------
# Resolution
# ---------------------------------------------------------------------------
_BACKENDS: dict[str, type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
    WorkQueueBackend.name: WorkQueueBackend,
}


def backend_names() -> list[str]:
    """The registered backend names, sorted."""
    return sorted(_BACKENDS)


def _instantiate(name: str, max_workers: int | None) -> ExecutionBackend:
    try:
        cls = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        ) from None
    if cls is SerialBackend:
        return SerialBackend()
    if cls is ProcessPoolBackend:
        return ProcessPoolBackend(max_workers=max_workers)
    return WorkQueueBackend(workers=max_workers)


def resolve_backend(
    backend: "ExecutionBackend | str | None",
    parallel: bool = True,
    max_workers: int | None = None,
) -> ExecutionBackend:
    """Resolve the ``backend`` argument of :class:`BatchRunner`.

    * an :class:`ExecutionBackend` instance is used as given;
    * a name (``"serial"``, ``"process"``, ``"work_queue"``) is
      instantiated with ``max_workers``;
    * ``None`` with ``parallel=False`` is the legacy sequential path and
      always resolves to :class:`SerialBackend` — explicit code intent
      beats the environment;
    * ``None`` otherwise honors ``REPRO_BATCH_BACKEND`` when set (the CI
      backend matrix uses this) and defaults to
      :class:`ProcessPoolBackend`.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        if not parallel:
            return SerialBackend()
        backend = os.environ.get(BACKEND_ENV_VAR) or ProcessPoolBackend.name
    return _instantiate(str(backend), max_workers)
