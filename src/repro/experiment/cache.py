"""Content-addressed on-disk cache of :class:`ExperimentResult` payloads.

The paper's evaluation is a grid of repeated simulation cells (the
fig13 starvation variants, the fig14 scenarios x controllers x seeds
matrix), and the runner is deterministic: a spec's canonical dict fully
determines its result.  That makes results cacheable by content
address — :func:`repro.experiment.specs.spec_digest` hashes the
canonical spec dict together with :data:`SPEC_SCHEMA_VERSION`, and
:class:`ResultCache` stores the result payload JSON under that digest.

Layout on disk (all writes are atomic ``tmp + os.replace``)::

    <cache_dir>/
        index.json            # digest -> {size, label, seq} bookkeeping
                              # plus the measured-cost ledger
        ab/abcdef....json     # one result payload per digest, fanned out
                              # by the first two hex characters

Besides the payload entries, ``index.json`` carries a **measured-cost
ledger**: on every writeback the payload's recorded simulation wall
clock (``runtime.wall_time_s``) is stored under the digest, and —
unlike the payload entry — the cost survives eviction and corruption of
the payload file.  :meth:`ResultCache.measured_cost_s` exposes it, and
the :class:`repro.experiment.planner.SweepPlanner` prefers these
measured costs over its static heuristic when ordering cache misses
slowest-first, so a store that has seen a spec before schedules it by
how long it *actually* took.

* ``get(spec)`` / ``put(spec, result)`` move typed
  :class:`ExperimentResult`\\ s in and out;
* ``get_payload(...)`` / ``put_payload(...)`` are the dict-level
  equivalents the :class:`repro.experiment.batch.BatchRunner` uses so
  warm sweeps never touch worker processes;
* eviction is least-recently-used, bounded by ``max_entries`` and
  ``max_bytes``;
* ``stats`` counts hits / misses / puts / evictions for benchmark
  reporting.

Cached payloads are returned exactly as stored — bit-identical to what
the original run serialized, including the original run's runtime block
(``wall_time_s`` of the *simulation that produced it*, not of the cache
lookup).  :class:`ControlDecision` objects never serialize, so cache
hits cannot reconstruct them; :meth:`Experiment.run` therefore only
consults the cache when ``keep_decisions=False``, and writes back
put-if-absent — an existing entry keeps the exact payload its original
run serialized.

:func:`default_cache` builds the conventional cache for this machine,
honoring the ``REPRO_CACHE_DIR`` environment variable; setting that
variable also turns caching on by default for every
:meth:`Experiment.run` and :class:`BatchRunner` that was not given an
explicit ``cache`` argument (see :func:`resolve_cache`).

The cache is safe for the batch runner's usage — lookups and writebacks
happen in one submitting process, bulk-written via :meth:`put_payloads`
— and tolerates concurrent *readers*.  The same guarantees are what let
a fleet of work-queue workers (``python -m repro.experiment.worker
--cache-dir ...``) write back into one shared store while they drain a
queue.
Concurrent writers sharing one directory are supported best-effort:
payload files are content-addressed and written atomically (unique temp
names + ``os.replace``), and every index write re-merges entries found
on disk so a stale writer cannot orphan another's payloads; what a race
can still cost is accuracy of the LRU bookkeeping (an entry briefly
missing from the index is re-adopted by the next write, and at worst
re-simulated), never the correctness of a returned payload.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.experiment.fsio import atomic_write_text as _atomic_write_text
from repro.experiment.runner import ExperimentResult
from repro.experiment.specs import SPEC_SCHEMA_VERSION, ExperimentSpec, spec_digest

__all__ = [
    "CacheStats",
    "ResultCache",
    "default_cache",
    "resolve_cache",
]

_INDEX_NAME = "index.json"


def _coerce_costs(value: Any) -> dict[str, float]:
    """The measured-cost ledger read back from ``index.json``, with
    malformed records dropped (never let a garbage cost poison planning)."""
    costs: dict[str, float] = {}
    if not isinstance(value, Mapping):
        return costs
    for digest, cost in value.items():
        try:
            cost_s = float(cost)
        except (TypeError, ValueError):
            continue
        # Finite and positive: json round-trips bare `Infinity`, and one
        # inf cost would blow up the planner's calibration ratio.
        if cost_s > 0.0 and math.isfinite(cost_s):
            costs[str(digest)] = cost_s
    return costs


def _coerce_entry(value: Any) -> dict[str, Any] | None:
    """A well-formed index entry normalized to native types, or ``None``.

    Everything read back from ``index.json`` goes through here, so the
    rest of the class can index into entries without re-validating —
    malformed values surface as "corrupt index" (rebuild) rather than as
    crashes deep inside ``_touch``/``_evict``/``size_bytes``.
    """
    if not isinstance(value, Mapping):
        return None
    try:
        return {
            "size": int(value.get("size", 0)),
            "label": str(value.get("label", "")),
            "seq": int(value.get("seq", 0)),
        }
    except (TypeError, ValueError):
        return None


#: Default bounds: generous for sweep workloads (a fig14-sized payload is
#: a few KiB) while keeping a forgotten cache directory bounded.
DEFAULT_MAX_ENTRIES = 4096
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Measured-cost ledger bound: a cost record is ~100 bytes of JSON, so
#: keeping several payload-generations of history is cheap and lets the
#: planner order sweeps whose payloads were long evicted.
COST_LEDGER_MAX = 16384


@dataclass
class CacheStats:
    """Hit/miss/put/eviction counters of one :class:`ResultCache` handle."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 when nothing was looked up yet."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """Content-addressed store of experiment result payloads.

    Args:
        cache_dir: directory to store payloads in (created on first use).
        max_entries: evict least-recently-used entries beyond this count.
        max_bytes: evict least-recently-used entries once the summed
            payload size exceeds this bound.
        schema_version: mixed into every key; defaults to
            :data:`repro.experiment.specs.SPEC_SCHEMA_VERSION`.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike[str],
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
        schema_version: int = SPEC_SCHEMA_VERSION,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be at least 1")
        self.cache_dir = Path(cache_dir).expanduser()
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.schema_version = schema_version
        self.stats = CacheStats()
        self._index: dict[str, dict[str, Any]] | None = None
        self._costs: dict[str, float] = {}
        self._seq = 0

    # ------------------------------------------------------------------ keys
    def key(self, spec: ExperimentSpec | Mapping[str, Any]) -> str:
        """The content address of ``spec`` under this cache's schema."""
        return spec_digest(spec, schema_version=self.schema_version)

    def _payload_path(self, digest: str) -> Path:
        return self.cache_dir / digest[:2] / f"{digest}.json"

    # --------------------------------------------------------------- index IO
    def _load_index(self) -> dict[str, dict[str, Any]]:
        if self._index is None:
            try:
                with open(self.cache_dir / _INDEX_NAME, encoding="utf-8") as fh:
                    data = json.load(fh)
                if not isinstance(data, dict):
                    raise ValueError("malformed index")
                raw = data.get("entries", {})
                if not isinstance(raw, dict):
                    raise ValueError("malformed index")
                entries: dict[str, dict[str, Any]] = {}
                for digest, value in raw.items():
                    entry = _coerce_entry(value)
                    if entry is None:
                        raise ValueError("malformed index entry")
                    entries[str(digest)] = entry
                self._index = entries
                self._costs = _coerce_costs(data.get("costs", {}))
            except (OSError, ValueError):
                self._index = self._rebuild_index()
                self._costs = {}
            self._seq = max((e["seq"] for e in self._index.values()), default=0)
        return self._index

    def _rebuild_index(self) -> dict[str, dict[str, Any]]:
        """Recover bookkeeping from the payload files themselves (the
        index is a cache of the cache — losing it must never lose data)."""
        entries: dict[str, dict[str, Any]] = {}
        if not self.cache_dir.is_dir():
            return entries
        for path in sorted(self.cache_dir.glob("??/*.json")):
            digest = path.stem
            try:
                size = path.stat().st_size
            except OSError:
                continue
            entries[digest] = {"size": size, "label": "", "seq": 0}
        return entries

    def _write_index(self) -> None:
        index = self._load_index()
        # Read-merge-write: adopt entries another handle/process added to
        # the directory since our snapshot, so a stale writer never orphans
        # their payloads.  Digests we removed stay removed — their payload
        # files are unlinked first, and the merge only adopts entries whose
        # payload still exists on disk.
        try:
            with open(self.cache_dir / _INDEX_NAME, encoding="utf-8") as fh:
                on_disk = json.load(fh)
            entries = on_disk.get("entries", {}) if isinstance(on_disk, dict) else {}
            if isinstance(entries, dict):
                adopted = False
                for digest, value in entries.items():
                    entry = _coerce_entry(value)
                    digest = str(digest)
                    if (
                        entry is not None
                        and digest not in index
                        and self._payload_path(digest).exists()
                    ):
                        index[digest] = entry
                        adopted = True
                if adopted:
                    # Adopted entries count against this handle's bounds
                    # too, or a read-mostly workload could leave the
                    # directory over max_entries/max_bytes indefinitely.
                    self._evict()
            if isinstance(on_disk, dict):
                # Costs another writer measured are as good as our own;
                # our own measurement wins a conflict (it is at least as
                # fresh as our snapshot).
                for digest, cost_s in _coerce_costs(on_disk.get("costs", {})).items():
                    self._costs.setdefault(digest, cost_s)
        except (OSError, ValueError):
            pass
        self._trim_costs()
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_text(
            self.cache_dir / _INDEX_NAME,
            json.dumps(
                {
                    "schema": self.schema_version,
                    "entries": index,
                    "costs": self._costs,
                },
                indent=0,
            ),
        )

    def _trim_costs(self) -> None:
        """Bound the cost ledger: drop oldest-recorded digests first
        (dict insertion order), keeping records for live entries."""
        overflow = len(self._costs) - COST_LEDGER_MAX
        if overflow <= 0:
            return
        index = self._load_index()
        for digest in list(self._costs):
            if overflow <= 0:
                break
            if digest in index:
                continue  # live entries keep their measurement
            del self._costs[digest]
            overflow -= 1
        for digest in list(self._costs):
            if overflow <= 0:
                break
            del self._costs[digest]
            overflow -= 1

    def _touch(self, digest: str) -> None:
        self._seq += 1
        self._load_index()[digest]["seq"] = self._seq

    # ---------------------------------------------------------- payload-level
    def get_payload(
        self,
        spec: ExperimentSpec | Mapping[str, Any],
        digest: str | None = None,
    ) -> dict[str, Any] | None:
        """The stored result dict for ``spec``, or ``None`` on a miss.

        A corrupt or externally deleted payload file counts as a miss and
        drops the stale index entry.  ``digest`` lets callers that
        already hold ``self.key(spec)`` (the sweep planner) skip the
        canonical-JSON + sha256 pass.
        """
        digest = digest if digest is not None else self.key(spec)
        index = self._load_index()
        if digest in index:
            try:
                with open(self._payload_path(digest), encoding="utf-8") as fh:
                    payload = json.load(fh)
                if not isinstance(payload, dict):
                    raise ValueError("malformed payload")
            except (OSError, ValueError):
                # Unlink before dropping the entry: a corrupt payload left
                # on disk would be re-adopted by the next index merge.
                try:
                    self._payload_path(digest).unlink()
                except OSError:
                    pass
                index.pop(digest, None)
                self._write_index()
            else:
                self.stats.hits += 1
                # LRU touches are deferred: rewriting the whole index on
                # every hit would turn a warm N-cell sweep into N full
                # index serializations.  The refreshed seq numbers persist
                # with the next put/eviction/clear; losing them on exit
                # costs LRU accuracy only, never payload correctness.
                self._touch(digest)
                return payload
        self.stats.misses += 1
        return None

    def put_payload(
        self,
        spec: ExperimentSpec | Mapping[str, Any],
        payload: Mapping[str, Any],
        label: str = "",
        flush: bool = True,
        digest: str | None = None,
    ) -> str:
        """Store a result dict under ``spec``'s digest; returns the digest.

        ``flush=False`` defers the index write — the payload file itself
        always lands immediately.  Bulk writers (a cold batch sweep doing
        one put per miss) pass it and call :meth:`flush` once at the end,
        instead of paying a full index read-merge-rewrite per cell.  A
        crash before the flush costs at most a future miss on the
        unindexed digests — the next cold run simply rewrites them.
        ``digest``, when the caller already holds ``self.key(spec)``,
        skips recomputing it.
        """
        digest = digest if digest is not None else self.key(spec)
        path = self._payload_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        encoded = json.dumps(payload, sort_keys=True)
        _atomic_write_text(path, encoded)
        index = self._load_index()
        # Measured-cost ledger: remember how long this spec actually took
        # to simulate (the payload's own runtime block, i.e. the wall
        # clock of the run that produced it — not of this writeback).
        runtime = payload.get("runtime")
        if isinstance(runtime, Mapping):
            try:
                cost_s = float(runtime.get("wall_time_s", 0.0))
            except (TypeError, ValueError):
                cost_s = 0.0
            if cost_s > 0.0 and math.isfinite(cost_s):
                self._costs[digest] = cost_s
        # Bytes on disk, not characters: must agree with the st_size a
        # _rebuild_index would record for the same UTF-8 payload file.
        index[digest] = {
            "size": len(encoded.encode("utf-8")), "label": label, "seq": 0
        }
        self._touch(digest)
        self.stats.puts += 1
        self._evict()
        if flush:
            self._write_index()
        return digest

    def put_payloads(
        self,
        items: "Iterable[tuple[Mapping[str, Any], Mapping[str, Any], str]]",
        digests: "Iterable[str | None] | None" = None,
    ) -> list[str]:
        """Bulk shared-store writeback: store ``(spec, payload, label)``
        triples with a single index flush at the end.

        This is the batch runner's writeback path (work-queue workers
        batch differently — per task with deferred flushes): each
        payload file lands atomically as it is written, so concurrent
        writers sharing one store can bulk-write safely, while the
        index — whose rewrite costs O(entries) — is merged and flushed
        once per sweep instead of once per cell.  ``digests`` optionally
        supplies precomputed keys, parallel to ``items``.  Returns the
        digests in input order.
        """
        from itertools import repeat

        stored = [
            self.put_payload(spec, payload, label=label, flush=False, digest=digest)
            for (spec, payload, label), digest in zip(
                items, digests if digests is not None else repeat(None)
            )
        ]
        if stored:
            self._write_index()
        return stored

    # ----------------------------------------------------- measured-cost ledger
    def measured_cost_s(
        self, spec: ExperimentSpec | Mapping[str, Any] | str
    ) -> float | None:
        """Recorded simulation wall clock for ``spec`` (or a digest
        string), or ``None`` when this store never ran it.

        The ledger outlives the payload itself — an entry evicted for
        space still orders correctly in the next sweep plan — and is
        consulted by :class:`repro.experiment.planner.SweepPlanner` in
        preference to the static :func:`estimate_cost_s` heuristic.
        """
        digest = spec if isinstance(spec, str) else self.key(spec)
        self._load_index()
        return self._costs.get(digest)

    @property
    def cost_ledger_size(self) -> int:
        """How many digests have a recorded measured cost."""
        self._load_index()
        return len(self._costs)

    # ------------------------------------------------------------ typed-level
    def get(self, spec: ExperimentSpec) -> ExperimentResult | None:
        """The cached :class:`ExperimentResult` for ``spec``, or ``None``."""
        payload = self.get_payload(spec)
        return ExperimentResult.from_dict(payload) if payload is not None else None

    def put(self, result: ExperimentResult) -> str:
        """Cache ``result`` under its own spec's digest; returns the digest."""
        return self.put_payload(
            result.spec, result.to_dict(include_runtime=True), label=result.spec.label
        )

    # -------------------------------------------------------------- eviction
    def _evict(self) -> None:
        index = self._load_index()
        by_age = sorted(index, key=lambda d: int(index[d].get("seq", 0)))
        total = sum(int(e.get("size", 0)) for e in index.values())
        # The most-recently-used entry always survives, even when it alone
        # exceeds max_bytes — evicting what was just written would make an
        # undersized cache silently useless.
        while len(by_age) > 1 and (
            len(index) > self.max_entries or total > self.max_bytes
        ):
            digest = by_age.pop(0)
            total -= int(index.pop(digest).get("size", 0))
            try:
                self._payload_path(digest).unlink()
            except OSError:
                pass
            self.stats.evictions += 1

    # ------------------------------------------------------------- management
    def flush(self) -> None:
        """Persist the in-memory index (LRU touches, deferred puts)."""
        self._write_index()

    def __len__(self) -> int:
        return len(self._load_index())

    def __contains__(self, spec: object) -> bool:
        if not isinstance(spec, (ExperimentSpec, Mapping)):
            return False
        return self.key(spec) in self._load_index()

    @property
    def size_bytes(self) -> int:
        """Summed size of every stored payload."""
        return sum(int(e.get("size", 0)) for e in self._load_index().values())

    def clear(self) -> int:
        """Delete every entry; returns how many were dropped.

        The measured-cost ledger survives a clear on purpose: wiping
        payloads frees space, but how long each spec took to simulate
        stays true and keeps ordering the next cold sweep well.
        """
        index = self._load_index()
        dropped = len(index)
        for digest in list(index):
            try:
                self._payload_path(digest).unlink()
            except OSError:
                pass
        index.clear()
        self._write_index()
        return dropped


def default_cache(
    max_entries: int = DEFAULT_MAX_ENTRIES, max_bytes: int = DEFAULT_MAX_BYTES
) -> ResultCache:
    """The conventional on-disk cache for this machine.

    Resolution order for the directory:

    1. ``$REPRO_CACHE_DIR`` when set and non-empty;
    2. ``$XDG_CACHE_HOME/repro-mesh`` when ``XDG_CACHE_HOME`` is set;
    3. ``~/.cache/repro-mesh``.
    """
    env_dir = os.environ.get("REPRO_CACHE_DIR")
    if env_dir:
        return ResultCache(env_dir, max_entries=max_entries, max_bytes=max_bytes)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return ResultCache(
        base / "repro-mesh", max_entries=max_entries, max_bytes=max_bytes
    )


#: One shared default-cache handle per process (for both the
#: ``REPRO_CACHE_DIR`` and ``cache=True`` paths), so a script looping
#: ``run_experiment`` N times parses the index once instead of N times
#: and its hit/miss stats accumulate in one place.  Re-created if the
#: resolved directory changes.
_shared_cache: ResultCache | None = None
_shared_cache_dir: str | None = None


def _shared_default_cache() -> ResultCache:
    global _shared_cache, _shared_cache_dir
    resolved = default_cache()
    key = str(resolved.cache_dir)
    if _shared_cache is None or _shared_cache_dir != key:
        _shared_cache, _shared_cache_dir = resolved, key
    return _shared_cache


def resolve_cache(
    cache: "ResultCache | None | bool",
) -> ResultCache | None:
    """Resolve the ``cache`` argument of :meth:`Experiment.run` and
    :class:`BatchRunner`.

    * an explicit :class:`ResultCache` is used as given;
    * ``True`` forces the process-shared default cache;
    * ``False`` disables caching unconditionally;
    * ``None`` (the default everywhere) enables the process-shared
      default cache iff ``REPRO_CACHE_DIR`` is set — so exporting that
      variable turns result caching on for every call site that leaves
      ``cache`` unspecified.
    """
    if isinstance(cache, bool):
        return _shared_default_cache() if cache else None
    if cache is None:
        return (
            _shared_default_cache()
            if os.environ.get("REPRO_CACHE_DIR")
            else None
        )
    return cache
