"""Atomic filesystem writes shared by the result cache and the work queue.

Both subsystems let multiple processes — cache writers sharing one
store, queue submitters and workers sharing one directory — write into
the same tree, so every write must be atomic and collision-free.  A
future durability change (say, fsync-before-replace) belongs here, once,
not in per-module copies.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_text"]


def atomic_write_text(target: Path, text: str) -> None:
    """Write ``text`` to ``target`` atomically.

    The temporary file gets a unique name (``tempfile.mkstemp`` in the
    target's directory), so concurrent processes sharing a directory can
    never rename each other's half-written files out from under the
    ``os.replace``; last writer wins, which is all the callers need.
    """
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
