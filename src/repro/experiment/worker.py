"""Queue drainer: ``python -m repro.experiment.worker``.

The executable half of the queue-shaped backends.  A worker claims task
envelopes (``{"id": ..., "spec": <canonical spec dict>, "attempts": ...,
"lease_s": ..., "max_attempts": ...}``), runs
:func:`repro.experiment.backends.run_spec_payload` on the spec, and
reports ``{"id": ..., "result": <result dict>}`` (or ``{"id": ...,
"error": <traceback>}``) back — over either transport:

* ``python -m repro.experiment.worker <queue_dir>`` drains a
  shared-directory :class:`~repro.experiment.backends.WorkQueueBackend`
  queue (claim = atomic rename into ``claimed/``; exactly one claimant
  wins);
* ``python -m repro.experiment.worker --broker http://host:port`` drains
  a :mod:`repro.experiment.broker` over HTTP — no shared filesystem at
  all.

Claims are **leases**: while a task computes, a background thread
heartbeats it (touching the claimed file's mtime, or POSTing
``/heartbeat``) every quarter lease, so only a *dead* worker ever goes
silent.  Idle file-queue workers also requeue other workers' expired
claims (:func:`repro.experiment.backends.requeue_expired_claims`),
which is what makes a long-lived fleet self-healing with no submitter
involvement; over HTTP the broker sweeps leases itself.

Any number of workers on any hosts can drain the same queue;
determinism is the engine's, not the scheduler's — a spec's result
payload is byte-identical no matter which worker ran it, which is also
why a task that was requeued *and* finished by its slow original owner
resolves to the same bytes either way.  With ``--cache-dir`` every
computed result is also written into a shared content-addressed
:class:`repro.experiment.cache.ResultCache` (concurrent-writer-safe),
so a fleet of workers warms one store as a side effect of draining the
queue — including the store's measured-cost ledger, which future
submissions' sweep planners use to dispatch slowest-first by observed
cost rather than heuristic.

Typical remote session (no shared filesystem; export the same
``REPRO_BROKER_TOKEN`` on every host when the broker requires one —
an unauthenticated worker is refused with 401 and exits)::

    # anywhere the fleet can reach:
    python -m repro.experiment.broker --host 0.0.0.0 --port 8123

    # on each worker host:
    python -m repro.experiment.worker --broker http://broker:8123 \\
        --cache-dir /var/cache/repro

    # on the submitting host:
    BatchRunner(specs, backend=BrokerBackend("http://broker:8123",
                                             workers=0)).run()

Chaos hooks (used by the recovery test suite, harmless otherwise):
``REPRO_WORKER_KILL_FILE`` names a flag file — the first worker to claim
a task while the flag exists unlinks it and ``SIGKILL``s itself, one
death per flag; ``REPRO_WORKER_KILL_MATCH`` is a substring — every
worker that claims a task whose id contains it dies, which is how the
retry budget's exhaustion path is exercised end to end.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import threading
import time
import traceback
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.experiment.backends import (
    CLAIMED_DIR,
    RESULTS_DIR,
    TASKS_DIR,
    _atomic_write_json,
    default_lease_s,
    ensure_queue_dirs,
    requeue_expired_claims,
    run_spec_payload,
)
from repro.experiment.backends.queue_common import PollBackoff

if TYPE_CHECKING:
    from repro.experiment.cache import ResultCache

__all__ = [
    "BrokerQueueClient",
    "FileQueueClient",
    "claim_next_task",
    "drain",
    "drain_queue",
    "main",
]

#: Chaos hooks, read once per claim (see the module docstring).
KILL_FILE_ENV_VAR = "REPRO_WORKER_KILL_FILE"
KILL_MATCH_ENV_VAR = "REPRO_WORKER_KILL_MATCH"


def claim_next_task(root: Path, match: str = "") -> Path | None:
    """Claim the oldest pending task, or ``None`` when the queue is empty.

    Claiming renames the task file into ``claimed/``; the rename either
    succeeds (this worker owns the task) or raises because another
    worker got there first, in which case the next candidate is tried.
    The file's mtime is refreshed around the rename — the claimed file's
    mtime is the lease clock, and without the touch a task that waited
    in ``tasks/`` longer than its lease would look expired the moment it
    was claimed.  ``match`` restricts claims to task files whose name
    starts with that prefix — how a submitter's own short-lived drainers
    stay off other submitters' tasks in a shared directory.
    """
    tasks_dir = root / TASKS_DIR
    try:
        candidates = sorted(
            p
            for p in tasks_dir.iterdir()
            if p.suffix == ".json" and p.name.startswith(match)
        )
    except OSError:
        return None
    for candidate in candidates:
        claimed = root / CLAIMED_DIR / candidate.name
        try:
            os.utime(candidate)  # start the lease before the rename lands
        except FileNotFoundError:
            continue  # lost the race before even trying
        except OSError:
            # Cross-user shares can forbid utime on another user's file
            # (rename needs only directory write) — claiming must still
            # work there; the lease clock just starts best-effort.
            pass
        try:
            os.replace(candidate, claimed)
        except OSError:
            continue  # lost the race; try the next task
        try:
            os.utime(claimed)
        except OSError:
            pass
        return claimed
    return None


class FileQueueClient:
    """Shared-directory transport: claim by rename, heartbeat by mtime."""

    def __init__(self, queue_dir: str | os.PathLike[str], match: str = "") -> None:
        self.root = ensure_queue_dirs(queue_dir)
        self.match = match

    def claim(self) -> tuple[dict[str, Any], Path] | None:
        claimed = claim_next_task(self.root, self.match)
        if claimed is None:
            return None
        # A torn read right after a rename is a transient of exotic
        # filesystems (task files are written atomically, so the bytes
        # are whole) — the same condition _scan_results and
        # requeue_expired_claims shrug off.  Retry briefly, then hand
        # the claim back rather than fabricating a fatal error envelope
        # for a task that is perfectly runnable next tick.
        for attempt in range(3):
            try:
                with open(claimed, encoding="utf-8") as fh:
                    envelope = json.load(fh)
                return envelope, claimed
            except (OSError, ValueError):
                time.sleep(0.05 * (attempt + 1))
        try:
            os.replace(claimed, self.root / TASKS_DIR / claimed.name)
        except OSError:
            pass  # requeued or completed under us; either way not ours
        return None

    def heartbeat(self, token: Path) -> None:
        try:
            os.utime(token)
        except OSError:
            pass  # requeued under us; the duplicate run is byte-identical

    def complete(self, token: Path, outcome: dict[str, Any]) -> None:
        _atomic_write_json(
            self.root / RESULTS_DIR / f"{outcome['id']}.json", outcome
        )
        try:
            token.unlink()
        except OSError:
            pass

    def recover(self) -> int:
        """Requeue expired claims (scoped to ``match``); the idle-time
        half of fleet self-healing."""
        requeued, exhausted = requeue_expired_claims(self.root, self.match)
        return requeued + exhausted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FileQueueClient({str(self.root)!r}, match={self.match!r})"


class BrokerQueueClient:
    """HTTP transport: the broker holds the queue and sweeps the leases."""

    def __init__(self, url: str, match: str = "") -> None:
        from repro.experiment.backends import BrokerClient

        self.client = BrokerClient(url)
        self.match = match
        self.worker_id = f"{socket.gethostname()}-{os.getpid()}"

    def claim(self) -> tuple[dict[str, Any], str] | None:
        envelope = self.client.claim(match=self.match, worker=self.worker_id)
        if envelope is None:
            return None
        return envelope, str(envelope["id"])

    def heartbeat(self, token: str) -> None:
        from repro.experiment.backends import BrokerUnavailable

        try:
            self.client.heartbeat(token)
        except BrokerUnavailable:
            pass  # the next beat (or the result POST) will retry

    def complete(self, token: str, outcome: dict[str, Any]) -> None:
        self.client.result(outcome)

    def recover(self) -> int:
        return 0  # server-side: every broker request sweeps expired leases

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BrokerQueueClient({self.client.url!r}, match={self.match!r})"


class _Heartbeat:
    """Background lease refresher for one claimed task."""

    def __init__(self, beat, interval_s: float) -> None:
        self._beat = beat
        self._interval_s = max(interval_s, 0.01)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            try:
                self._beat()
            except Exception:  # pragma: no cover - heartbeat is best-effort
                pass

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def _chaos_kill(task_id: str) -> None:
    """Die on command: the recovery tests' stand-in for real worker loss.

    SIGKILL (not an exception) on purpose — the whole point is a worker
    that never gets to write an error envelope, exactly like a crashed
    host or an OOM kill.
    """
    flag = os.environ.get(KILL_FILE_ENV_VAR)
    if flag:
        try:
            os.unlink(flag)  # atomic: exactly one worker wins the flag
        except OSError:
            pass
        else:
            os.kill(os.getpid(), signal.SIGKILL)
    match = os.environ.get(KILL_MATCH_ENV_VAR)
    if match and match in task_id:
        os.kill(os.getpid(), signal.SIGKILL)


def _execute(
    client: Any, envelope: dict[str, Any], token: Any, cache: "ResultCache | None"
) -> bool:
    """Run one claimed task; returns True when the shared cache is dirty
    (a payload was written with its index flush deferred to the caller)."""
    cache_dirty = False
    lease_s = float(envelope.get("lease_s") or default_lease_s())
    try:
        task_id = str(envelope["id"])
        spec_payload: dict[str, Any] = envelope["spec"]
        with _Heartbeat(lambda: client.heartbeat(token), lease_s / 4.0):
            result = run_spec_payload(spec_payload)
        if cache is not None:
            # Shared-store writeback: content-addressed and atomic, so
            # any number of workers can target one cache directory.  A
            # failing store (unwritable, full) must never poison the
            # computed result — the writeback is best-effort.
            try:
                cache.put_payload(
                    spec_payload,
                    result,
                    label=spec_payload.get("label", ""),
                    flush=False,
                )
                cache_dirty = True
            except Exception:
                print(
                    f"warning: shared-cache writeback failed for {task_id}:\n"
                    f"{traceback.format_exc()}",
                    flush=True,
                )
        outcome: dict[str, Any] = {"id": task_id, "result": result}
    except Exception:
        # Report the failure to the submitter instead of dying silently —
        # a lost task would cost a whole lease + retry before erroring.
        task_id = str(envelope.get("id", "unknown"))
        outcome = {"id": task_id, "error": traceback.format_exc()}
    # Attempts ride along so the submitter can account for every worker
    # death this task survived, whoever did the requeuing.
    outcome["attempts"] = int(envelope.get("attempts", 0) or 0)
    # The result just cost a whole simulation — a transient broker blip
    # on the report must not crash the worker and throw it away.  Retry
    # across roughly a lease (heartbeats have stopped, so a re-claim
    # starts after lease_s anyway); past that the queue's retry budget
    # re-runs the task and this copy is surplus.
    for remaining in range(9, -1, -1):
        try:
            client.complete(token, outcome)
            break
        except ConnectionError:
            if not remaining:
                print(
                    f"warning: could not report result for {task_id}; "
                    "dropping it (the queue's retry budget re-runs the task)",
                    flush=True,
                )
                break
            time.sleep(lease_s / 8.0)
    return cache_dirty


def drain(
    client: Any,
    max_tasks: int | None = None,
    idle_timeout_s: float | None = None,
    poll_interval_s: float = 0.05,
    exit_when_empty: bool = False,
    cache: "ResultCache | None" = None,
) -> int:
    """Drain tasks from a queue client; returns how many were executed.

    Runs until ``max_tasks`` tasks were executed, the queue has stayed
    empty for ``idle_timeout_s``, or — with ``exit_when_empty`` — the
    first moment no pending task is found and no expired claim could be
    recovered.  With no stop condition it drains forever (the long-lived
    remote-worker mode).

    Shared-cache writebacks are batched: payload files land atomically
    per task, but the O(entries) index flush is deferred to idle moments
    and to exit, so a busy worker never pays an index rewrite per cell.
    """
    executed = 0
    cache_dirty = False
    idle_since = time.monotonic()
    # Idle-time lease sweeps are throttled like the submitter's: a fleet
    # polling a busy NFS queue at 20 Hz must not scandir-and-parse every
    # claimed envelope on every empty tick.
    recover_every = max(poll_interval_s, default_lease_s() / 8.0)
    next_recover = 0.0
    # Consecutive empty claims back off exponentially (jittered, capped
    # well below a lease) — an idle fleet parked on a shared broker
    # between submissions must not keep hammering it at 20 Hz; the first
    # task that lands resets to the base interval.
    idle_backoff = PollBackoff(
        poll_interval_s,
        max(poll_interval_s, min(default_lease_s() / 4.0, 2.0)),
    )

    def flush_cache() -> None:
        nonlocal cache_dirty
        if cache is not None and cache_dirty:
            try:
                cache.flush()
            except Exception:
                print(
                    f"warning: shared-cache flush failed:\n{traceback.format_exc()}",
                    flush=True,
                )
            cache_dirty = False

    try:
        while max_tasks is None or executed < max_tasks:
            outage = False
            try:
                task = client.claim()
            except ConnectionError:
                # A long-lived fleet worker outlives broker restarts:
                # an unreachable broker is an empty queue with backoff,
                # not a crash (short-lived --exit-when-empty drainers
                # still exit below, and their submitter takes it from
                # there).
                task = None
                outage = True
            if task is None:
                # Self-healing before giving up: an expired claim
                # (somebody's dead worker) is pending work too.
                if not outage and time.monotonic() >= next_recover:
                    next_recover = time.monotonic() + recover_every
                    if client.recover():
                        continue
                flush_cache()
                if exit_when_empty:
                    break
                if (
                    idle_timeout_s is not None
                    and time.monotonic() - idle_since > idle_timeout_s
                ):
                    break
                delay = idle_backoff.next_delay()
                time.sleep(max(delay, 0.5) if outage else delay)
                continue
            envelope, token = task
            idle_backoff.reset()
            _chaos_kill(str(envelope.get("id", "")))
            cache_dirty = _execute(client, envelope, token, cache) or cache_dirty
            executed += 1
            idle_since = time.monotonic()
    finally:
        flush_cache()
    return executed


def drain_queue(
    queue_dir: str | os.PathLike[str],
    max_tasks: int | None = None,
    idle_timeout_s: float | None = None,
    poll_interval_s: float = 0.05,
    exit_when_empty: bool = False,
    cache: "ResultCache | None" = None,
    match: str = "",
) -> int:
    """Drain a shared-directory queue (see :func:`drain`)."""
    return drain(
        FileQueueClient(queue_dir, match=match),
        max_tasks=max_tasks,
        idle_timeout_s=idle_timeout_s,
        poll_interval_s=poll_interval_s,
        exit_when_empty=exit_when_empty,
        cache=cache,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiment.worker",
        description="Drain a repro work queue — a shared directory "
        "(repro.experiment.backends.WorkQueueBackend) or an HTTP broker "
        "(repro.experiment.broker).",
    )
    parser.add_argument(
        "queue_dir",
        nargs="?",
        default=None,
        help="the shared queue directory (omit when using --broker)",
    )
    parser.add_argument(
        "--broker",
        default=None,
        metavar="URL",
        help="drain this HTTP broker instead of a shared directory",
    )
    parser.add_argument(
        "--max-tasks", type=int, default=None, help="exit after this many tasks"
    )
    parser.add_argument(
        "--idle-timeout-s",
        type=float,
        default=None,
        help="exit after the queue has been empty for this long",
    )
    parser.add_argument(
        "--poll-interval-s", type=float, default=0.05, help="queue scan interval"
    )
    parser.add_argument(
        "--exit-when-empty",
        action="store_true",
        help="exit the first time no pending task is found",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="also write every computed result into this shared ResultCache",
    )
    parser.add_argument(
        "--match",
        default="",
        help="only claim task ids starting with this prefix "
        "(used by submitters' own drainers to leave other submissions alone)",
    )
    args = parser.parse_args(argv)
    if (args.queue_dir is None) == (args.broker is None):
        parser.error("exactly one of queue_dir or --broker is required")
    cache = None
    if args.cache_dir:
        from repro.experiment.cache import ResultCache

        cache = ResultCache(args.cache_dir)
    if args.broker:
        client: Any = BrokerQueueClient(args.broker, match=args.match)
        source = args.broker
    else:
        client = FileQueueClient(args.queue_dir, match=args.match)
        source = args.queue_dir
    try:
        executed = drain(
            client,
            max_tasks=args.max_tasks,
            idle_timeout_s=args.idle_timeout_s,
            poll_interval_s=args.poll_interval_s,
            exit_when_empty=args.exit_when_empty,
            cache=cache,
        )
    except PermissionError as exc:
        # BrokerAuthError: a rejected token never heals by retrying —
        # refuse to run rather than spin against 401s.
        print(
            f"error: the broker refused this worker's credentials: {exc}",
            flush=True,
        )
        return 2
    print(f"drained {executed} task(s) from {source}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
