"""Work-queue drainer: ``python -m repro.experiment.worker <queue_dir>``.

The executable half of :class:`repro.experiment.backends.WorkQueueBackend`.
A worker watches ``<queue_dir>/tasks/`` for task files (``{"id": ...,
"spec": <canonical spec dict>}``), claims one by atomically renaming it
into ``claimed/`` — the rename is the lock; exactly one claimant wins —
runs :func:`repro.experiment.backends.run_spec_payload` on the spec, and
writes ``{"id": ..., "result": <result dict>}`` (or ``{"id": ...,
"error": <traceback>}``) into ``results/``.

Any number of workers on any hosts sharing the directory can drain the
same queue; determinism is the engine's, not the scheduler's — a spec's
result payload is byte-identical no matter which worker ran it.  With
``--cache-dir`` every computed result is also written into a shared
content-addressed :class:`repro.experiment.cache.ResultCache`
(concurrent-writer-safe), so a fleet of workers warms one store as a
side effect of draining the queue — including the store's measured-cost
ledger (each writeback records the cell's simulation wall clock), which
future submissions' sweep planners use to dispatch slowest-first by
observed cost rather than heuristic.

Typical remote session::

    # on each worker host (shared filesystem or synced directory):
    python -m repro.experiment.worker /mnt/sweeps/queue \\
        --cache-dir /mnt/sweeps/cache

    # on the submitting host:
    BatchRunner(specs, backend=WorkQueueBackend("/mnt/sweeps/queue",
                                                workers=0)).run()
"""

from __future__ import annotations

import argparse
import json
import os
import time
import traceback
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.experiment.backends import (
    CLAIMED_DIR,
    RESULTS_DIR,
    TASKS_DIR,
    _atomic_write_json,
    ensure_queue_dirs,
    run_spec_payload,
)

if TYPE_CHECKING:
    from repro.experiment.cache import ResultCache

__all__ = ["claim_next_task", "drain_queue", "main"]


def claim_next_task(root: Path, match: str = "") -> Path | None:
    """Claim the oldest pending task, or ``None`` when the queue is empty.

    Claiming renames the task file into ``claimed/``; the rename either
    succeeds (this worker owns the task) or raises because another
    worker got there first, in which case the next candidate is tried.
    ``match`` restricts claims to task files whose name starts with that
    prefix — how a submitter's own short-lived drainers stay off other
    submitters' tasks in a shared directory.
    """
    tasks_dir = root / TASKS_DIR
    try:
        candidates = sorted(
            p
            for p in tasks_dir.iterdir()
            if p.suffix == ".json" and p.name.startswith(match)
        )
    except OSError:
        return None
    for candidate in candidates:
        claimed = root / CLAIMED_DIR / candidate.name
        try:
            os.replace(candidate, claimed)
        except OSError:
            continue  # lost the race; try the next task
        return claimed
    return None


def _execute(claimed: Path, root: Path, cache: "ResultCache | None") -> bool:
    """Run one claimed task; returns True when the shared cache is dirty
    (a payload was written with its index flush deferred to the caller)."""
    cache_dirty = False
    try:
        with open(claimed, encoding="utf-8") as fh:
            envelope = json.load(fh)
        task_id = str(envelope["id"])
        spec_payload: dict[str, Any] = envelope["spec"]
        result = run_spec_payload(spec_payload)
        if cache is not None:
            # Shared-store writeback: content-addressed and atomic, so
            # any number of workers can target one cache directory.  A
            # failing store (unwritable, full) must never poison the
            # computed result — the writeback is best-effort.
            try:
                cache.put_payload(
                    spec_payload,
                    result,
                    label=spec_payload.get("label", ""),
                    flush=False,
                )
                cache_dirty = True
            except Exception:
                print(
                    f"warning: shared-cache writeback failed for {task_id}:\n"
                    f"{traceback.format_exc()}",
                    flush=True,
                )
        outcome: dict[str, Any] = {"id": task_id, "result": result}
    except Exception:
        # Report the failure to the submitter instead of dying silently —
        # a lost task would hang the submitting BatchRunner until timeout.
        task_id = claimed.stem
        outcome = {"id": task_id, "error": traceback.format_exc()}
    _atomic_write_json(root / RESULTS_DIR / f"{task_id}.json", outcome)
    try:
        claimed.unlink()
    except OSError:
        pass
    return cache_dirty


def drain_queue(
    queue_dir: str | os.PathLike[str],
    max_tasks: int | None = None,
    idle_timeout_s: float | None = None,
    poll_interval_s: float = 0.05,
    exit_when_empty: bool = False,
    cache: "ResultCache | None" = None,
    match: str = "",
) -> int:
    """Drain tasks from ``queue_dir``; returns how many were executed.

    Runs until ``max_tasks`` tasks were executed, the queue has stayed
    empty for ``idle_timeout_s``, or — with ``exit_when_empty`` — the
    first moment no pending task is found.  With no stop condition it
    drains forever (the long-lived remote-worker mode).  ``match``
    restricts claims to task names with that prefix (see
    :func:`claim_next_task`).

    Shared-cache writebacks are batched: payload files land atomically
    per task, but the O(entries) index flush is deferred to idle moments
    and to exit, so a busy worker never pays an index rewrite per cell.
    """
    root = ensure_queue_dirs(queue_dir)
    executed = 0
    cache_dirty = False
    idle_since = time.monotonic()

    def flush_cache() -> None:
        nonlocal cache_dirty
        if cache is not None and cache_dirty:
            try:
                cache.flush()
            except Exception:
                print(
                    f"warning: shared-cache flush failed:\n{traceback.format_exc()}",
                    flush=True,
                )
            cache_dirty = False

    try:
        while max_tasks is None or executed < max_tasks:
            claimed = claim_next_task(root, match)
            if claimed is None:
                flush_cache()
                if exit_when_empty:
                    break
                if (
                    idle_timeout_s is not None
                    and time.monotonic() - idle_since > idle_timeout_s
                ):
                    break
                time.sleep(poll_interval_s)
                continue
            cache_dirty = _execute(claimed, root, cache) or cache_dirty
            executed += 1
            idle_since = time.monotonic()
    finally:
        flush_cache()
    return executed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiment.worker",
        description="Drain a repro work-queue directory "
        "(see repro.experiment.backends.WorkQueueBackend).",
    )
    parser.add_argument("queue_dir", help="the shared queue directory")
    parser.add_argument(
        "--max-tasks", type=int, default=None, help="exit after this many tasks"
    )
    parser.add_argument(
        "--idle-timeout-s",
        type=float,
        default=None,
        help="exit after the queue has been empty for this long",
    )
    parser.add_argument(
        "--poll-interval-s", type=float, default=0.05, help="queue scan interval"
    )
    parser.add_argument(
        "--exit-when-empty",
        action="store_true",
        help="exit the first time no pending task is found",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="also write every computed result into this shared ResultCache",
    )
    parser.add_argument(
        "--match",
        default="",
        help="only claim task files whose name starts with this prefix "
        "(used by submitters' own drainers to leave other submissions alone)",
    )
    args = parser.parse_args(argv)
    cache = None
    if args.cache_dir:
        from repro.experiment.cache import ResultCache

        cache = ResultCache(args.cache_dir)
    executed = drain_queue(
        args.queue_dir,
        max_tasks=args.max_tasks,
        idle_timeout_s=args.idle_timeout_s,
        poll_interval_s=args.poll_interval_s,
        exit_when_empty=args.exit_when_empty,
        cache=cache,
        match=args.match,
    )
    print(f"drained {executed} task(s) from {args.queue_dir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
