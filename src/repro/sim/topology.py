"""Topology factories: interfering link pairs, chains, grids and the
18-node synthetic testbed.

The paper classifies interfering link pairs into three classes (Garetto
et al.):

* **CS** (Carrier Sense) — the two transmitters sense each other and
  time-share the channel;
* **IA** (Information Asymmetry) — the transmitters cannot sense each
  other but one receiver hears the other link's transmitter (classic
  hidden terminal with asymmetric outcomes, capture dependent);
* **NF** (Near-Far) — the transmitters cannot sense each other and each
  receiver hears the other link's transmitter.

The factory functions below place four nodes so that the default
propagation model (log-distance, exponent 3.3, no shadowing) lands the
pair in the requested class; :func:`classify_pair` verifies the class
from the medium's actual carrier-sense relations, which is what the test
suite asserts against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mac.medium import WirelessMedium
from repro.phy.propagation import LogDistancePathLoss
from repro.phy.radio import RadioConfig


Link = tuple[int, int]
Positions = dict[int, tuple[float, float]]


@dataclass(frozen=True)
class LinkPairTopology:
    """A two-link topology: node positions plus the two directed links.

    Nodes are always numbered 0..3 with link 1 = (0, 1) and link 2 = (2, 3).
    """

    positions: Positions
    link1: Link = (0, 1)
    link2: Link = (2, 3)
    label: str = ""

    @property
    def links(self) -> list[Link]:
        return [self.link1, self.link2]


def no_shadowing_propagation() -> LogDistancePathLoss:
    """The deterministic propagation model used for controlled pair topologies."""
    return LogDistancePathLoss(shadowing_sigma_db=0.0)


# --------------------------------------------------------------------------
# Link-pair factories
# --------------------------------------------------------------------------
def carrier_sense_pair(
    link_len_m: float = 40.0, tx_gap_m: float = 100.0
) -> LinkPairTopology:
    """Two links whose transmitters are within carrier-sense range."""
    positions = {
        0: (0.0, 0.0),
        1: (link_len_m, 0.0),
        2: (tx_gap_m, 0.0),
        3: (tx_gap_m + link_len_m, 0.0),
    }
    return LinkPairTopology(positions=positions, label="CS")


def information_asymmetry_pair(
    link1_len_m: float = 60.0,
    link2_len_m: float = 50.0,
    tx_gap_m: float = 280.0,
) -> LinkPairTopology:
    """Hidden-terminal pair where only receiver 1 hears transmitter 2.

    Transmitter 0 and transmitter 2 are out of carrier-sense range; node 1
    (receiver of link 1) sits between them close enough to hear node 2,
    while receiver 3 is beyond the interference range of node 0.
    """
    positions = {
        0: (0.0, 0.0),
        1: (link1_len_m, 0.0),
        2: (tx_gap_m, 0.0),
        3: (tx_gap_m + link2_len_m, 0.0),
    }
    return LinkPairTopology(positions=positions, label="IA")


def near_far_pair(
    link_len_m: float = 70.0, tx_gap_m: float = 290.0
) -> LinkPairTopology:
    """Near-far pair: both receivers hear the opposite transmitter.

    The two receivers sit between the two transmitters, each closer to its
    own transmitter but still within interference range of the other one.
    """
    positions = {
        0: (0.0, 0.0),
        1: (link_len_m, 0.0),
        2: (tx_gap_m, 0.0),
        3: (tx_gap_m - link_len_m, 0.0),
    }
    return LinkPairTopology(positions=positions, label="NF")


def reduced_carrier_sense_radio(data_rate_mbps: float = 11, cs_threshold_dbm: float = -85.0) -> RadioConfig:
    """Radio configuration with a shorter carrier-sense range.

    Real 802.11 cards expose (and differ in) their carrier-sense/defer
    threshold; a less sensitive setting shrinks the carrier-sense range
    relative to the interference range, which is what produces the
    hidden-terminal (IA/NF) pathologies studied in Section 4.3.  Pair
    experiments that need pronounced IA starvation or partial capture use
    this radio together with tighter pair geometries.
    """
    from repro.phy.radio import rate_from_mbps

    return RadioConfig(cs_threshold_dbm=cs_threshold_dbm, data_rate=rate_from_mbps(data_rate_mbps))


def independent_pair(separation_m: float = 900.0, link_len_m: float = 40.0) -> LinkPairTopology:
    """Two links far enough apart not to interfere at all."""
    positions = {
        0: (0.0, 0.0),
        1: (link_len_m, 0.0),
        2: (separation_m, 0.0),
        3: (separation_m + link_len_m, 0.0),
    }
    return LinkPairTopology(positions=positions, label="IND")


def random_link_pair(
    rng: np.random.Generator,
    area_m: float = 500.0,
    min_link_m: float = 20.0,
    max_link_m: float = 90.0,
) -> LinkPairTopology:
    """A random two-link topology used to build LIR distributions (Fig. 3).

    Each link's transmitter is placed uniformly in the square and its
    receiver at a uniform distance/bearing, so the pair may fall in any of
    the CS / IA / NF / independent classes.
    """
    positions: Positions = {}
    for index, tx_node in enumerate((0, 2)):
        tx = rng.uniform(0.0, area_m, size=2)
        angle = rng.uniform(0.0, 2 * np.pi)
        length = rng.uniform(min_link_m, max_link_m)
        rx = tx + length * np.array([np.cos(angle), np.sin(angle)])
        positions[tx_node] = (float(tx[0]), float(tx[1]))
        positions[tx_node + 1] = (float(rx[0]), float(rx[1]))
    return LinkPairTopology(positions=positions, label="RANDOM")


def classify_pair(medium: WirelessMedium, link1: Link, link2: Link) -> str:
    """Classify a link pair as CS, IA, NF or IND from carrier-sense relations."""
    t1, r1 = link1
    t2, r2 = link2
    if medium.can_sense(t1, t2) or medium.can_sense(t2, t1):
        return "CS"
    r1_hears = medium.can_sense(r1, t2)
    r2_hears = medium.can_sense(r2, t1)
    if r1_hears and r2_hears:
        return "NF"
    if r1_hears or r2_hears:
        return "IA"
    return "IND"


def bounding_box(
    positions: Positions, margin_m: float = 0.0
) -> tuple[float, float, float, float]:
    """Axis-aligned bounding box of a placement, expanded by ``margin_m``.

    Returns ``(x_min, x_max, y_min, y_max)``.  Mobility models use this
    as the movement area: waypoints are drawn inside it and drifting
    nodes are clipped to it, so a trajectory can roam past the initial
    hull by at most the margin without wandering off to infinity.
    """
    if not positions:
        raise ValueError("bounding_box needs at least one position")
    xs = [x for x, _ in positions.values()]
    ys = [y for _, y in positions.values()]
    return (
        min(xs) - margin_m,
        max(xs) + margin_m,
        min(ys) - margin_m,
        max(ys) + margin_m,
    )


# --------------------------------------------------------------------------
# Multi-hop topologies
# --------------------------------------------------------------------------
def chain_topology(num_nodes: int, spacing_m: float = 55.0) -> Positions:
    """A linear chain of ``num_nodes`` nodes (classic multi-hop scenario)."""
    if num_nodes < 2:
        raise ValueError("a chain needs at least two nodes")
    return {i: (i * spacing_m, 0.0) for i in range(num_nodes)}


def grid_topology(rows: int, cols: int, spacing_m: float = 60.0) -> Positions:
    """A rows-by-cols grid of nodes."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    positions: Positions = {}
    for r in range(rows):
        for c in range(cols):
            positions[r * cols + c] = (c * spacing_m, r * spacing_m)
    return positions


def ring_topology(num_nodes: int, radius_m: float = 150.0) -> Positions:
    """``num_nodes`` nodes evenly spaced on a circle of radius ``radius_m``.

    Node 0 sits at angle 0 (east) and ids increase counter-clockwise; the
    circle is centered at ``(radius_m, radius_m)`` so all coordinates stay
    non-negative.  Rings make every node exactly two-degree, which forces
    traffic around the circumference and produces chains of mutually
    interfering links with no routing shortcuts.
    """
    if num_nodes < 3:
        raise ValueError("a ring needs at least three nodes")
    if radius_m <= 0:
        raise ValueError("radius_m must be positive")
    positions: Positions = {}
    for i in range(num_nodes):
        angle = 2.0 * np.pi * i / num_nodes
        positions[i] = (
            radius_m + radius_m * float(np.cos(angle)),
            radius_m + radius_m * float(np.sin(angle)),
        )
    return positions


def random_disk_topology(
    num_nodes: int,
    radius_m: float = 200.0,
    seed: int = 0,
    min_separation_m: float = 25.0,
    max_tries: int = 4000,
) -> Positions:
    """``num_nodes`` nodes placed uniformly at random inside a disk.

    Placement is rejection-sampled so no two nodes sit closer than
    ``min_separation_m`` (co-located radios produce degenerate SINR
    geometry).  The draw uses its own named RNG stream derived from
    ``seed`` (see :func:`repro.engine.rng_spawn_key`), so the layout is a
    pure function of the arguments and independent of any other stream a
    scenario consumes.
    """
    from repro.engine import rng_spawn_key

    if num_nodes < 2:
        raise ValueError("a random-disk topology needs at least two nodes")
    if radius_m <= 0:
        raise ValueError("radius_m must be positive")
    if min_separation_m < 0:
        raise ValueError("min_separation_m must be non-negative")
    rng = np.random.default_rng(
        np.random.SeedSequence(
            entropy=seed, spawn_key=(rng_spawn_key("topology.random_disk"),)
        )
    )
    positions: Positions = {}
    placed: list[tuple[float, float]] = []
    separation = min_separation_m
    tries = 0
    while len(placed) < num_nodes:
        if tries >= max_tries:
            # The disk is too crowded for the requested separation: relax
            # it geometrically rather than failing — a dense layout is a
            # legitimate (if harsh) interference scenario.
            separation *= 0.5
            tries = 0
        tries += 1
        # Uniform over the disk area: radius ~ sqrt(U), angle ~ U.
        r = radius_m * float(np.sqrt(rng.uniform()))
        theta = float(rng.uniform(0.0, 2.0 * np.pi))
        x = radius_m + r * float(np.cos(theta))
        y = radius_m + r * float(np.sin(theta))
        if any((x - px) ** 2 + (y - py) ** 2 < separation**2 for px, py in placed):
            continue
        placed.append((x, y))
        tries = 0  # only consecutive rejections count towards relaxing
    for node, point in enumerate(placed):
        positions[node] = point
    return positions


def binary_tree_topology(depth: int, spacing_m: float = 60.0) -> Positions:
    """A complete binary tree of ``depth`` levels (``2**depth - 1`` nodes).

    Node ids are assigned in level order (0 is the root, node ``i`` has
    children ``2i + 1`` and ``2i + 2``), the classic sink-tree layout of
    a mesh access network: leaves generate traffic that aggregates
    towards the root gateway.  Level ``l`` sits at ``y = l * spacing_m``
    with its nodes spread evenly in x, so sibling subtrees move apart as
    the tree deepens.
    """
    if depth < 2:
        raise ValueError("a binary tree needs at least two levels")
    if spacing_m <= 0:
        raise ValueError("spacing_m must be positive")
    positions: Positions = {}
    leaves = 2 ** (depth - 1)
    width = leaves * spacing_m
    node = 0
    for level in range(depth):
        count = 2**level
        step = width / count
        for j in range(count):
            positions[node] = ((j + 0.5) * step, level * spacing_m)
            node += 1
    return positions


def parking_lot_topology(
    num_nodes: int, spacing_m: float = 60.0, stub_m: float = 45.0
) -> Positions:
    """The classic parking-lot layout: a backbone chain plus entry stubs.

    Backbone nodes ``0 .. num_nodes-1`` form a chain along the x-axis
    (spacing ``spacing_m``); each backbone node except the last carries a
    stub node ``num_nodes + i`` hanging ``stub_m`` off the lot road.  One
    long flow down the backbone plus one-hop flows entering at every stub
    reproduces the cascading-contention workload the name comes from.
    """
    if num_nodes < 2:
        raise ValueError("a parking lot needs a backbone of at least two nodes")
    if spacing_m <= 0:
        raise ValueError("spacing_m must be positive")
    if stub_m <= 0:
        raise ValueError("stub_m must be positive")
    positions: Positions = {
        i: (i * spacing_m, 0.0) for i in range(num_nodes)
    }
    for i in range(num_nodes - 1):
        positions[num_nodes + i] = (i * spacing_m, stub_m)
    return positions


#: Hand-placed layout mimicking the paper's 18-node testbed: three office
#: building clusters plus a parking-lot strip.  Nodes within a cluster are
#: a few tens of metres apart (strong, indoor-like links); clusters are
#: 100-250 m apart, so inter-building links are marginal or absent and
#: traffic between clusters must take multi-hop routes through the
#: parking-lot relays.
_TESTBED_CLUSTERS: dict[str, tuple[tuple[float, float], list[tuple[float, float]]]] = {
    "building_a": ((60.0, 60.0), [(-25.0, -20.0), (5.0, -30.0), (-30.0, 15.0), (20.0, 10.0), (0.0, 35.0), (30.0, -5.0)]),
    "building_b": ((330.0, 80.0), [(-30.0, -15.0), (0.0, -30.0), (25.0, 5.0), (-15.0, 25.0), (35.0, 30.0), (5.0, 45.0)]),
    "building_c": ((210.0, 300.0), [(-25.0, -10.0), (10.0, -25.0), (25.0, 15.0), (-10.0, 25.0)]),
    "parking_lot": ((175.0, 150.0), [(-40.0, -30.0), (40.0, 25.0)]),
}

_TESTBED_BASE_POSITIONS: Positions = {}
_node_counter = 0
for _cluster, (_center, _offsets) in _TESTBED_CLUSTERS.items():
    for _dx, _dy in _offsets:
        _TESTBED_BASE_POSITIONS[_node_counter] = (_center[0] + _dx, _center[1] + _dy)
        _node_counter += 1
del _cluster, _center, _offsets, _dx, _dy, _node_counter


def testbed_positions(seed: int = 0, jitter_m: float = 6.0) -> Positions:
    """The 18-node synthetic testbed layout with a small seeded jitter."""
    rng = np.random.default_rng(seed)
    positions: Positions = {}
    for node, (x, y) in _TESTBED_BASE_POSITIONS.items():
        dx, dy = rng.uniform(-jitter_m, jitter_m, size=2)
        positions[node] = (x + dx, y + dy)
    return positions


def testbed_propagation(seed: int = 0, shadowing_sigma_db: float = 6.0) -> LogDistancePathLoss:
    """Propagation model for the testbed: shadowing on, for link diversity."""
    return LogDistancePathLoss(shadowing_sigma_db=shadowing_sigma_db, seed=seed)


def default_radio(data_rate_mbps: float = 11) -> RadioConfig:
    """Radio configuration matching the paper's testbed settings."""
    from repro.phy.radio import rate_from_mbps

    return RadioConfig(tx_power_dbm=19.0, data_rate=rate_from_mbps(data_rate_mbps))
