"""Composable scenario generators: topology x workload x radio profiles.

The paper's online optimizer is only convincing when exercised across
many interference structures.  This module opens that space by breaking
scenario construction into three orthogonal, independently registered
axes:

* **Topology generators** map a parameter dict plus a seed to node
  positions (:data:`Positions`).  Built-ins cover the classic mesh
  layouts — chain/line, grid, ring, random-disk, binary-tree,
  parking-lot — plus the paper's 18-node testbed and explicit
  coordinates.  Register new ones with :func:`register_topology`.
* **Workload generators** map a built :class:`MeshNetwork` plus demand
  parameters to a list of :class:`GeneratedFlow`\\ s over ETT-routed
  paths: saturated-UDP random demands, TCP bulk transfers, mixed
  TCP/UDP, and gravity-style weighted demands.  Register new ones with
  :func:`register_workload`.
* **Radio profiles** are named radio parameter presets
  (:func:`radio_profile_config`), including the reduced-carrier-sense
  ``hidden_terminal`` configuration the Figure 13 starvation scenario is
  built on.

Everything here is deterministic: workload and placement randomness
come from named RNG streams spawned via
:func:`repro.engine.rng_spawn_key`, so the same ``(generator, params,
seed)`` triple always produces the same scenario — which is what lets
the experiment layer (:mod:`repro.experiment.specs`) serialize generator
name + params into a canonical spec dict, content-address it with
``spec_digest``, and replay it bit-identically on any execution backend.

The registries are the single source of truth for generator names; the
spec layer validates against them and every unknown-name lookup raises
listing the registered names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np

from repro.engine import rng_spawn_key
from repro.net.routing import Router, ett
from repro.phy.radio import RATE_1MBPS, RATE_11MBPS, RadioConfig, rate_from_mbps
from repro.sim.network import MeshNetwork
from repro.sim.topology import (
    binary_tree_topology,
    chain_topology,
    grid_topology,
    parking_lot_topology,
    random_disk_topology,
    ring_topology,
    testbed_positions,
)

Link = tuple[int, int]
Positions = dict[int, tuple[float, float]]

__all__ = [
    "GeneratedFlow",
    "WorkloadContext",
    "register_topology",
    "register_workload",
    "topology_names",
    "workload_names",
    "topology_description",
    "workload_description",
    "build_topology",
    "generate_workload",
    "workload_rng",
    "radio_profile_names",
    "radio_profile_params",
    "radio_profile_config",
    "radio_profile_is_adaptive",
    "ADAPTIVE_RADIO_PROFILES",
    "assign_link_rates",
    "ett_link_weights",
    "ground_truth_link_error",
    "topology_node_count",
]


# ---------------------------------------------------------------------------
# Shared link-quality primitives (ground truth the builders route over)
# ---------------------------------------------------------------------------
def ground_truth_link_error(
    network: MeshNetwork, link: Link, frame_bytes: int = 1500
) -> float:
    """Channel (non-collision) error probability of a directed link.

    Computed from the medium's error model at the link's SNR — the same
    quantity the link would exhibit with no interfering traffic.
    """
    medium = network.medium
    override = medium.link_error_override.get(link)
    if override is not None:
        return min(1.0, override)
    rate = network.link_rate(link)
    snr = medium.rx_power_dbm(*link) - medium.capture.noise_floor_dbm
    if medium.rx_power_dbm(*link) < rate.rx_sensitivity_dbm:
        return 1.0
    return medium.error_model.packet_error_probability(snr, rate, frame_bytes)


def ett_link_weights(
    network: MeshNetwork,
    packet_bytes: int = 1500,
    max_loss: float = 0.8,
    min_snr_margin_db: float = 14.0,
) -> dict[Link, float]:
    """ETT weight of every usable directed link in the network.

    Links whose SNR sits less than ``min_snr_margin_db`` above their
    modulation's requirement are excluded: they may look loss-free in
    isolation but any co-channel interference destroys them, so neither a
    real routing metric (whose ETX is measured during operation) nor a
    careful operator would route over them.
    """
    weights: dict[Link, float] = {}
    medium = network.medium
    for tx in network.node_ids:
        for rx in network.node_ids:
            if tx == rx:
                continue
            link = (tx, rx)
            rate = network.link_rate(link)
            snr = medium.rx_power_dbm(tx, rx) - medium.capture.noise_floor_dbm
            if snr < rate.min_sinr_db + min_snr_margin_db:
                continue
            p_fwd = ground_truth_link_error(network, link, packet_bytes)
            p_rev = ground_truth_link_error(network, (rx, tx), 60)
            if p_fwd > max_loss:
                continue
            weights[link] = ett(p_fwd, p_rev, packet_bytes, network.link_rate(link))
    return weights


def assign_link_rates(
    network: MeshNetwork, rate_mode: str, rng: np.random.Generator
) -> None:
    """Fix per-link modulations: all 1 Mb/s, all 11 Mb/s or a mix.

    In mixed mode strong links run at 11 Mb/s and marginal links drop to
    1 Mb/s, which is what a rate-adaptation-disabled operator would
    configure by hand (and mirrors the paper's (1, 11) configurations).
    """
    for tx in network.node_ids:
        for rx in network.node_ids:
            if tx == rx:
                continue
            if rate_mode == "1":
                network.set_link_rate((tx, rx), RATE_1MBPS)
            elif rate_mode == "11":
                network.set_link_rate((tx, rx), RATE_11MBPS)
            else:
                snr = network.medium.rx_power_dbm(tx, rx) - network.medium.capture.noise_floor_dbm
                threshold = 24.0 + float(rng.uniform(-2.0, 2.0))
                rate = RATE_11MBPS if snr >= threshold else RATE_1MBPS
                network.set_link_rate((tx, rx), rate)


# ---------------------------------------------------------------------------
# Topology generators
# ---------------------------------------------------------------------------
TopologyBuilder = Callable[[Mapping[str, Any], int], Positions]


@dataclass(frozen=True)
class _Registration:
    build: Callable[..., Any]
    description: str


_TOPOLOGIES: dict[str, _Registration] = {}
_WORKLOADS: dict[str, _Registration] = {}


def register_topology(
    name: str, *, description: str = ""
) -> Callable[[TopologyBuilder], TopologyBuilder]:
    """Register ``builder(params, seed) -> Positions`` under ``name``.

    ``params`` is the plain-dict form of the experiment layer's
    ``TopologySpec`` (builders read the keys they care about and fall
    back to the spec defaults), so a registered generator is immediately
    drivable from a serialized spec.
    """

    def decorator(builder: TopologyBuilder) -> TopologyBuilder:
        if name in _TOPOLOGIES:
            raise ValueError(f"topology generator {name!r} is already registered")
        _TOPOLOGIES[name] = _Registration(
            build=builder, description=description or (builder.__doc__ or "").strip()
        )
        return builder

    return decorator


def register_workload(
    name: str, *, description: str = ""
) -> Callable[
    [Callable[["WorkloadContext"], list["GeneratedFlow"]]],
    Callable[["WorkloadContext"], list["GeneratedFlow"]],
]:
    """Register ``builder(ctx) -> [GeneratedFlow, ...]`` under ``name``."""

    def decorator(builder):
        if name in _WORKLOADS:
            raise ValueError(f"workload generator {name!r} is already registered")
        _WORKLOADS[name] = _Registration(
            build=builder, description=description or (builder.__doc__ or "").strip()
        )
        return builder

    return decorator


def topology_names() -> list[str]:
    """Every registered topology generator name, sorted."""
    return sorted(_TOPOLOGIES)


def workload_names() -> list[str]:
    """Every registered workload generator name, sorted."""
    return sorted(_WORKLOADS)


def topology_description(name: str) -> str:
    """The one-line description a topology generator registered with."""
    return _lookup(_TOPOLOGIES, name, "topology generator").description


def workload_description(name: str) -> str:
    """The one-line description a workload generator registered with."""
    return _lookup(_WORKLOADS, name, "workload generator").description


def _lookup(
    registry: dict[str, _Registration], name: str, kind: str
) -> _Registration:
    if name not in registry:
        raise KeyError(
            f"unknown {kind} {name!r}; registered: {sorted(registry)}"
        )
    return registry[name]


def build_topology(
    kind: str, params: Mapping[str, Any] | None = None, seed: int = 0
) -> Positions:
    """Materialize node positions via the registered generator ``kind``."""
    registration = _lookup(_TOPOLOGIES, kind, "topology generator")
    return registration.build(dict(params or {}), seed)


def topology_node_count(kind: str, params: Mapping[str, Any] | None = None) -> int:
    """Node count a generator would produce, without building positions.

    The sweep planner's cost heuristic uses this so generated scenarios
    are ordered by their real size rather than a fallback guess.  It is
    deliberately lenient — an unknown or third-party kind costs as
    testbed-sized (18 nodes) instead of raising, because payloads may be
    planned in a process that never registered the generator.
    """
    params = dict(params or {})
    if kind in ("chain", "line", "ring", "random_disk"):
        return int(params.get("num_nodes", 3))
    if kind == "grid":
        return int(params.get("rows", 2)) * int(params.get("cols", 2))
    if kind == "binary_tree":
        return 2 ** int(params.get("depth", 3)) - 1
    if kind == "parking_lot":
        return 2 * int(params.get("num_nodes", 3)) - 1
    if kind == "testbed":
        return 18
    if kind == "positions":
        return max(len(params.get("positions", ())), 2)
    return 18  # third-party/unknown generator: assume testbed-sized


@register_topology("chain", description="N nodes in a line (classic multi-hop chain)")
def _chain(params: Mapping[str, Any], seed: int) -> Positions:
    return chain_topology(
        int(params.get("num_nodes", 3)), spacing_m=float(params.get("spacing_m", 60.0))
    )


@register_topology("line", description="alias of 'chain': N nodes in a line")
def _line(params: Mapping[str, Any], seed: int) -> Positions:
    return _chain(params, seed)


@register_topology("grid", description="rows x cols lattice of nodes")
def _grid(params: Mapping[str, Any], seed: int) -> Positions:
    return grid_topology(
        int(params.get("rows", 2)),
        int(params.get("cols", 2)),
        spacing_m=float(params.get("spacing_m", 60.0)),
    )


@register_topology("ring", description="N nodes evenly spaced on a circle")
def _ring(params: Mapping[str, Any], seed: int) -> Positions:
    return ring_topology(
        int(params.get("num_nodes", 3)), radius_m=float(params.get("radius_m", 150.0))
    )


@register_topology(
    "random_disk",
    description="N nodes placed uniformly in a disk with a minimum separation",
)
def _random_disk(params: Mapping[str, Any], seed: int) -> Positions:
    return random_disk_topology(
        int(params.get("num_nodes", 3)),
        radius_m=float(params.get("radius_m", 150.0)),
        seed=seed,
        min_separation_m=float(params.get("min_separation_m", 25.0)),
    )


@register_topology(
    "binary_tree", description="complete binary tree aggregating towards a root gateway"
)
def _binary_tree(params: Mapping[str, Any], seed: int) -> Positions:
    return binary_tree_topology(
        int(params.get("depth", 3)), spacing_m=float(params.get("spacing_m", 60.0))
    )


@register_topology(
    "parking_lot", description="backbone chain with one entry stub per junction"
)
def _parking_lot(params: Mapping[str, Any], seed: int) -> Positions:
    return parking_lot_topology(
        int(params.get("num_nodes", 3)),
        spacing_m=float(params.get("spacing_m", 60.0)),
        stub_m=float(params.get("stub_m", 45.0)),
    )


@register_topology(
    "testbed", description="the paper's synthetic 18-node testbed layout"
)
def _testbed(params: Mapping[str, Any], seed: int) -> Positions:
    return testbed_positions(seed=seed, jitter_m=float(params.get("jitter_m", 6.0)))


@register_topology("positions", description="explicit (node, x, y) coordinates")
def _positions(params: Mapping[str, Any], seed: int) -> Positions:
    return {
        int(node): (float(x), float(y))
        for node, x, y in params.get("positions", ())
    }


# ---------------------------------------------------------------------------
# Radio profiles
# ---------------------------------------------------------------------------
#: Named radio parameter presets.  Values override :class:`RadioConfig`
#: defaults; the data/basic modulation rates are supplied by the caller
#: (scenarios carry their own ``data_rate_mbps``).
RADIO_PROFILES: dict[str, dict[str, float]] = {
    "default": {},
    # Reduced carrier-sense sensitivity: with the default -91 dBm CS
    # threshold every node of a short chain senses every other, which
    # masks hidden-terminal collisions.  Raising the threshold (a knob
    # real drivers expose) shrinks the carrier-sense range below two
    # hops — the data/ACK collision pattern of Shi et al. that the
    # Figure 13 TCP starvation scenario studies.
    "hidden_terminal": {"cs_threshold_dbm": -74.0},
    # Milder CS reduction used by the Section 4.3 pair pathologies.
    "reduced_cs": {"cs_threshold_dbm": -85.0},
    # Power variants: denser single-cell coverage vs. more spatial reuse.
    "high_power": {"tx_power_dbm": 25.0},
    "low_power": {"tx_power_dbm": 12.0},
    # SNR-threshold auto-rate: radio parameters are the defaults, but the
    # scenario builder assigns per-link modulations from the current SNR
    # (repro.sim.dynamics.apply_rate_adaptation) and re-assigns them on
    # every position epoch instead of freezing rates at build time.
    "rate_adaptation": {},
}

#: Profiles whose link rates track the channel instead of being frozen at
#: build time.  Their parameter dict must stay empty so
#: :func:`radio_profile_config` still yields a default radio; the
#: behavioural difference lives in the scenario builder, which calls
#: :func:`repro.sim.dynamics.apply_rate_adaptation` at build and on every
#: position epoch.
ADAPTIVE_RADIO_PROFILES: frozenset[str] = frozenset({"rate_adaptation"})


def radio_profile_is_adaptive(name: str) -> bool:
    """Whether a named profile re-selects link rates as the channel moves."""
    return name in ADAPTIVE_RADIO_PROFILES


def radio_profile_names() -> list[str]:
    """Every named radio profile, sorted."""
    return sorted(RADIO_PROFILES)


def radio_profile_params(name: str) -> dict[str, float]:
    """The parameter overrides of a named radio profile."""
    if name not in RADIO_PROFILES:
        raise KeyError(
            f"unknown radio profile {name!r}; registered: {radio_profile_names()}"
        )
    return dict(RADIO_PROFILES[name])


def radio_profile_config(
    name: str, data_rate_mbps: float = 11.0, basic_rate_mbps: float = 1.0
) -> RadioConfig:
    """A ready :class:`RadioConfig` for a named profile at the given rates."""
    params = radio_profile_params(name)
    return RadioConfig(
        data_rate=rate_from_mbps(data_rate_mbps),
        basic_rate=rate_from_mbps(basic_rate_mbps),
        **params,
    )


# ---------------------------------------------------------------------------
# Workload generators
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GeneratedFlow:
    """One declarative flow a workload generator produced.

    ``rate_bps`` follows ``MeshNetwork.add_udp_flow`` semantics: ``None``
    is a backlogged/saturating source, ``0.0`` starts idle until the
    controller programs it, and a positive value is a CBR source.  TCP
    flows are window-limited and ignore it.
    """

    transport: str
    path: tuple[int, ...]
    rate_bps: float | None = None
    payload_bytes: int = 1470
    mss_bytes: int = 1460


@dataclass
class WorkloadContext:
    """Everything a workload builder needs: the network, ETT routes and a
    generator-private RNG stream, plus the demand parameters."""

    network: MeshNetwork
    router: Router
    rng: np.random.Generator
    num_flows: int = 4
    max_hops: int = 4
    rate_bps: float | None = None
    tcp_fraction: float = 0.5
    payload_bytes: int = 1470
    mss_bytes: int = 1460
    demand_exponent: float = 1.0
    weight_tail: str = "uniform"
    tail_index: float = 1.5

    def routable_demands(self) -> list[tuple[int, int, list[int]]]:
        """Every ordered ``(src, dst, path)`` whose ETT route fits
        ``max_hops``, in deterministic (sorted node id) order."""
        demands: list[tuple[int, int, list[int]]] = []
        for src in self.network.node_ids:
            for dst in self.network.node_ids:
                if src == dst:
                    continue
                path = self.router.shortest_path(src, dst)
                if path is None:
                    continue
                if 1 <= len(path) - 1 <= self.max_hops:
                    demands.append((src, dst, path))
        return demands

    def sample_demand_indices(
        self,
        weights: "np.ndarray | None" = None,
        candidates: list[tuple[int, int, list[int]]] | None = None,
    ) -> tuple[list[tuple[int, int, list[int]]], list[int]]:
        """All routable demands plus ``num_flows`` sampled indices into
        them (all indices when fewer exist), without replacement and
        optionally biased by per-candidate ``weights``.  The indices are
        returned sorted, so selection order is deterministic given the
        RNG stream.  Generators that need per-demand metadata (gravity
        weights) use the indices; plain generators use
        :meth:`sample_demands`.
        """
        if candidates is None:
            candidates = self.routable_demands()
        if not candidates:
            raise RuntimeError(
                "no routable demands: every candidate route exceeds "
                f"max_hops={self.max_hops} or has no usable links — "
                "if the topology is sparse (large ring radius, wide "
                "random disk), shrink the geometry, drop data_rate_mbps "
                "to 1, or raise max_hops"
            )
        if len(candidates) <= self.num_flows:
            return candidates, list(range(len(candidates)))
        p = None
        if weights is not None:
            total = float(weights.sum())
            if total > 0:
                p = weights / total
        chosen = self.rng.choice(
            len(candidates), size=self.num_flows, replace=False, p=p
        )
        return candidates, sorted(int(index) for index in chosen)

    def sample_demands(self) -> list[tuple[int, int, list[int]]]:
        """``num_flows`` routable demands sampled uniformly without
        replacement (all of them when fewer exist)."""
        candidates, indices = self.sample_demand_indices()
        return [candidates[index] for index in indices]


def workload_rng(generator: str, seed: int) -> np.random.Generator:
    """The named, generator-private RNG stream for a workload draw.

    Spawned from ``seed`` with a CRC32 key of ``"workload.<generator>"``
    (:func:`repro.engine.rng_spawn_key`), so two generators never share a
    stream and adding draws to one cannot perturb another — the same
    discipline the simulation kernel uses for its components.
    """
    return np.random.default_rng(
        np.random.SeedSequence(
            entropy=seed, spawn_key=(rng_spawn_key(f"workload.{generator}"),)
        )
    )


def generate_workload(
    network: MeshNetwork,
    generator: str,
    seed: int = 0,
    router: Router | None = None,
    **params: Any,
) -> list[GeneratedFlow]:
    """Run the registered workload ``generator`` against ``network``.

    ``params`` populate :class:`WorkloadContext` (``num_flows``,
    ``max_hops``, ``rate_bps``, ``tcp_fraction``, ``payload_bytes``,
    ``mss_bytes``, ``demand_exponent``).  ``router`` defaults to an ETT
    router over the network's ground-truth link weights.  The returned
    flows are declarative — the caller decides when to add them to the
    network — and deterministic in ``(generator, params, seed)``.
    """
    registration = _lookup(_WORKLOADS, generator, "workload generator")
    if router is None:
        router = Router(network.node_ids, ett_link_weights(network))
    ctx = WorkloadContext(
        network=network,
        router=router,
        rng=workload_rng(generator, seed),
        **params,
    )
    flows = registration.build(ctx)
    if not flows:
        raise RuntimeError(f"workload generator {generator!r} produced no flows")
    return flows


@register_workload(
    "saturated_udp",
    description="backlogged UDP over randomly sampled routable demands",
)
def _saturated_udp(ctx: WorkloadContext) -> list[GeneratedFlow]:
    return [
        GeneratedFlow(
            transport="udp",
            path=tuple(path),
            rate_bps=ctx.rate_bps,
            payload_bytes=ctx.payload_bytes,
            mss_bytes=ctx.mss_bytes,
        )
        for _, _, path in ctx.sample_demands()
    ]


@register_workload(
    "tcp_bulk", description="window-limited TCP bulk transfers over routed demands"
)
def _tcp_bulk(ctx: WorkloadContext) -> list[GeneratedFlow]:
    return [
        GeneratedFlow(
            transport="tcp",
            path=tuple(path),
            payload_bytes=ctx.payload_bytes,
            mss_bytes=ctx.mss_bytes,
        )
        for _, _, path in ctx.sample_demands()
    ]


@register_workload(
    "mixed_tcp_udp",
    description="per-flow coin flip between TCP bulk and UDP at tcp_fraction",
)
def _mixed_tcp_udp(ctx: WorkloadContext) -> list[GeneratedFlow]:
    flows: list[GeneratedFlow] = []
    for _, _, path in ctx.sample_demands():
        transport = "tcp" if ctx.rng.uniform() < ctx.tcp_fraction else "udp"
        flows.append(
            GeneratedFlow(
                transport=transport,
                path=tuple(path),
                rate_bps=None if transport == "tcp" else ctx.rate_bps,
                payload_bytes=ctx.payload_bytes,
                mss_bytes=ctx.mss_bytes,
            )
        )
    return flows


@register_workload(
    "gravity",
    description="UDP demands biased by per-node gravity weights, CBR budget split",
)
def _gravity(ctx: WorkloadContext) -> list[GeneratedFlow]:
    """Gravity-style demands: each node draws a weight, a demand (i, j)
    attracts traffic proportionally to ``(w_i * w_j) ** demand_exponent``.
    With a positive ``rate_bps`` the total budget ``rate_bps * num_flows``
    is split across the chosen demands proportionally to their gravity
    weight; with ``rate_bps=None`` sources are saturated and the weights
    only bias *which* demands exist.

    ``weight_tail="pareto"`` swaps the uniform node weights for
    heavy-tailed Lomax draws (``1 + Pareto(tail_index)``), so a handful
    of nodes dominate the traffic matrix as in measured deployments.  The
    uniform branch keeps its historical draw — one ``uniform`` vector of
    ``len(node_ids)`` — bit for bit, so pre-v3 specs replay unchanged."""
    node_ids = ctx.network.node_ids
    if ctx.weight_tail == "pareto":
        draws = ctx.rng.pareto(ctx.tail_index, size=len(node_ids)) + 1.0
    else:
        draws = ctx.rng.uniform(0.1, 1.0, size=len(node_ids))
    node_weight = {node: float(w) for node, w in zip(node_ids, draws)}
    candidates = ctx.routable_demands()
    gravity = np.array(
        [
            (node_weight[src] * node_weight[dst]) ** ctx.demand_exponent
            for src, dst, _ in candidates
        ],
        dtype=float,
    )
    candidates, indices = ctx.sample_demand_indices(
        weights=gravity, candidates=candidates
    )
    chosen = [candidates[i] for i in indices]
    chosen_gravity = gravity[indices]
    rates: list[float | None]
    if ctx.rate_bps is None or ctx.rate_bps <= 0.0:
        rates = [ctx.rate_bps] * len(chosen)
    else:
        budget = ctx.rate_bps * ctx.num_flows
        total_gravity = float(chosen_gravity.sum())
        if total_gravity > 0.0:
            share = chosen_gravity / total_gravity
        else:
            # Every chosen weight underflowed to 0 (an extreme
            # demand_exponent): split the budget evenly rather than
            # handing each flow a NaN rate.
            share = np.full(len(chosen), 1.0 / len(chosen))
        rates = [float(budget * s) for s in share]
    return [
        GeneratedFlow(
            transport="udp",
            path=tuple(path),
            rate_bps=rate,
            payload_bytes=ctx.payload_bytes,
            mss_bytes=ctx.mss_bytes,
        )
        for (_, _, path), rate in zip(chosen, rates)
    ]
