"""Simulation substrate: event kernel, the MeshNetwork assembly object,
topology factories (link pairs, chains, grids, the 18-node testbed),
link-level tracing and the two-phase measurement drivers of Section 4."""

from repro.engine import Event, Simulator
from repro.sim.network import MeshNetwork, TcpFlowHandle, UdpFlowHandle
from repro.sim.trace import LinkCounters, LinkTracer
from repro.sim.topology import reduced_carrier_sense_radio  # noqa: F401
from repro.sim.topology import (
    LinkPairTopology,
    carrier_sense_pair,
    chain_topology,
    classify_pair,
    default_radio,
    grid_topology,
    independent_pair,
    information_asymmetry_pair,
    near_far_pair,
    no_shadowing_propagation,
    random_link_pair,
    testbed_positions,
    testbed_propagation,
)
from repro.sim.measurement import (
    FeasibilityTestResult,
    FlowMeasurement,
    PairMeasurement,
    apply_input_rates,
    measure_flows,
    measure_isolated,
    measure_pair,
)

__all__ = [
    "Event",
    "Simulator",
    "MeshNetwork",
    "TcpFlowHandle",
    "UdpFlowHandle",
    "LinkCounters",
    "LinkTracer",
    "LinkPairTopology",
    "carrier_sense_pair",
    "chain_topology",
    "classify_pair",
    "default_radio",
    "grid_topology",
    "independent_pair",
    "information_asymmetry_pair",
    "near_far_pair",
    "no_shadowing_propagation",
    "random_link_pair",
    "reduced_carrier_sense_radio",
    "testbed_positions",
    "testbed_propagation",
    "FeasibilityTestResult",
    "FlowMeasurement",
    "PairMeasurement",
    "apply_input_rates",
    "measure_flows",
    "measure_isolated",
    "measure_pair",
]
