"""Canned experiment scenarios used by the validation and the benchmarks.

These helpers assemble the multi-hop, multi-flow configurations of the
paper's evaluation on top of the synthetic 18-node testbed:

* ETT-routed random multi-flow configurations (Sections 4.5, 5.5, 6.3),
  with up to six flows and at most four hops per route, at 1 Mb/s,
  11 Mb/s or a mix;
* the two-flow upstream TCP starvation scenario of Figure 13, built on a
  gateway chain whose endpoints are hidden from each other (reduced
  carrier-sense sensitivity), which is what makes TCP ACKs collide with
  data and starve the two-hop flow.

Route selection uses ETT weights computed from ground-truth link quality
(the medium's SNR-derived error rates).  The *online* machinery never
sees that ground truth — it still estimates capacities from probes — but
scenario construction does not need to burn simulated time discovering
routes the real Srcr protocol would find anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.net.routing import FlowRoute, Router
from repro.phy.radio import RadioConfig
from repro.sim.generators import (
    assign_link_rates,
    ett_link_weights,
    ground_truth_link_error,
    radio_profile_config,
)
from repro.sim.network import MeshNetwork, TcpFlowHandle, UdpFlowHandle
from repro.sim.topology import chain_topology, testbed_positions, testbed_propagation

__all__ = [
    "MultiFlowScenario",
    "StarvationScenario",
    "assign_link_rates",
    "build_testbed_network",
    "ett_link_weights",
    "ground_truth_link_error",
    "hidden_terminal_radio",
    "random_multiflow_scenario",
    "starvation_scenario",
]

Link = tuple[int, int]
RateMode = Literal["1", "11", "mixed"]


def build_testbed_network(
    seed: int = 0,
    data_rate_mbps: float = 11,
    shadowing_sigma_db: float = 6.0,
    radio: RadioConfig | None = None,
    run_seed: int | None = None,
) -> MeshNetwork:
    """The synthetic 18-node testbed as a ready-to-use MeshNetwork.

    ``seed`` fixes the topology (positions and shadowing); ``run_seed``
    (defaulting to ``seed``) seeds the traffic/backoff randomness, so the
    same physical testbed can be exercised by several independent runs —
    which is how the stability metric of Figure 14(d) is measured.
    """
    return MeshNetwork(
        testbed_positions(seed=seed),
        seed=seed if run_seed is None else run_seed,
        radio=radio,
        propagation=testbed_propagation(seed=seed, shadowing_sigma_db=shadowing_sigma_db),
        data_rate_mbps=data_rate_mbps,
    )


@dataclass
class MultiFlowScenario:
    """A routed multi-flow configuration on the testbed."""

    name: str
    network: MeshNetwork
    flows: list[UdpFlowHandle] | list[TcpFlowHandle]
    routes: list[FlowRoute]
    rate_mode: RateMode

    @property
    def links(self) -> list[Link]:
        ordered: list[Link] = []
        seen: set[Link] = set()
        for flow in self.flows:
            for link in flow.links:
                if link not in seen:
                    seen.add(link)
                    ordered.append(link)
        return ordered


def _pick_demands(
    router: Router,
    node_ids: list[int],
    num_flows: int,
    max_hops: int,
    rng: np.random.Generator,
    max_tries: int = 400,
) -> list[tuple[int, int]]:
    demands: list[tuple[int, int]] = []
    tries = 0
    while len(demands) < num_flows and tries < max_tries:
        tries += 1
        src, dst = (int(x) for x in rng.choice(node_ids, size=2, replace=False))
        if (src, dst) in demands:
            continue
        path = router.shortest_path(src, dst)
        if path is None:
            continue
        hops = len(path) - 1
        if 1 <= hops <= max_hops:
            demands.append((src, dst))
    if len(demands) < num_flows:
        raise RuntimeError(
            f"could only find {len(demands)} routable demands (wanted {num_flows})"
        )
    return demands


def random_multiflow_scenario(
    seed: int,
    num_flows: int = 4,
    max_hops: int = 4,
    rate_mode: RateMode = "mixed",
    transport: Literal["udp", "tcp"] = "udp",
    name: str | None = None,
    run_seed: int | None = None,
) -> MultiFlowScenario:
    """A random ETT-routed multi-flow configuration on the testbed.

    Mirrors the configurations of Sections 4.5 and 6.3: a handful of
    simultaneous, mutually interfering multi-hop flows with routes of at
    most ``max_hops`` hops, over links fixed at 1 / 11 Mb/s.  ``run_seed``
    re-seeds only the traffic randomness, keeping topology and routes
    identical across repeated runs of the same configuration.
    """
    rng = np.random.default_rng(seed)
    network = build_testbed_network(seed=seed, run_seed=run_seed)
    assign_link_rates(network, rate_mode, rng)
    weights = ett_link_weights(network)
    router = Router(network.node_ids, weights)
    demands = _pick_demands(router, network.node_ids, num_flows, max_hops, rng)
    routes = router.route_flows(demands)
    flows: list[UdpFlowHandle] | list[TcpFlowHandle] = []
    for route in routes:
        if transport == "udp":
            flows.append(network.add_udp_flow(route.path, rate_bps=0.0))
        else:
            flows.append(network.add_tcp_flow(route.path))
    return MultiFlowScenario(
        name=name or f"scenario-{seed}-{rate_mode}-{transport}",
        network=network,
        flows=flows,
        routes=routes,
        rate_mode=rate_mode,
    )


# ---------------------------------------------------------------------------
# Figure 13: upstream TCP starvation at a gateway
# ---------------------------------------------------------------------------
def hidden_terminal_radio(data_rate_mbps: float = 1) -> RadioConfig:
    """Radio configuration with reduced carrier-sense sensitivity.

    Thin preset over the ``"hidden_terminal"`` profile of
    :mod:`repro.sim.generators`: raising the CS threshold (a knob real
    drivers expose) shrinks the carrier-sense range below two hops and
    recreates the data/ACK collision pattern of Shi et al. that
    Figure 13 studies.
    """
    return radio_profile_config("hidden_terminal", data_rate_mbps=data_rate_mbps)


@dataclass
class StarvationScenario:
    """The two-flow upstream TCP scenario of Figure 13."""

    network: MeshNetwork
    two_hop: TcpFlowHandle
    one_hop: TcpFlowHandle

    @property
    def flows(self) -> list[TcpFlowHandle]:
        return [self.two_hop, self.one_hop]


def starvation_scenario(
    seed: int = 0, data_rate_mbps: float = 1, run_seed: int | None = None
) -> StarvationScenario:
    """One 2-hop and one 1-hop TCP flow sending upstream to a gateway.

    Node 2 is the gateway; node 0 reaches it via relay node 1.  The radio
    uses :func:`hidden_terminal_radio`, so node 0 and the gateway do not
    sense each other and the 2-hop flow's ACKs collide with the 1-hop
    flow's data at the relay.  The topology is fixed; ``run_seed``
    (defaulting to ``seed``) re-seeds the traffic/backoff randomness for
    independent repeated runs.
    """
    from repro.sim.topology import no_shadowing_propagation

    positions = chain_topology(3, spacing_m=62.0)
    network = MeshNetwork(
        positions,
        seed=seed if run_seed is None else run_seed,
        radio=hidden_terminal_radio(data_rate_mbps),
        propagation=no_shadowing_propagation(),
        data_rate_mbps=data_rate_mbps,
    )
    two_hop = network.add_tcp_flow([0, 1, 2])
    one_hop = network.add_tcp_flow([1, 2])
    return StarvationScenario(network=network, two_hop=two_hop, one_hop=one_hop)
