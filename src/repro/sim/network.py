"""MeshNetwork: the top-level simulation assembly.

A :class:`MeshNetwork` wires together the simulator kernel, the wireless
medium, one :class:`repro.net.node.MeshNode` per node, and convenience
constructors for flows, probing and routing.  Experiments and the online
controller only ever talk to this object.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mac.constants import DEFAULT_MAC_CONFIG, MacConfig
from repro.mac.medium import WirelessMedium
from repro.net.node import MeshNode
from repro.net.probing import ProbingSystem
from repro.net.routing import FlowRoute, Router
from repro.phy.error_models import BerPacketErrorModel, ErrorModel
from repro.phy.propagation import LogDistancePathLoss, PropagationModel
from repro.phy.radio import PhyRate, RadioConfig, rate_from_mbps
from repro.phy.sinr import CaptureModel
from repro.engine import Simulator
from repro.sim.trace import LinkTracer
from repro.transport.tcp import TcpFlow, make_tcp_flow
from repro.transport.udp import UdpSink, UdpSource


Link = tuple[int, int]


@dataclass
class UdpFlowHandle:
    """A configured UDP flow: source, sink and its route."""

    flow_id: int
    source: UdpSource
    sink: UdpSink
    path: list[int]

    @property
    def links(self) -> list[Link]:
        return list(zip(self.path[:-1], self.path[1:]))

    def start(self) -> None:
        self.source.start()

    def stop(self) -> None:
        self.source.stop()

    def throughput_bps(self, start: float, end: float) -> float:
        return self.sink.throughput_bps(start, end)


@dataclass
class TcpFlowHandle:
    """A configured TCP flow and its route."""

    flow_id: int
    flow: TcpFlow
    path: list[int]

    @property
    def links(self) -> list[Link]:
        return list(zip(self.path[:-1], self.path[1:]))

    def start(self) -> None:
        self.flow.start()

    def stop(self) -> None:
        self.flow.stop()

    def throughput_bps(self, start: float, end: float) -> float:
        return self.flow.goodput_bps(start, end)


class MeshNetwork:
    """A simulated 802.11 mesh network.

    Args:
        positions: node id -> (x, y) coordinates in metres.
        seed: master RNG seed for the whole simulation.
        radio: radio configuration shared by all nodes.
        propagation: path-loss model (defaults to log-distance with
            per-link shadowing).
        error_model: residual channel error model.
        capture: SINR capture model.
        mac_config: DCF parameters.
        data_rate_mbps: default modulation for DATA frames (1 or 11).
        link_error_override: optional map of per-directed-link packet
            error probabilities (for a 1500-byte frame) that overrides
            the SNR-derived channel error rate.
    """

    def __init__(
        self,
        positions: dict[int, tuple[float, float]],
        seed: int = 0,
        radio: RadioConfig | None = None,
        propagation: PropagationModel | None = None,
        error_model: ErrorModel | None = None,
        capture: CaptureModel | None = None,
        mac_config: MacConfig = DEFAULT_MAC_CONFIG,
        data_rate_mbps: float = 11,
        link_error_override: dict[Link, float] | None = None,
    ) -> None:
        self.positions = dict(positions)
        self.sim = Simulator(seed=seed)
        default_rate = rate_from_mbps(data_rate_mbps)
        self.radio = radio or RadioConfig(data_rate=default_rate)
        self.medium = WirelessMedium(
            self.sim,
            positions,
            radio=self.radio,
            propagation=propagation or LogDistancePathLoss(seed=seed),
            error_model=error_model or BerPacketErrorModel(),
            capture=capture or CaptureModel(),
            link_error_override=link_error_override,
        )
        self.mac_config = mac_config
        self.nodes: dict[int, MeshNode] = {
            node_id: MeshNode(
                node_id,
                self.sim,
                self.medium,
                mac_config=mac_config,
                data_rate=default_rate,
            )
            for node_id in positions
        }
        self.tracer = LinkTracer(self.sim, self.medium)
        self.udp_flows: dict[int, UdpFlowHandle] = {}
        self.tcp_flows: dict[int, TcpFlowHandle] = {}
        self._next_flow_id = 0
        self.probing: ProbingSystem | None = None

    # ---------------------------------------------------------------- helpers
    def node(self, node_id: int) -> MeshNode:
        return self.nodes[node_id]

    @property
    def node_ids(self) -> list[int]:
        return sorted(self.nodes)

    def allocate_flow_id(self) -> int:
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        return flow_id

    def run(self, duration: float) -> None:
        """Advance the simulation by ``duration`` seconds."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.sim.run_until(self.sim.now + duration)

    @property
    def now(self) -> float:
        return self.sim.now

    # --------------------------------------------------------------- dynamics
    def update_positions(self, moved: dict[int, tuple[float, float]]) -> None:
        """Move nodes (a position epoch): the medium rebuilds only the
        power-table rows/columns of the moved nodes and invalidates the
        memo entries they touch (see
        :meth:`repro.mac.medium.WirelessMedium.update_positions`)."""
        self.medium.update_positions(moved)
        for node_id, (x, y) in moved.items():
            self.positions[node_id] = (float(x), float(y))

    def fail_node(self, node_id: int) -> None:
        """Take a node down (churn failure).

        The medium marks the radio off — subsequent delivery attempts at
        the node fail with ``"rx_off"`` — and the MAC quiesces
        deterministically (pending events cancelled, queue dropped).
        Routing tables and transport state are left in place: when the
        node revives, established flows resume over the same routes,
        which is the repair behaviour the paper's online loop is
        re-measuring.
        """
        self.medium.set_node_active(node_id, False)
        self.nodes[node_id].mac.quiesce()

    def revive_node(self, node_id: int) -> None:
        """Bring a failed node back (churn rejoin) and re-prime any
        backlogged UDP sources stalled at it."""
        self.medium.set_node_active(node_id, True)
        self.nodes[node_id].mac.revive()
        for handle in self.udp_flows.values():
            if handle.path[0] == node_id:
                handle.source.refresh()

    # ---------------------------------------------------------------- routing
    def install_path(self, path: list[int], bidirectional: bool = True) -> None:
        """Install static next-hop entries along ``path``.

        Forward entries route the final destination; with
        ``bidirectional`` the reverse path is installed as well (needed
        for TCP ACKs and for ACK-probe symmetry).
        """
        if len(path) < 2:
            return
        destination = path[-1]
        for here, nxt in zip(path[:-1], path[1:]):
            self.nodes[here].set_route(destination, nxt)
        if bidirectional:
            origin = path[0]
            reverse = list(reversed(path))
            for here, nxt in zip(reverse[:-1], reverse[1:]):
                self.nodes[here].set_route(origin, nxt)

    def install_routes_from_router(self, router: Router, flows: list[FlowRoute]) -> None:
        """Install next hops for every flow routed by ``router``."""
        for flow in flows:
            self.install_path(flow.path, bidirectional=True)

    def set_link_rate(self, link: Link, rate: PhyRate | float) -> None:
        """Fix the modulation of a directed link (accepts Mb/s or PhyRate)."""
        phy_rate = rate if isinstance(rate, PhyRate) else rate_from_mbps(rate)
        u, v = link
        self.nodes[u].set_link_rate(v, phy_rate)

    def link_rate(self, link: Link) -> PhyRate:
        """Current modulation of a directed link."""
        u, v = link
        return self.nodes[u].link_rates.get(v, self.nodes[u].data_rate)

    # ------------------------------------------------------------------ flows
    def add_udp_flow(
        self,
        path: list[int],
        flow_id: int | None = None,
        payload_bytes: int = 1470,
        rate_bps: float | None = None,
        install_route: bool = True,
    ) -> UdpFlowHandle:
        """Create a UDP flow along ``path`` (source is ``path[0]``)."""
        if len(path) < 2:
            raise ValueError("a flow path needs at least two nodes")
        if flow_id is None:
            flow_id = self.allocate_flow_id()
        if install_route:
            self.install_path(path)
        source = UdpSource(
            self.sim,
            self.nodes[path[0]],
            destination=path[-1],
            flow_id=flow_id,
            payload_bytes=payload_bytes,
            rate_bps=rate_bps,
        )
        sink = UdpSink(self.nodes[path[-1]], flow_id)
        handle = UdpFlowHandle(flow_id=flow_id, source=source, sink=sink, path=list(path))
        self.udp_flows[flow_id] = handle
        return handle

    def add_tcp_flow(
        self,
        path: list[int],
        flow_id: int | None = None,
        mss_bytes: int = 1460,
        install_route: bool = True,
    ) -> TcpFlowHandle:
        """Create a TCP flow along ``path`` (source is ``path[0]``)."""
        if len(path) < 2:
            raise ValueError("a flow path needs at least two nodes")
        if flow_id is None:
            flow_id = self.allocate_flow_id()
        if install_route:
            self.install_path(path, bidirectional=True)
        flow = make_tcp_flow(
            self.sim, self.nodes[path[0]], self.nodes[path[-1]], flow_id, mss_bytes=mss_bytes
        )
        handle = TcpFlowHandle(flow_id=flow_id, flow=flow, path=list(path))
        self.tcp_flows[flow_id] = handle
        return handle

    # ---------------------------------------------------------------- probing
    def enable_probing(
        self,
        period_s: float = 0.5,
        data_probe_bytes: int = 1500,
        start: bool = True,
    ) -> ProbingSystem:
        """Attach (and optionally start) the broadcast probing system."""
        if self.probing is None:
            self.probing = ProbingSystem(
                self.sim,
                self.nodes.values(),
                period_s=period_s,
                data_probe_bytes=data_probe_bytes,
            )
        if start:
            self.probing.start()
        return self.probing
