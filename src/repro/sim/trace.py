"""Link-level measurement traces.

The tracer observes every delivery attempt on the medium and aggregates
per-directed-link statistics: attempts, successes, losses by cause, and
time-stamped successful DATA deliveries so per-link throughput can be
computed over arbitrary windows.  This is the simulator-side stand-in for
the packet sniffers and iperf reports used on the real testbed.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from dataclasses import dataclass, field

from repro.mac.frames import Frame, FrameKind
from repro.mac.medium import WirelessMedium
from repro.engine import Simulator


Link = tuple[int, int]


class EventTraceRecorder:
    """Digests every delivery attempt into a per-event trace hash.

    One line is folded into a SHA-256 per frame-delivery attempt:
    virtual timestamp (shortest-roundtrip ``repr``, so the digest is
    sensitive to any bit-level drift in event timing), frame kind,
    directed link, on-air size, retry count and the delivery outcome.
    Because MAC timing, carrier sensing, capture and the RNG draw order
    all feed into these fields, *any* behavioural drift in the engine,
    medium or DCF shows up as a different digest — this is what the
    sim-level goldens under ``tests/sim/golden`` pin.

    Args:
        sim: the simulator driving virtual time.
        medium: the medium whose delivery attempts are recorded.
        keep_lines: also retain the raw trace lines (used by the golden
            ``regenerate.py`` to help diff a drifted trace; costs memory
            proportional to the trace, so off by default).
    """

    def __init__(
        self, sim: Simulator, medium: WirelessMedium, keep_lines: bool = False
    ) -> None:
        self.sim = sim
        self.events = 0
        self.lines: list[str] | None = [] if keep_lines else None
        self._hash = hashlib.sha256()
        medium.add_frame_observer(self._observe)

    def _observe(self, frame: Frame, rx_id: int, success: bool, failure: str | None) -> None:
        line = (
            f"{self.sim.now!r} {frame.kind.value} {frame.src}->{rx_id} "
            f"bytes={frame.size_bytes} retries={frame.retries} "
            f"ok={int(success)} fail={failure or '-'}\n"
        )
        self._hash.update(line.encode("utf-8"))
        self.events += 1
        if self.lines is not None:
            self.lines.append(line)

    @property
    def digest(self) -> str:
        """Hex SHA-256 over every trace line folded in so far."""
        return self._hash.hexdigest()


@dataclass
class LinkCounters:
    """Delivery statistics of one directed link."""

    attempts: int = 0
    successes: int = 0
    losses_by_cause: dict[str, int] = field(default_factory=dict)

    @property
    def loss_rate(self) -> float:
        if self.attempts == 0:
            return 0.0
        return 1.0 - self.successes / self.attempts


class LinkTracer:
    """Observes the medium and aggregates per-link delivery statistics."""

    def __init__(self, sim: Simulator, medium: WirelessMedium) -> None:
        self.sim = sim
        self.counters: dict[tuple[Link, FrameKind], LinkCounters] = defaultdict(LinkCounters)
        self._data_deliveries: dict[Link, list[tuple[float, int]]] = defaultdict(list)
        medium.add_frame_observer(self._observe)

    def _observe(self, frame: Frame, rx_id: int, success: bool, failure: str | None) -> None:
        link = (frame.src, rx_id)
        counters = self.counters[(link, frame.kind)]
        counters.attempts += 1
        if success:
            counters.successes += 1
            if frame.kind is FrameKind.DATA:
                self._data_deliveries[link].append((self.sim.now, frame.size_bytes))
        else:
            counters.losses_by_cause[failure] = counters.losses_by_cause.get(failure, 0) + 1

    # ----------------------------------------------------------------- queries
    def link_counters(self, link: Link, kind: FrameKind = FrameKind.DATA) -> LinkCounters:
        """Counters of a directed link for a frame kind (zeroed if unseen)."""
        return self.counters.get((link, kind), LinkCounters())

    def data_loss_rate(self, link: Link) -> float:
        """Fraction of DATA frame delivery attempts that failed on ``link``."""
        return self.link_counters(link, FrameKind.DATA).loss_rate

    def data_throughput_bps(self, link: Link, start: float, end: float) -> float:
        """Successful DATA bits per second on ``link`` over [start, end)."""
        if end <= start:
            raise ValueError("window end must exceed start")
        total = sum(
            size for t, size in self._data_deliveries.get(link, []) if start <= t < end
        )
        return total * 8 / (end - start)

    def active_links(self) -> list[Link]:
        """Directed links over which at least one DATA frame was attempted."""
        return sorted({link for (link, kind) in self.counters if kind is FrameKind.DATA})
