"""Callback-site profiling for the simulation core.

The event loop in :mod:`repro.engine` dispatches every piece of
simulated work through ``Event.callback``.  :class:`SimProfiler` hooks
that dispatch (see ``Simulator.profiler`` /
:func:`repro.engine.set_default_profiler`) and attributes wall clock and
event counts to each *callback site* — the function or bound method the
event invokes, e.g. ``repro.mac.medium.WirelessMedium._finish_transmission``.
Timings are inclusive: a callback's bucket includes everything it calls
synchronously (MAC notifications, deliveries, transport reactions), which
is exactly the per-subsystem attribution needed to decide where the hot
loop's time goes.

This module is the *only* simulation-layer module allowed to read a wall
clock: the determinism linter scopes rule RPL104 over the sim layers and
carves out exactly this file (see ``repro/lint/config.py``), so the
engine itself stays wall-clock free and a profiler can never leak
non-determinism into experiment payloads.

Usage::

    from repro.sim.profile import SimProfiler

    with SimProfiler() as prof:
        run_experiment(spec, cache=False)
    print(prof.render())

The context manager installs the profiler process-wide for its scope, so
simulators constructed *inside* the block (as ``run_experiment`` does)
are profiled too.

Command line: ``python -m repro.sim.profile <scenario>`` runs one cold
cell of a named scenario under the profiler and prints the top-N
inclusive-time table — this is how the profile published in
``docs/architecture.md`` is regenerated::

    python -m repro.sim.profile fig14-cell --top 15
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from time import perf_counter
from typing import Callable

from repro.engine import set_default_profiler


def callback_site(callback: Callable[[], None]) -> str:
    """Stable name of the function behind an event callback.

    Unwraps ``functools.partial`` layers and bound methods so equivalent
    callbacks (e.g. every per-node ``_finish_transmission`` partial)
    aggregate into one site.
    """
    while isinstance(callback, partial):
        callback = callback.func
    func = getattr(callback, "__func__", callback)
    module = getattr(func, "__module__", None) or "<unknown>"
    qualname = getattr(func, "__qualname__", None) or repr(func)
    return f"{module}.{qualname}"


@dataclass
class SiteStats:
    """Accumulated cost of one callback site."""

    events: int = 0
    wall_s: float = 0.0


class SimProfiler:
    """Attributes event-loop wall clock and event counts per callback site.

    Duck-typed against the engine's hook: the run loop calls
    ``self.clock()`` around each callback and reports the pair via
    ``self.record(callback, elapsed_s)``.
    """

    #: The clock the engine's profiled loop uses.  Kept as a class
    #: attribute so the engine never imports ``time`` itself.
    clock = staticmethod(perf_counter)

    def __init__(self) -> None:
        self.sites: dict[str, SiteStats] = {}
        self._previous: object | None = None

    # ------------------------------------------------------------ engine hook
    def record(self, callback: Callable[[], None], elapsed_s: float) -> None:
        """Accumulate one dispatched event (called by the engine)."""
        site = callback_site(callback)
        stats = self.sites.get(site)
        if stats is None:
            stats = self.sites[site] = SiteStats()
        stats.events += 1
        stats.wall_s += elapsed_s

    # -------------------------------------------------------- context manager
    def __enter__(self) -> "SimProfiler":
        self._previous = set_default_profiler(self)
        return self

    def __exit__(self, *exc_info: object) -> bool:
        set_default_profiler(self._previous)
        self._previous = None
        return False

    # --------------------------------------------------------------- queries
    @property
    def total_events(self) -> int:
        return sum(stats.events for stats in self.sites.values())

    @property
    def total_wall_s(self) -> float:
        return sum(stats.wall_s for stats in self.sites.values())

    def table(self) -> list[tuple[str, int, float]]:
        """``(site, events, wall_s)`` rows, most expensive first."""
        rows = [
            (site, stats.events, stats.wall_s) for site, stats in self.sites.items()
        ]
        rows.sort(key=lambda row: (-row[2], row[0]))
        return rows

    def render(self, top: int | None = None) -> str:
        """Markdown table of the profile (``top`` rows, all when None)."""
        rows = self.table()
        if top is not None:
            rows = rows[:top]
        total_wall = self.total_wall_s or 1.0
        lines = [
            "| callback site | events | wall clock (s) | share |",
            "|---|---:|---:|---:|",
        ]
        for site, events, wall_s in rows:
            lines.append(
                f"| `{site}` | {events} | {wall_s:.3f} | {100.0 * wall_s / total_wall:.1f}% |"
            )
        lines.append(
            f"| **total** | {self.total_events} | {self.total_wall_s:.3f} | 100% |"
        )
        return "\n".join(lines)


# --------------------------------------------------------------------- CLI
def _profile_specs():
    """Named single-cell experiment specs the CLI can profile.

    Built lazily so importing this module never pulls in the experiment
    stack (the engine hook must stay import-light).
    """
    from repro.experiment import (
        ChurnSpec,
        ControllerSpec,
        ExperimentSpec,
        MobilitySpec,
        ProbingSpec,
        ScenarioSpec,
        TopologySpec,
        WorkloadSpec,
    )

    return {
        # One Figure 14 grid cell (random_multiflow / tcp / Prop
        # variant) — the repeated unit whose cost dominates the figure
        # sweeps; same spec as ``benchmarks/test_sim_core.py``.
        "fig14-cell": ExperimentSpec(
            scenario=ScenarioSpec(
                scenario="random_multiflow",
                transport="tcp",
                run_seed=1000,
                seed=7,
                num_flows=3,
                rate_mode="11",
            ),
            probing=ProbingSpec(warmup_s=45.0),
            controller=ControllerSpec(alpha=1.0, probing_window=80, payload_bytes=1460),
            cycles=1,
            cycle_measure_s=12.0,
            settle_s=2.0,
            label="profile-fig14-cell",
        ),
        # A dynamic variant of the Figure 14 cell: a connected 3x3 grid
        # under waypoint mobility with one mid-run churn cycle, so the
        # position-epoch rebuild and memo-invalidation paths show up in
        # the site table next to the static MAC/PHY costs.
        "fig14-cell-mobile": ExperimentSpec(
            scenario=ScenarioSpec(
                scenario="generated",
                seed=7,
                run_seed=1000,
                rate_mode="11",
                topology=TopologySpec(kind="grid", rows=3, cols=3, spacing_m=60.0),
                workload=WorkloadSpec(
                    generator="saturated_udp", num_flows=3, max_hops=3
                ),
                mobility=MobilitySpec(
                    model="waypoint", epoch_s=1.0, speed_mps=2.0
                ),
                churn=ChurnSpec(
                    num_events=1, start_s=50.0, end_s=55.0, down_s=5.0
                ),
            ),
            probing=ProbingSpec(warmup_s=45.0),
            controller=ControllerSpec(alpha=1.0, probing_window=80, payload_bytes=1460),
            cycles=1,
            cycle_measure_s=12.0,
            settle_s=2.0,
            label="profile-fig14-cell-mobile",
        ),
        # One Figure 13 starvation cell (TCP-Prop variant).
        "fig13-cell": ExperimentSpec(
            scenario=ScenarioSpec(scenario="starvation", seed=0, data_rate_mbps=1),
            probing=ProbingSpec(warmup_s=50.0),
            controller=ControllerSpec(alpha=1.0, probing_window=90),
            cycles=1,
            cycle_measure_s=20.0,
            settle_s=5.0,
            label="profile-fig13-cell",
        ),
    }


def main(argv: list[str] | None = None) -> int:
    """Run one cold cell under the profiler and print the site table."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.profile",
        description="Profile one cold simulation cell per callback site.",
    )
    parser.add_argument(
        "scenario",
        choices=sorted(_profile_specs()),
        help="which single-cell scenario to run",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=15,
        metavar="N",
        help="rows to print (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    from repro.experiment import run_experiment

    spec = _profile_specs()[args.scenario]
    start = perf_counter()
    with SimProfiler() as prof:
        # cache=False keeps the run cold: the point is the wall clock.
        run_experiment(spec, cache=False)
    wall_s = perf_counter() - start
    print(f"# {args.scenario}: cold wall {wall_s:.3f} s, {prof.total_events} events")
    print(prof.render(top=args.top))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI test
    raise SystemExit(main())
