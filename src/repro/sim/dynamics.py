"""Scenario dynamics: mobility trajectories, churn schedules and
SNR-threshold rate adaptation.

The paper's contribution is an *online* optimizer for a live mesh — its
measurement/re-optimization loop only earns its keep when the network
changes underneath it.  This module supplies the three dynamics axes a
``generated`` scenario can declare (:class:`repro.experiment.specs.MobilitySpec`,
:class:`~repro.experiment.specs.ChurnSpec`, the ``rate_adaptation``
radio profile) and the :class:`DynamicsDriver` that plays them out
against a built :class:`~repro.sim.network.MeshNetwork`:

* **Mobility models** are registered trajectory builders
  (:func:`register_mobility`).  A trajectory advances node positions one
  *position epoch* at a time; each epoch the driver pushes the nodes
  that actually moved through :meth:`MeshNetwork.update_positions`,
  which rebuilds only the affected power-table rows/columns of the
  medium and invalidates only the memo entries those nodes touch.
* **Churn schedules** (:func:`generate_churn_schedule`) are seeded
  fail/join event lists; the driver applies them via
  :meth:`MeshNetwork.fail_node` / :meth:`MeshNetwork.revive_node`,
  which quiesce or revive the node's MAC deterministically.
* **Rate adaptation** (:func:`apply_rate_adaptation`) re-selects every
  directed link's modulation from its current SNR — at build time and
  again after every position epoch — using the same 24 dB 1↔11 Mb/s
  threshold the ``mixed`` static assignment centres on.

Determinism discipline: trajectory and churn randomness come from
model-private ``rng_spawn_key`` streams seeded by the scenario ``seed``
(the same convention as topology placement and workload draws), never
from the simulator's streams.  A static scenario constructs no driver,
schedules no events and draws nothing extra — which is what lets the
pre-existing byte-identity goldens prove dynamics support costs static
runs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Mapping

import numpy as np

from repro.engine import rng_spawn_key
from repro.phy.radio import RATE_1MBPS, RATE_11MBPS
from repro.sim.network import MeshNetwork
from repro.sim.topology import bounding_box

Positions = dict[int, tuple[float, float]]

__all__ = [
    "ChurnEvent",
    "DynamicsDriver",
    "Trajectory",
    "RATE_ADAPTATION_SNR_DB",
    "apply_rate_adaptation",
    "build_mobility",
    "generate_churn_schedule",
    "mobility_names",
    "mobility_description",
    "mobility_rng",
    "register_mobility",
]


# ---------------------------------------------------------------------------
# Mobility model registry
# ---------------------------------------------------------------------------
class Trajectory:
    """One scenario's mobility state: positions advanced epoch by epoch.

    ``step()`` advances every node by one position epoch and returns the
    complete placement after the move.  Implementations must be
    deterministic — same seed, same call sequence, same positions — and
    must iterate nodes in sorted-id order so their draw order is a pure
    function of the node set.
    """

    #: Registered model name (set by :func:`build_mobility`).
    model: str = ""

    def step(self) -> Positions:
        raise NotImplementedError


MobilityBuilder = Callable[[Positions, Mapping[str, Any], int], Trajectory]


@dataclass(frozen=True)
class _MobilityRegistration:
    build: MobilityBuilder
    description: str


_MOBILITY_MODELS: dict[str, _MobilityRegistration] = {}


def register_mobility(
    name: str, *, description: str = ""
) -> Callable[[MobilityBuilder], MobilityBuilder]:
    """Register ``builder(positions, params, seed) -> Trajectory``.

    ``params`` is the plain-dict form of
    :meth:`repro.experiment.specs.MobilitySpec.params` (builders read the
    keys they care about), so a registered model is immediately drivable
    from a serialized spec.
    """

    def decorator(builder: MobilityBuilder) -> MobilityBuilder:
        if name in _MOBILITY_MODELS:
            raise ValueError(f"mobility model {name!r} is already registered")
        _MOBILITY_MODELS[name] = _MobilityRegistration(
            build=builder, description=description or (builder.__doc__ or "").strip()
        )
        return builder

    return decorator


def mobility_names() -> list[str]:
    """Every registered mobility model name, sorted."""
    return sorted(_MOBILITY_MODELS)


def mobility_description(name: str) -> str:
    """The one-line description a mobility model registered with."""
    return _lookup(name).description


def _lookup(name: str) -> _MobilityRegistration:
    if name not in _MOBILITY_MODELS:
        raise KeyError(
            f"unknown mobility model {name!r}; registered: {mobility_names()}"
        )
    return _MOBILITY_MODELS[name]


def mobility_rng(model: str, seed: int) -> np.random.Generator:
    """The named, model-private RNG stream for a mobility trajectory.

    Spawned from ``seed`` with a CRC32 key of ``"mobility.<model>"``
    (:func:`repro.engine.rng_spawn_key`) — the same stream-isolation
    discipline as :func:`repro.sim.generators.workload_rng`, so
    trajectories never share draws with workloads, topologies or the
    simulation kernel.
    """
    return np.random.default_rng(
        np.random.SeedSequence(
            entropy=seed, spawn_key=(rng_spawn_key(f"mobility.{model}"),)
        )
    )


def build_mobility(
    model: str, positions: Positions, params: Mapping[str, Any] | None = None,
    seed: int = 0,
) -> Trajectory:
    """Build a trajectory for ``positions`` via the registered ``model``."""
    registration = _lookup(model)
    trajectory = registration.build(dict(positions), dict(params or {}), seed)
    trajectory.model = model
    return trajectory


# ---------------------------------------------------------------------------
# Built-in mobility models
# ---------------------------------------------------------------------------
class _WaypointTrajectory(Trajectory):
    def __init__(
        self,
        positions: Positions,
        box: tuple[float, float, float, float],
        epoch_s: float,
        speed_mps: float,
        pause_s: float,
        rng: np.random.Generator,
    ) -> None:
        self._order = sorted(positions)
        self._pos = {node: positions[node] for node in self._order}
        self._box = box
        self._epoch_s = epoch_s
        self._speed = speed_mps
        self._pause_s = pause_s
        self._rng = rng
        self._target: dict[int, tuple[float, float] | None] = {
            node: None for node in self._order
        }
        self._pause_left: dict[int, float] = {node: 0.0 for node in self._order}

    def _draw_target(self) -> tuple[float, float]:
        x_min, x_max, y_min, y_max = self._box
        return (
            float(self._rng.uniform(x_min, x_max)),
            float(self._rng.uniform(y_min, y_max)),
        )

    def step(self) -> Positions:
        speed = self._speed
        for node in self._order:
            if speed <= 0.0:
                break
            remaining = self._epoch_s
            x, y = self._pos[node]
            # A node can pause, arrive and re-target several times within
            # one epoch; the leg count is bounded to keep a degenerate
            # geometry (zero-length legs with no pause) from spinning.
            for _ in range(64):
                if remaining <= 1e-12:
                    break
                pause = self._pause_left[node]
                if pause > 0.0:
                    used = min(pause, remaining)
                    self._pause_left[node] = pause - used
                    remaining -= used
                    continue
                target = self._target[node]
                if target is None:
                    target = self._draw_target()
                    self._target[node] = target
                dx, dy = target[0] - x, target[1] - y
                dist = (dx * dx + dy * dy) ** 0.5
                reach = speed * remaining
                if reach >= dist:
                    x, y = target
                    remaining -= dist / speed
                    self._target[node] = None
                    self._pause_left[node] = self._pause_s
                else:
                    x += dx * reach / dist
                    y += dy * reach / dist
                    remaining = 0.0
            self._pos[node] = (x, y)
        return dict(self._pos)


@register_mobility(
    "waypoint",
    description="random waypoint inside the initial bounding box plus margin",
)
def _waypoint(positions: Positions, params: Mapping[str, Any], seed: int) -> Trajectory:
    return _WaypointTrajectory(
        positions,
        box=bounding_box(positions, float(params.get("area_margin_m", 25.0))),
        epoch_s=float(params.get("epoch_s", 1.0)),
        speed_mps=float(params.get("speed_mps", 1.5)),
        pause_s=float(params.get("pause_s", 0.0)),
        rng=mobility_rng("waypoint", seed),
    )


class _DriftTrajectory(Trajectory):
    def __init__(
        self,
        positions: Positions,
        box: tuple[float, float, float, float],
        sigma_m: float,
        rng: np.random.Generator,
    ) -> None:
        self._order = sorted(positions)
        self._pos = {node: positions[node] for node in self._order}
        self._box = box
        self._sigma = sigma_m
        self._rng = rng

    def step(self) -> Positions:
        x_min, x_max, y_min, y_max = self._box
        displacements = self._rng.normal(0.0, self._sigma, size=(len(self._order), 2))
        for index, node in enumerate(self._order):
            x, y = self._pos[node]
            x = min(max(x + float(displacements[index, 0]), x_min), x_max)
            y = min(max(y + float(displacements[index, 1]), y_min), y_max)
            self._pos[node] = (x, y)
        return dict(self._pos)


@register_mobility(
    "drift",
    description="per-epoch Gaussian displacement clipped to the initial box",
)
def _drift(positions: Positions, params: Mapping[str, Any], seed: int) -> Trajectory:
    return _DriftTrajectory(
        positions,
        box=bounding_box(positions, float(params.get("area_margin_m", 25.0))),
        sigma_m=float(params.get("drift_sigma_m", 2.0)),
        rng=mobility_rng("drift", seed),
    )


# ---------------------------------------------------------------------------
# Churn schedules
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled membership change: a node fails or (re)joins."""

    time_s: float
    node_id: int
    action: str  # "fail" | "join"


def generate_churn_schedule(
    node_ids: list[int],
    protected: set[int] | frozenset[int] = frozenset(),
    num_events: int = 1,
    start_s: float = 0.0,
    end_s: float = 60.0,
    down_s: float = 10.0,
    seed: int = 0,
) -> list[ChurnEvent]:
    """A seeded fail/join schedule over the non-protected nodes.

    ``num_events`` distinct victims are chosen uniformly without
    replacement from ``sorted(set(node_ids) - protected)`` (capped at the
    candidate count), with failure times uniform in ``[start_s, end_s]``;
    each victim rejoins ``down_s`` seconds after failing unless
    ``down_s`` is 0 (permanent failure).  All randomness comes from the
    private ``"churn"`` stream of ``seed``, and the returned events are
    sorted by ``(time, node, action)`` so the schedule is a pure function
    of the arguments.
    """
    candidates = sorted(set(node_ids) - set(protected))
    count = min(num_events, len(candidates))
    if count <= 0:
        return []
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(rng_spawn_key("churn"),))
    )
    chosen = rng.choice(len(candidates), size=count, replace=False)
    times = rng.uniform(start_s, end_s, size=count)
    events: list[ChurnEvent] = []
    for index, time_s in zip(sorted(int(i) for i in chosen), sorted(float(t) for t in times)):
        node_id = candidates[index]
        events.append(ChurnEvent(time_s=time_s, node_id=node_id, action="fail"))
        if down_s > 0.0:
            events.append(
                ChurnEvent(time_s=time_s + down_s, node_id=node_id, action="join")
            )
    events.sort(key=lambda event: (event.time_s, event.node_id, event.action))
    return events


# ---------------------------------------------------------------------------
# Rate adaptation
# ---------------------------------------------------------------------------
#: SNR threshold (dB) above which a link runs at 11 Mb/s — the centre of
#: the jittered threshold the static ``mixed`` assignment draws around.
RATE_ADAPTATION_SNR_DB = 24.0


def apply_rate_adaptation(network: MeshNetwork) -> None:
    """Select every directed link's modulation from its current SNR.

    Deliberately RNG-free (a fixed 24 dB threshold, no per-link jitter):
    re-applying it after every position epoch must not consume any
    stream, so rate adaptation composes with mobility without perturbing
    other randomness.
    """
    medium = network.medium
    noise_dbm = medium.capture.noise_floor_dbm
    for tx in network.node_ids:
        for rx in network.node_ids:
            if tx == rx:
                continue
            snr = medium.rx_power_dbm(tx, rx) - noise_dbm
            rate = RATE_11MBPS if snr >= RATE_ADAPTATION_SNR_DB else RATE_1MBPS
            network.set_link_rate((tx, rx), rate)


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------
class DynamicsDriver:
    """Plays a scenario's dynamics out against a built network.

    Installed once after the network (and its flows) are built; it
    schedules

    * a self-rechaining position-epoch event every ``epoch_s`` seconds
      when a trajectory is present — each epoch advances the trajectory,
      pushes the moved nodes through
      :meth:`MeshNetwork.update_positions` and, for adaptive-rate
      scenarios, re-applies :func:`apply_rate_adaptation`;
    * one absolute-time event per :class:`ChurnEvent`, applied via
      :meth:`MeshNetwork.fail_node` / :meth:`MeshNetwork.revive_node`.

    ``meta`` is a JSON-safe dict of the declared schedule plus live
    counters (epochs applied, nodes moved, fails/joins applied); scenario
    builders park it in ``BuiltScenario.meta`` so results record what the
    dynamics actually did.  A driver is only constructed for dynamic
    specs — static scenarios schedule no events and draw nothing, so
    their event sequence (and goldens) are untouched by this subsystem.
    """

    def __init__(
        self,
        network: MeshNetwork,
        trajectory: Trajectory | None = None,
        epoch_s: float = 1.0,
        churn: list[ChurnEvent] | tuple[ChurnEvent, ...] = (),
        rate_adaptation: bool = False,
    ) -> None:
        if epoch_s <= 0:
            raise ValueError("epoch_s must be positive")
        self.network = network
        self.trajectory = trajectory
        self.epoch_s = float(epoch_s)
        self.churn = tuple(churn)
        self.rate_adaptation = bool(rate_adaptation)
        self._installed = False
        self.meta: dict[str, Any] = {
            "mobility_model": trajectory.model if trajectory is not None else None,
            "epoch_s": self.epoch_s if trajectory is not None else None,
            "rate_adaptation": self.rate_adaptation,
            "churn_schedule": [
                [event.time_s, event.node_id, event.action] for event in self.churn
            ],
            "epochs_applied": 0,
            "nodes_moved": 0,
            "fails_applied": 0,
            "joins_applied": 0,
        }

    def install(self) -> "DynamicsDriver":
        """Schedule the epoch chain and churn events on the network's sim."""
        if self._installed:
            raise RuntimeError("DynamicsDriver is already installed")
        self._installed = True
        sim = self.network.sim
        if self.trajectory is not None:
            sim.schedule(self.epoch_s, self._on_epoch)
        for event in self.churn:
            sim.schedule_at(event.time_s, partial(self._apply_churn, event))
        return self

    def _on_epoch(self) -> None:
        new_positions = self.trajectory.step()
        current = self.network.positions
        moved = {
            node: point
            for node, point in new_positions.items()
            if point != current[node]
        }
        if moved:
            self.network.update_positions(moved)
            if self.rate_adaptation:
                apply_rate_adaptation(self.network)
        self.meta["epochs_applied"] += 1
        self.meta["nodes_moved"] += len(moved)
        self.network.sim.schedule(self.epoch_s, self._on_epoch)

    def _apply_churn(self, event: ChurnEvent) -> None:
        if event.action == "fail":
            self.network.fail_node(event.node_id)
            self.meta["fails_applied"] += 1
        else:
            self.network.revive_node(event.node_id)
            self.meta["joins_applied"] += 1
