"""Two-phase measurement drivers.

These helpers reproduce the measurement methodology of Section 4 of the
paper on top of the simulator:

* phase 1 — each link transmits alone, backlogged, yielding its max UDP
  throughput (primary extreme point) and UDP packet loss rate;
* phase 2 — links transmit simultaneously, backlogged, yielding the
  simultaneous throughputs used by the LIR metric and the three-point
  model; or, alternatively, configured input-rate vectors are applied and
  the resulting output rates are checked for feasibility.

All functions operate on a live :class:`repro.sim.network.MeshNetwork`
and advance its virtual time; successive phases are separated by a drain
gap so queued traffic from one phase does not leak into the next.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.network import MeshNetwork, UdpFlowHandle


#: Default settle time before a measurement window opens (seconds).
DEFAULT_SETTLE_S = 0.5
#: Default gap between phases, letting queues drain (seconds).
DEFAULT_GAP_S = 0.5


@dataclass
class FlowMeasurement:
    """Result of measuring one UDP flow over a window."""

    flow_id: int
    throughput_bps: float
    sent_packets: int
    received_packets: int

    @property
    def loss_rate(self) -> float:
        """Network-layer (post-MAC-retransmission) packet loss rate."""
        if self.sent_packets == 0:
            return 0.0
        lost = max(0, self.sent_packets - self.received_packets)
        return min(1.0, lost / self.sent_packets)


@dataclass
class PairMeasurement:
    """The full two-phase measurement of a link pair.

    Attributes mirror the paper's notation: ``c11`` and ``c22`` are the
    isolated (primary extreme point) throughputs of links 1 and 2, and
    ``c31``/``c32`` their throughputs when simultaneously backlogged.
    """

    c11: float
    c22: float
    c31: float
    c32: float
    loss1: float = 0.0
    loss2: float = 0.0

    @property
    def lir(self) -> float:
        """Link Interference Ratio (Eq. 5 of the paper)."""
        denom = self.c11 + self.c22
        if denom <= 0:
            return 0.0
        return (self.c31 + self.c32) / denom


def measure_flows(
    network: MeshNetwork,
    flows: list[UdpFlowHandle],
    duration_s: float,
    settle_s: float = DEFAULT_SETTLE_S,
    gap_s: float = DEFAULT_GAP_S,
) -> list[FlowMeasurement]:
    """Run the given flows together and measure each over the window.

    Only the flows passed in are started; they are stopped afterwards and
    a drain gap is simulated before returning.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    for flow in flows:
        flow.start()
    network.run(settle_s)
    start_time = network.now
    sent_before = {f.flow_id: f.source.stats.packets_sent for f in flows}
    recv_before = {f.flow_id: f.sink.received_packets for f in flows}
    network.run(duration_s)
    end_time = network.now
    results = []
    for flow in flows:
        results.append(
            FlowMeasurement(
                flow_id=flow.flow_id,
                throughput_bps=flow.throughput_bps(start_time, end_time),
                sent_packets=flow.source.stats.packets_sent - sent_before[flow.flow_id],
                received_packets=flow.sink.received_packets - recv_before[flow.flow_id],
            )
        )
    for flow in flows:
        flow.stop()
    network.run(gap_s)
    return results


def measure_isolated(
    network: MeshNetwork,
    flow: UdpFlowHandle,
    duration_s: float,
    settle_s: float = DEFAULT_SETTLE_S,
    gap_s: float = DEFAULT_GAP_S,
) -> FlowMeasurement:
    """Measure the max UDP throughput of one backlogged flow alone."""
    return measure_flows(network, [flow], duration_s, settle_s, gap_s)[0]


def measure_pair(
    network: MeshNetwork,
    flow1: UdpFlowHandle,
    flow2: UdpFlowHandle,
    duration_s: float,
    settle_s: float = DEFAULT_SETTLE_S,
    gap_s: float = DEFAULT_GAP_S,
) -> PairMeasurement:
    """Run the full two-phase link-pair experiment of Section 4.3.1."""
    alone1 = measure_isolated(network, flow1, duration_s, settle_s, gap_s)
    alone2 = measure_isolated(network, flow2, duration_s, settle_s, gap_s)
    together = measure_flows(network, [flow1, flow2], duration_s, settle_s, gap_s)
    return PairMeasurement(
        c11=alone1.throughput_bps,
        c22=alone2.throughput_bps,
        c31=together[0].throughput_bps,
        c32=together[1].throughput_bps,
        loss1=alone1.loss_rate,
        loss2=alone2.loss_rate,
    )


@dataclass
class FeasibilityTestResult:
    """Outcome of applying one input-rate vector to a set of flows."""

    input_rates_bps: list[float]
    achieved_bps: list[float]
    expected_bps: list[float]
    tolerance: float = 0.02

    @property
    def feasible(self) -> bool:
        """True if every flow achieved its expected output rate.

        The paper marks output rates feasible when they are within 2 % of
        ``(1 - p_l) * x_l`` for every link/flow.
        """
        for achieved, expected in zip(self.achieved_bps, self.expected_bps):
            if expected <= 0:
                continue
            if achieved < expected * (1.0 - self.tolerance):
                return False
        return True


def apply_input_rates(
    network: MeshNetwork,
    flows: list[UdpFlowHandle],
    input_rates_bps: list[float],
    loss_rates: list[float] | None = None,
    duration_s: float = 5.0,
    settle_s: float = DEFAULT_SETTLE_S,
    gap_s: float = DEFAULT_GAP_S,
    tolerance: float = 0.02,
) -> FeasibilityTestResult:
    """Apply an input-rate vector and check whether it is feasible.

    Args:
        flows: the flows to drive (CBR mode).
        input_rates_bps: one input rate per flow.
        loss_rates: per-flow end-to-end loss rate ``p`` used to compute
            the expected output ``(1 - p) * x``; defaults to zero loss.
        tolerance: relative shortfall allowed before declaring the vector
            infeasible (the paper uses 2 %).
    """
    if len(flows) != len(input_rates_bps):
        raise ValueError("need exactly one input rate per flow")
    losses = loss_rates or [0.0] * len(flows)
    for flow, rate in zip(flows, input_rates_bps):
        flow.source.set_rate(rate)
    measurements = measure_flows(network, flows, duration_s, settle_s, gap_s)
    achieved = [m.throughput_bps for m in measurements]
    expected = [x * (1.0 - p) for x, p in zip(input_rates_bps, losses)]
    return FeasibilityTestResult(
        input_rates_bps=list(input_rates_bps),
        achieved_bps=achieved,
        expected_bps=expected,
        tolerance=tolerance,
    )
