"""Rate-control helpers: translating optimized output rates into the
input rates programmed at the sources.

Two adjustments from Section 6.1 of the paper are implemented:

* path-loss compensation — the optimizer produces target *output* rates
  ``y_s``; the source must inject ``x_s = y_s / (1 - p_s)`` where ``p_s``
  is the end-to-end loss probability of the path;
* TCP ACK airtime — when the flow is TCP, the rate limit is scaled down
  by ``1 - (A + H) / (A + H + D)`` so the reverse ACK stream has airtime
  left (A: IP/TCP header, H: TCP ACK size, D: TCP payload).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.mac.constants import IP_HEADER_BYTES, TCP_HEADER_BYTES
from repro.net.shaper import TokenBucketShaper
from repro.sim.network import TcpFlowHandle, UdpFlowHandle


def tcp_ack_airtime_factor(
    ip_tcp_header_bytes: int = IP_HEADER_BYTES + TCP_HEADER_BYTES,
    tcp_ack_bytes: int = IP_HEADER_BYTES + TCP_HEADER_BYTES,
    tcp_payload_bytes: int = 1460,
) -> float:
    """Scale-down factor leaving airtime for TCP ACKs (Section 6.2)."""
    denominator = ip_tcp_header_bytes + tcp_ack_bytes + tcp_payload_bytes
    if denominator <= 0:
        raise ValueError("sizes must be positive")
    return 1.0 - (ip_tcp_header_bytes + tcp_ack_bytes) / denominator


def input_rates_from_outputs(
    output_rates_bps: Sequence[float], path_losses: Sequence[float]
) -> np.ndarray:
    """``x_s = y_s / (1 - p_s)`` with a guard against fully lossy paths."""
    outputs = np.asarray(output_rates_bps, dtype=float)
    losses = np.asarray(path_losses, dtype=float)
    if outputs.shape != losses.shape:
        raise ValueError("need one path loss per output rate")
    if np.any((losses < 0) | (losses > 1)):
        raise ValueError("path losses must lie in [0, 1]")
    survival = np.clip(1.0 - losses, 1e-6, 1.0)
    return outputs / survival


@dataclass
class FlowRateAssignment:
    """The programmed rates of one flow after an optimization cycle."""

    flow_id: int
    target_output_bps: float
    input_rate_bps: float
    path_loss: float
    is_tcp: bool


class RateController:
    """Programs per-flow rate limits on UDP and TCP sources.

    UDP flows are driven as CBR sources at the computed input rate; TCP
    flows keep their congestion control but are capped with a token
    bucket at the (ACK-scaled) input rate, exactly like the Click
    BandwidthShaper in the paper's implementation.
    """

    def __init__(self, ack_factor: float | None = None) -> None:
        self.ack_factor = ack_factor if ack_factor is not None else tcp_ack_airtime_factor()
        self.assignments: list[FlowRateAssignment] = []

    def program_udp(
        self, flow: UdpFlowHandle, target_output_bps: float, path_loss: float
    ) -> FlowRateAssignment:
        """Set a UDP flow's CBR input rate from its target output rate."""
        input_rate = float(
            input_rates_from_outputs([target_output_bps], [path_loss])[0]
        )
        flow.source.set_rate(input_rate)
        assignment = FlowRateAssignment(
            flow_id=flow.flow_id,
            target_output_bps=target_output_bps,
            input_rate_bps=input_rate,
            path_loss=path_loss,
            is_tcp=False,
        )
        self.assignments.append(assignment)
        return assignment

    def program_tcp(
        self, flow: TcpFlowHandle, target_output_bps: float, path_loss: float
    ) -> FlowRateAssignment:
        """Cap a TCP flow's sending rate, leaving airtime for ACKs."""
        input_rate = float(
            input_rates_from_outputs([target_output_bps], [path_loss])[0]
        )
        limited = input_rate * self.ack_factor
        source = flow.flow.source
        if source.shaper is None:
            source.set_shaper(TokenBucketShaper(rate_bps=limited))
        else:
            source.shaper.set_rate(limited)
        assignment = FlowRateAssignment(
            flow_id=flow.flow_id,
            target_output_bps=target_output_bps,
            input_rate_bps=limited,
            path_loss=path_loss,
            is_tcp=True,
        )
        self.assignments.append(assignment)
        return assignment

    def release_tcp(self, flow: TcpFlowHandle) -> None:
        """Remove the rate cap of a TCP flow (back to plain TCP)."""
        flow.flow.source.set_shaper(None)

    def release_udp(self, flow: UdpFlowHandle) -> None:
        """Return a UDP flow to backlogged (unshaped) operation."""
        flow.source.set_rate(None)
