"""Utility-maximising rate optimization over the feasibility region
(Section 6.1 of the paper).

The problem solved is::

    maximize   sum_s U(y_s)
    subject to R y <= sum_k alpha_k c[k]      (per link)
               sum_k alpha_k = 1, alpha >= 0, y >= 0

where ``R`` is the binary routing matrix (links x flows), the ``c[k]``
are the extreme points of the feasibility region and ``U`` is an
alpha-fair utility.  The throughput-maximising case (alpha = 0) and the
max-min-fair case are linear programs; the general case is a small,
smooth concave program solved with SLSQP.  Rates are normalised
internally so the solver sees well-conditioned numbers regardless of
whether capacities are expressed in b/s or Mb/s.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog, minimize

from repro.core.extreme_points import FeasibilityRegion
from repro.core.utility import AlphaFairUtility
from repro.net.routing import RoutingMatrix


@dataclass
class OptimizationResult:
    """Solution of the rate-optimization problem."""

    flow_rates: np.ndarray
    alpha: np.ndarray
    link_rates: np.ndarray
    objective: float
    success: bool
    message: str = ""

    @property
    def aggregate_rate(self) -> float:
        return float(self.flow_rates.sum())


class RateOptimizer:
    """Solves the convex optimization of Section 6.1.

    Args:
        region: feasibility region (its link order defines the rows of
            the routing matrix that will be accepted).
        routing: routing matrix; its link list must match the region's.
        utility: objective from the alpha-fair family.
        rate_floor: minimum per-flow rate enforced to keep logarithmic
            utilities finite (in the same unit as the capacities).
    """

    def __init__(
        self,
        region: FeasibilityRegion,
        routing: RoutingMatrix,
        utility: AlphaFairUtility,
        rate_floor: float = 1.0,
    ) -> None:
        if list(routing.links) != list(region.links):
            raise ValueError("routing matrix and feasibility region must use the same link order")
        if routing.matrix.shape[0] != region.num_links:
            raise ValueError("routing matrix row count must equal the number of links")
        self.region = region
        self.routing = routing
        self.utility = utility
        self.rate_floor = rate_floor
        self._scale = float(region.extreme_points.max())
        if self._scale <= 0:
            raise ValueError("the feasibility region has zero capacity everywhere")

    # --------------------------------------------------------------- solving
    def solve(self) -> OptimizationResult:
        """Solve for the optimal flow output rates."""
        if self.utility.is_throughput_maximising:
            return self._solve_linear(max_min=False)
        return self._solve_concave()

    def solve_max_min(self) -> OptimizationResult:
        """Max-min fair rates (the alpha -> infinity limit), via an LP."""
        return self._solve_linear(max_min=True)

    # ---------------------------------------------------------------- internals
    @property
    def _r(self) -> np.ndarray:
        return self.routing.matrix

    @property
    def _c(self) -> np.ndarray:
        return self.region.extreme_points / self._scale

    def _solve_linear(self, max_min: bool) -> OptimizationResult:
        num_flows = self._r.shape[1]
        num_points = self.region.num_extreme_points
        num_links = self.region.num_links
        # Variables: [y (S), alpha (K)] plus a trailing t for max-min.
        extra = 1 if max_min else 0
        num_vars = num_flows + num_points + extra
        objective = np.zeros(num_vars)
        if max_min:
            objective[-1] = -1.0
        else:
            objective[:num_flows] = -1.0
        # R y - C^T alpha <= 0
        a_ub = np.zeros((num_links, num_vars))
        a_ub[:, :num_flows] = self._r
        a_ub[:, num_flows : num_flows + num_points] = -self._c.T
        b_ub = np.zeros(num_links)
        if max_min:
            # t - y_s <= 0 for every flow.
            extra_rows = np.zeros((num_flows, num_vars))
            extra_rows[:, :num_flows] = -np.eye(num_flows)
            extra_rows[:, -1] = 1.0
            a_ub = np.vstack([a_ub, extra_rows])
            b_ub = np.concatenate([b_ub, np.zeros(num_flows)])
        a_eq = np.zeros((1, num_vars))
        a_eq[0, num_flows : num_flows + num_points] = 1.0
        result = linprog(
            c=objective,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=np.array([1.0]),
            bounds=[(0.0, None)] * num_vars,
            method="highs",
        )
        if not result.success:
            return OptimizationResult(
                flow_rates=np.zeros(num_flows),
                alpha=np.zeros(num_points),
                link_rates=np.zeros(num_links),
                objective=float("nan"),
                success=False,
                message=result.message,
            )
        y = result.x[:num_flows] * self._scale
        alpha = result.x[num_flows : num_flows + num_points]
        return self._package(y, alpha, success=True, message="linprog")

    def _solve_concave(self) -> OptimizationResult:
        num_flows = self._r.shape[1]
        num_points = self.region.num_extreme_points
        num_links = self.region.num_links
        floor = self.rate_floor / self._scale
        utility = AlphaFairUtility(alpha=self.utility.alpha, rate_floor=floor)

        def split(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            return x[:num_flows], x[num_flows:]

        def negative_utility(x: np.ndarray) -> float:
            y, _ = split(x)
            return -utility.value(y)

        def negative_utility_grad(x: np.ndarray) -> np.ndarray:
            y, _ = split(x)
            grad = np.zeros_like(x)
            grad[:num_flows] = -utility.gradient(np.maximum(y, floor))
            return grad

        def capacity_slack(x: np.ndarray) -> np.ndarray:
            y, alpha = split(x)
            return self._c.T @ alpha - self._r @ y

        def capacity_slack_jac(x: np.ndarray) -> np.ndarray:
            jac = np.zeros((num_links, x.size))
            jac[:, :num_flows] = -self._r
            jac[:, num_flows:] = self._c.T
            return jac

        # Feasible starting point: uniform alpha, then shrink a uniform
        # flow vector until it fits inside the per-link budgets.
        alpha0 = np.full(num_points, 1.0 / num_points)
        budget = self._c.T @ alpha0
        flows_per_link = np.maximum(self._r.sum(axis=1), 1.0)
        per_link_share = budget / flows_per_link
        y0 = np.full(num_flows, max(floor, 1e-6))
        for flow_index in range(num_flows):
            links_of_flow = self._r[:, flow_index] > 0
            if np.any(links_of_flow):
                y0[flow_index] = max(floor, 0.5 * per_link_share[links_of_flow].min())
        x0 = np.concatenate([y0, alpha0])

        constraints = [
            {"type": "ineq", "fun": capacity_slack, "jac": capacity_slack_jac},
            {
                "type": "eq",
                "fun": lambda x: np.sum(x[num_flows:]) - 1.0,
                "jac": lambda x: np.concatenate([np.zeros(num_flows), np.ones(num_points)]),
            },
        ]
        bounds = [(floor, None)] * num_flows + [(0.0, 1.0)] * num_points
        result = minimize(
            negative_utility,
            x0,
            jac=negative_utility_grad,
            bounds=bounds,
            constraints=constraints,
            method="SLSQP",
            options={"maxiter": 500, "ftol": 1e-10},
        )
        y, alpha = split(result.x)
        return self._package(
            np.maximum(y, 0.0) * self._scale,
            np.maximum(alpha, 0.0),
            success=bool(result.success),
            message=str(result.message),
        )

    def _package(
        self, y: np.ndarray, alpha: np.ndarray, success: bool, message: str
    ) -> OptimizationResult:
        link_rates = self._r @ y
        return OptimizationResult(
            flow_rates=np.asarray(y, dtype=float),
            alpha=np.asarray(alpha, dtype=float),
            link_rates=np.asarray(link_rates, dtype=float),
            objective=self.utility.value(np.maximum(y, self.rate_floor)),
            success=success,
            message=message,
        )
