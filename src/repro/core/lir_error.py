"""Analytic FP/FN error of the binary LIR model (Section 4.4, Figure 6).

The binary interference model of Section 4 thresholds the link
interference ratio ``LIR = (c31 + c32) / (c11 + c22)`` (Eq. 5, see
:func:`repro.core.interference.link_interference_ratio`) to decide
which two-link region of Section 3.1 applies.  This module
quantifies what that coarsening costs.  Given the throughputs
(c11, c22, c31, c32) of a link pair, the binary model either

* classifies the pair **interfering** (``LIR < threshold``) and uses the
  time-sharing region, committing a false-negative error equal to the
  fraction of the true (three-point) region it misses, or
* classifies the pair **non-interfering** (``LIR >= threshold``) and uses
  the independent region, committing a false-positive error equal to the
  relative area it over-claims.

Averaging those per-pair errors over an observed LIR distribution (the
Figure 3 experiment) yields the expected FP/FN errors of a threshold —
the paper reports 2 % FP and 13.3 % FN at a threshold of 0.95 — and
sweeping the threshold exposes the FP/FN trade-off used to justify that
choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.feasibility import TwoLinkRegions
from repro.core.interference import DEFAULT_LIR_THRESHOLD


@dataclass(frozen=True)
class PairSample:
    """One measured link pair: isolated and simultaneous throughputs."""

    c11: float
    c22: float
    c31: float
    c32: float

    @property
    def lir(self) -> float:
        denom = self.c11 + self.c22
        if denom <= 0:
            return 0.0
        return (self.c31 + self.c32) / denom

    def regions(self) -> TwoLinkRegions:
        return TwoLinkRegions(c11=self.c11, c22=self.c22, c31=self.c31, c32=self.c32)


def synthetic_pair_from_lir(
    lir: float, c11: float = 1.0, c22: float = 1.0, split: float | None = None
) -> PairSample:
    """Construct a pair whose simultaneous throughputs realise ``lir``.

    All points with the same LIR lie on the line
    ``c31 + c32 = lir * (c11 + c22)`` (the dotted line of Figure 6); the
    ``split`` argument chooses the position along that line as the share
    of the sum assigned to link 1.  By default the sum is split in
    proportion to the isolated capacities, which is the symmetric choice
    the paper's analysis uses when ``c11 = c22``.
    """
    if lir < 0:
        raise ValueError("LIR must be non-negative")
    total = lir * (c11 + c22)
    if split is None:
        split = c11 / (c11 + c22)
    if not 0.0 <= split <= 1.0:
        raise ValueError("split must lie in [0, 1]")
    c31 = min(total * split, c11)
    c32 = min(total - c31, c22)
    return PairSample(c11=c11, c22=c22, c31=c31, c32=c32)


def pair_error(sample: PairSample, threshold: float = DEFAULT_LIR_THRESHOLD) -> tuple[float, float]:
    """(FP error, FN error) committed by the binary model on one pair.

    Exactly one of the two is non-zero: which one depends on which side
    of the threshold the pair's LIR falls.
    """
    regions = sample.regions()
    if sample.lir < threshold:
        return 0.0, regions.false_negative_error()
    return regions.false_positive_error(), 0.0


@dataclass
class ExpectedErrors:
    """Expected FP/FN errors of a threshold over an LIR distribution."""

    threshold: float
    expected_false_positive: float
    expected_false_negative: float
    num_samples: int
    num_classified_interfering: int

    @property
    def combined(self) -> float:
        """Simple sum of the two expected errors (used to rank thresholds)."""
        return self.expected_false_positive + self.expected_false_negative


def expected_errors(
    samples: Sequence[PairSample], threshold: float = DEFAULT_LIR_THRESHOLD
) -> ExpectedErrors:
    """Average the per-pair FP/FN errors over a set of measured pairs."""
    if not samples:
        raise ValueError("at least one sample is required")
    fps = []
    fns = []
    interfering = 0
    for sample in samples:
        fp, fn = pair_error(sample, threshold)
        fps.append(fp)
        fns.append(fn)
        if sample.lir < threshold:
            interfering += 1
    return ExpectedErrors(
        threshold=threshold,
        expected_false_positive=float(np.mean(fps)),
        expected_false_negative=float(np.mean(fns)),
        num_samples=len(samples),
        num_classified_interfering=interfering,
    )


def threshold_sweep(
    samples: Sequence[PairSample], thresholds: Iterable[float]
) -> list[ExpectedErrors]:
    """Expected errors for each candidate threshold (Figure 6 methodology)."""
    return [expected_errors(samples, threshold) for threshold in thresholds]


def best_threshold(
    samples: Sequence[PairSample], thresholds: Iterable[float]
) -> ExpectedErrors:
    """The threshold minimising the combined expected FP + FN error."""
    sweep = threshold_sweep(samples, thresholds)
    return min(sweep, key=lambda e: e.combined)
