"""Alpha-fair utility family (Section 6.1).

``U(y) = y^(1-alpha) / (1-alpha)`` for ``alpha != 1`` and ``log(y)`` for
``alpha = 1``.  Special cases: ``alpha = 0`` maximises aggregate
throughput, ``alpha = 1`` is proportional fairness, ``alpha -> inf``
approaches max-min fairness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AlphaFairUtility:
    """One member of the alpha-fair utility family.

    Attributes:
        alpha: fairness parameter (non-negative).
        rate_floor: small positive floor applied to rates before
            evaluating the utility, keeping ``log``/negative powers finite
            at zero rates.
    """

    alpha: float
    rate_floor: float = 1e-6

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if self.rate_floor <= 0:
            raise ValueError("rate_floor must be positive")

    # ------------------------------------------------------------- evaluation
    def value(self, rates: np.ndarray | float) -> float:
        """Total utility of a rate vector (or a single rate)."""
        y = np.maximum(np.asarray(rates, dtype=float), self.rate_floor)
        if self.alpha == 1.0:
            return float(np.sum(np.log(y)))
        return float(np.sum(y ** (1.0 - self.alpha) / (1.0 - self.alpha)))

    def gradient(self, rates: np.ndarray) -> np.ndarray:
        """Per-flow marginal utility ``dU/dy = y^(-alpha)``."""
        y = np.maximum(np.asarray(rates, dtype=float), self.rate_floor)
        return y ** (-self.alpha)

    # ------------------------------------------------------------ descriptors
    @property
    def is_throughput_maximising(self) -> bool:
        return self.alpha == 0.0

    @property
    def is_proportional_fair(self) -> bool:
        return self.alpha == 1.0

    def describe(self) -> str:
        """Human-readable name of the objective."""
        if self.alpha == 0.0:
            return "maximum aggregate throughput"
        if self.alpha == 1.0:
            return "proportional fairness"
        if self.alpha == 2.0:
            return "minimum potential delay fairness"
        return f"alpha-fair (alpha={self.alpha:g})"


#: Objective used by TCP-Max in the paper's evaluation.
MAX_THROUGHPUT = AlphaFairUtility(alpha=0.0)
#: Objective used by TCP-Prop in the paper's evaluation.
PROPORTIONAL_FAIR = AlphaFairUtility(alpha=1.0)
