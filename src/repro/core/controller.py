"""The online optimization loop (Section 6 of the paper).

:class:`OnlineOptimizer` ties every piece together on a live
:class:`repro.sim.network.MeshNetwork`:

1. read the broadcast-probe loss series of every link used by the
   configured flows (capacity estimation module),
2. separate channel losses from collision losses with the estimator of
   Section 5.3 and turn them into link capacities via Eq. (6),
3. build the conflict graph with the two-hop interference model (or a
   supplied binary-LIR map), enumerate maximal independent sets and form
   the extreme points (Section 3.2),
4. solve the alpha-fair rate optimization over the resulting polytope
   (optimizer module),
5. translate output rates into input rates and program the per-flow
   shapers (rate-control module).

Each cycle returns a :class:`ControlDecision` recording every
intermediate quantity, which the benchmarks use to regenerate the
figures of Sections 4.5 and 6.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.core.capacity import CapacityModel, combine_data_ack_losses
from repro.core.conflict_graph import ConflictGraph
from repro.core.extreme_points import FeasibilityRegion
from repro.core.interference import (
    PairwiseInterferenceMap,
    connectivity_from_loss_rates,
)
from repro.core.loss_estimator import estimate_channel_loss_rate
from repro.core.optimizer import OptimizationResult, RateOptimizer
from repro.core.rate_control import RateController
from repro.core.utility import AlphaFairUtility, PROPORTIONAL_FAIR
from repro.net.routing import FlowRoute, build_routing_matrix, path_loss_probability
from repro.sim.network import MeshNetwork, TcpFlowHandle, UdpFlowHandle

Link = tuple[int, int]
FlowHandle = UdpFlowHandle | TcpFlowHandle


@dataclass
class LinkEstimate:
    """Online estimate of one directed link's loss and capacity."""

    link: Link
    data_loss: float
    ack_loss: float
    channel_loss: float
    capacity_bps: float
    estimator_case: int


@dataclass
class ControlDecision:
    """Everything produced by one optimization cycle."""

    link_estimates: dict[Link, LinkEstimate]
    region: FeasibilityRegion
    conflict_graph: ConflictGraph
    optimization: OptimizationResult
    flow_ids: list[int]
    target_outputs_bps: dict[int, float]
    input_rates_bps: dict[int, float]
    path_losses: dict[int, float] = field(default_factory=dict)


class OnlineOptimizer:
    """Periodic measurement + optimization + rate-control loop.

    Args:
        network: the live mesh network (probing must be enabled before
            running a cycle, or pass ``auto_probing=True``).
        flows: the flows to optimize (UDP and/or TCP handles).
        utility: optimization objective (defaults to proportional
            fairness, the paper's TCP-Prop).
        probing_window: number of probes per link direction used by the
            channel-loss estimator (the paper's ``S``).
        interference_mode: ``"two_hop"`` (online, Section 5.5) or a
            pre-built :class:`PairwiseInterferenceMap` for the binary-LIR
            reference model.
        payload_bytes: packet payload assumed by the capacity model.
        min_probes_for_estimator: below this many probes the raw loss
            rate is used instead of the sliding-window estimator.
    """

    def __init__(
        self,
        network: MeshNetwork,
        flows: list[FlowHandle],
        utility: AlphaFairUtility = PROPORTIONAL_FAIR,
        probing_window: int = 200,
        interference_mode: Literal["two_hop"] | PairwiseInterferenceMap = "two_hop",
        payload_bytes: int = 1470,
        connectivity_threshold: float = 0.5,
        min_probes_for_estimator: int = 40,
        auto_probing: bool = True,
    ) -> None:
        if not flows:
            raise ValueError("at least one flow is required")
        self.network = network
        self.flows = list(flows)
        self.utility = utility
        self.probing_window = probing_window
        self.interference_mode = interference_mode
        self.payload_bytes = payload_bytes
        self.connectivity_threshold = connectivity_threshold
        self.min_probes_for_estimator = min_probes_for_estimator
        self.rate_controller = RateController()
        if network.probing is None and auto_probing:
            network.enable_probing()

    # ----------------------------------------------------------------- links
    @property
    def links(self) -> list[Link]:
        """Directed links used by at least one flow, in first-use order."""
        ordered: list[Link] = []
        seen: set[Link] = set()
        for flow in self.flows:
            for link in flow.links:
                if link not in seen:
                    seen.add(link)
                    ordered.append(link)
        return ordered

    def _flow_routes(self) -> list[FlowRoute]:
        routes = []
        for flow in self.flows:
            routes.append(
                FlowRoute(
                    flow_id=flow.flow_id,
                    source=flow.path[0],
                    destination=flow.path[-1],
                    path=list(flow.path),
                )
            )
        return routes

    # ----------------------------------------------------- capacity estimation
    def estimate_links(self) -> dict[Link, LinkEstimate]:
        """Estimate channel loss and capacity for every used link."""
        probing = self.network.probing
        if probing is None:
            raise RuntimeError("probing is not enabled on the network")
        estimates: dict[Link, LinkEstimate] = {}
        for link in self.links:
            tx, rx = link
            data_series = probing.loss_series(
                tx, rx, "data", last_n=self.probing_window, rate=self.network.link_rate(link)
            )
            ack_series = probing.loss_series(rx, tx, "ack", last_n=self.probing_window)
            data_loss, data_case = self._estimate_direction(data_series)
            ack_loss, ack_case = self._estimate_direction(ack_series)
            channel_loss = combine_data_ack_losses(data_loss, ack_loss)
            capacity_model = CapacityModel(
                payload_bytes=self.payload_bytes,
                rate=self.network.link_rate(link),
                mac=self.network.mac_config,
            )
            estimates[link] = LinkEstimate(
                link=link,
                data_loss=data_loss,
                ack_loss=ack_loss,
                channel_loss=channel_loss,
                capacity_bps=capacity_model.max_udp_throughput_bps(min(channel_loss, 0.999999)),
                estimator_case=max(data_case, ack_case),
            )
        return estimates

    def _estimate_direction(self, series: np.ndarray) -> tuple[float, int]:
        if series.size == 0:
            return 0.0, 1
        if series.size < self.min_probes_for_estimator:
            return float(series.mean()), 1
        estimate = estimate_channel_loss_rate(series)
        return estimate.channel_loss_rate, estimate.case

    # -------------------------------------------------------------- conflicts
    def build_conflict_graph(self) -> ConflictGraph:
        """Conflict graph over the used links under the configured model."""
        if isinstance(self.interference_mode, PairwiseInterferenceMap):
            return ConflictGraph.from_interference_map(self.interference_mode)
        probing = self.network.probing
        if probing is None:
            raise RuntimeError("probing is not enabled on the network")
        # Connectivity: any node pair that can exchange basic-rate (ACK)
        # probes.  The basic rate has the widest decode range, so this is
        # the most conservative neighbour relation and therefore yields
        # the most conservative two-hop conflict set.
        loss_rates: dict[Link, float] = {}
        node_ids = self.network.node_ids
        for tx in node_ids:
            for rx in node_ids:
                if tx == rx:
                    continue
                if probing.probes_sent(tx, "ack") == 0:
                    continue
                loss_rates[(tx, rx)] = probing.loss_rate(tx, rx, "ack", self.probing_window)
        neighbors = connectivity_from_loss_rates(loss_rates, self.connectivity_threshold)
        interference = PairwiseInterferenceMap.from_two_hop(self.links, neighbors)
        return ConflictGraph.from_interference_map(interference)

    # ------------------------------------------------------------ optimization
    def optimize(
        self,
        estimates: dict[Link, LinkEstimate] | None = None,
        conflict_graph: ConflictGraph | None = None,
    ) -> ControlDecision:
        """Run measurement + optimization; does not program the sources."""
        estimates = estimates if estimates is not None else self.estimate_links()
        conflict_graph = conflict_graph if conflict_graph is not None else self.build_conflict_graph()
        capacities = {link: est.capacity_bps for link, est in estimates.items()}
        region = FeasibilityRegion.from_capacities_and_conflicts(capacities, conflict_graph)
        routes = self._flow_routes()
        routing = build_routing_matrix(routes, links=region.links)
        optimizer = RateOptimizer(region, routing, self.utility)
        result = optimizer.solve()
        link_losses = {link: est.channel_loss for link, est in estimates.items()}
        targets: dict[int, float] = {}
        inputs: dict[int, float] = {}
        path_losses: dict[int, float] = {}
        for idx, flow in enumerate(self.flows):
            y = float(result.flow_rates[idx])
            p_s = path_loss_probability(link_losses, flow.path)
            targets[flow.flow_id] = y
            path_losses[flow.flow_id] = p_s
            inputs[flow.flow_id] = y / max(1.0 - p_s, 1e-6)
        return ControlDecision(
            link_estimates=estimates,
            region=region,
            conflict_graph=conflict_graph,
            optimization=result,
            flow_ids=[f.flow_id for f in self.flows],
            target_outputs_bps=targets,
            input_rates_bps=inputs,
            path_losses=path_losses,
        )

    def apply(self, decision: ControlDecision) -> None:
        """Program every flow's shaper/CBR rate from a decision."""
        for flow in self.flows:
            target = decision.target_outputs_bps[flow.flow_id]
            loss = decision.path_losses.get(flow.flow_id, 0.0)
            if isinstance(flow, TcpFlowHandle):
                self.rate_controller.program_tcp(flow, target, loss)
            else:
                self.rate_controller.program_udp(flow, target, loss)

    def run_cycle(self) -> ControlDecision:
        """One full measurement/optimization/rate-control cycle."""
        decision = self.optimize()
        self.apply(decision)
        return decision
