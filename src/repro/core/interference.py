"""Interference models: the LIR metric, its binary classification, and
the online two-hop approximation.

Three ways of deciding which link pairs conflict appear in the paper:

* **LIR** (Link Interference Ratio, Padhye et al.) — measured by
  activating the two links alone and together; ``LIR = (c31 + c32) /
  (c11 + c22)``.  Values near 1 mean independence, lower values mean the
  links share the channel.
* **Binary LIR** — a threshold (0.95 in the paper) turns the continuous
  LIR into a binary conflict relation used to build the conflict graph.
* **Two-hop model** — the online-computable approximation of Section
  5.5: a link conflicts with every link whose endpoints are within one
  hop of its own endpoints in the connectivity graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

Link = tuple[int, int]

#: LIR threshold above which a link pair is classified as non-interfering.
DEFAULT_LIR_THRESHOLD = 0.95


def link_interference_ratio(c11: float, c22: float, c31: float, c32: float) -> float:
    """Eq. (5): LIR of a link pair from isolated and joint throughputs."""
    for value in (c11, c22, c31, c32):
        if value < 0:
            raise ValueError("throughputs must be non-negative")
    denominator = c11 + c22
    if denominator <= 0:
        return 0.0
    return (c31 + c32) / denominator


@dataclass(frozen=True)
class BinaryLirClassifier:
    """Thresholds a measured LIR into interfering / non-interfering."""

    threshold: float = DEFAULT_LIR_THRESHOLD

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.5:
            raise ValueError("LIR threshold should lie in (0, 1.5]")

    def interferes(self, lir: float) -> bool:
        """True when the pair must be treated as mutually exclusive."""
        return lir < self.threshold


class PairwiseInterferenceMap:
    """A symmetric conflict relation over a set of directed links.

    Built either from measured LIRs (:meth:`from_lir_measurements`) or
    from the two-hop rule (:meth:`from_two_hop`), and consumed by the
    conflict-graph / extreme-point machinery.
    """

    def __init__(self, links: Iterable[Link]) -> None:
        self.links: list[Link] = list(links)
        if len(set(self.links)) != len(self.links):
            raise ValueError("duplicate links in interference map")
        self._conflicts: set[frozenset[Link]] = set()

    # ------------------------------------------------------------- mutation
    def add_conflict(self, link_a: Link, link_b: Link) -> None:
        """Declare that two links interfere (symmetric)."""
        if link_a == link_b:
            return
        if link_a not in self.links or link_b not in self.links:
            raise KeyError("both links must belong to the map")
        self._conflicts.add(frozenset((link_a, link_b)))

    # -------------------------------------------------------------- queries
    def interferes(self, link_a: Link, link_b: Link) -> bool:
        if link_a == link_b:
            return False
        return frozenset((link_a, link_b)) in self._conflicts

    def conflicts_of(self, link: Link) -> list[Link]:
        """All links that conflict with ``link``."""
        return [other for other in self.links if self.interferes(link, other)]

    @property
    def conflict_pairs(self) -> list[tuple[Link, Link]]:
        pairs = []
        for pair in self._conflicts:
            a, b = tuple(pair)
            pairs.append((a, b))
        return pairs

    # ---------------------------------------------------------- constructors
    @classmethod
    def from_lir_measurements(
        cls,
        lir_values: Mapping[tuple[Link, Link], float],
        links: Iterable[Link],
        classifier: BinaryLirClassifier | None = None,
    ) -> "PairwiseInterferenceMap":
        """Build the conflict relation from measured pairwise LIRs.

        Pairs absent from ``lir_values`` are assumed non-interfering.
        """
        classifier = classifier or BinaryLirClassifier()
        mapping = cls(links)
        for (link_a, link_b), lir in lir_values.items():
            if classifier.interferes(lir):
                mapping.add_conflict(link_a, link_b)
        return mapping

    @classmethod
    def from_two_hop(
        cls,
        links: Iterable[Link],
        neighbors: Mapping[int, set[int]],
    ) -> "PairwiseInterferenceMap":
        """Build the two-hop interference relation of Section 5.5.

        Two links conflict when they share an endpoint, or when any
        endpoint of one is a one-hop neighbour (per the connectivity map
        ``neighbors``) of any endpoint of the other.
        """
        mapping = cls(links)
        link_list = mapping.links

        def reach(node: int) -> set[int]:
            return {node} | set(neighbors.get(node, set()))

        for i, link_a in enumerate(link_list):
            endpoints_a = set(link_a)
            extended_a = reach(link_a[0]) | reach(link_a[1])
            for link_b in link_list[i + 1 :]:
                endpoints_b = set(link_b)
                extended_b = reach(link_b[0]) | reach(link_b[1])
                if (
                    endpoints_a & endpoints_b
                    or endpoints_a & extended_b
                    or endpoints_b & extended_a
                ):
                    mapping.add_conflict(link_a, link_b)
        return mapping


def connectivity_from_loss_rates(
    loss_rates: Mapping[Link, float], delivery_threshold: float = 0.5
) -> dict[int, set[int]]:
    """Derive a symmetric neighbour map from probe loss rates.

    A pair of nodes are neighbours when probes get through in at least
    one direction with delivery ratio above ``delivery_threshold``; this
    is the connectivity input of the two-hop interference model when run
    online.
    """
    neighbors: dict[int, set[int]] = {}
    for (tx, rx), loss in loss_rates.items():
        if 1.0 - loss >= delivery_threshold:
            neighbors.setdefault(tx, set()).add(rx)
            neighbors.setdefault(rx, set()).add(tx)
    return neighbors
