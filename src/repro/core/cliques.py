"""Maximal clique / maximal independent set enumeration (Section 3.2).

Implements the combinatorial step behind Eq. (4) of the paper: the
secondary extreme points of the feasibility model are one per *maximal
independent set* of the link conflict graph — the largest sets of links
that can transmit simultaneously.  The paper uses the Makino–Uno
enumeration algorithm; we implement the classical Bron–Kerbosch
algorithm with pivoting, which enumerates the same family of sets and
is more than fast enough for mesh-sized conflict graphs (the paper's
worst case was ~200 extreme points).

Graphs are given as adjacency mappings ``vertex -> set of neighbours``;
helpers convert to/from the complement so independent sets can be
enumerated as cliques of the complement graph, exactly as the paper does.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping, TypeVar

Vertex = TypeVar("Vertex", bound=Hashable)
Adjacency = Mapping[Vertex, set]


def _validate_adjacency(adjacency: Adjacency) -> dict:
    graph = {v: set(neigh) for v, neigh in adjacency.items()}
    for vertex, neighbours in graph.items():
        if vertex in neighbours:
            raise ValueError(f"self-loop on vertex {vertex!r}")
        for other in neighbours:
            if other not in graph:
                raise ValueError(f"edge to unknown vertex {other!r}")
            if vertex not in graph[other]:
                raise ValueError("adjacency must be symmetric")
    return graph


def complement_graph(adjacency: Adjacency) -> dict:
    """The complement of an undirected graph (no self loops)."""
    graph = _validate_adjacency(adjacency)
    vertices = set(graph)
    return {v: (vertices - {v}) - graph[v] for v in graph}


def bron_kerbosch_cliques(adjacency: Adjacency) -> Iterator[frozenset]:
    """Enumerate all maximal cliques (Bron–Kerbosch with pivoting)."""
    graph = _validate_adjacency(adjacency)

    def expand(r: set, p: set, x: set) -> Iterator[frozenset]:
        if not p and not x:
            yield frozenset(r)
            return
        # Pivot on the vertex of P ∪ X with the most neighbours in P to
        # prune the branching.
        pivot = max(p | x, key=lambda v: len(graph[v] & p))
        for vertex in list(p - graph[pivot]):
            yield from expand(r | {vertex}, p & graph[vertex], x & graph[vertex])
            p.remove(vertex)
            x.add(vertex)

    if not graph:
        return
    yield from expand(set(), set(graph), set())


def maximal_cliques(adjacency: Adjacency) -> list[frozenset]:
    """All maximal cliques as a list (deterministically ordered)."""
    cliques = list(bron_kerbosch_cliques(adjacency))
    return sorted(cliques, key=lambda c: sorted(map(repr, c)))


def maximal_independent_sets(adjacency: Adjacency) -> list[frozenset]:
    """All maximal independent sets: maximal cliques of the complement."""
    return maximal_cliques(complement_graph(adjacency))


def adjacency_from_edges(
    vertices: Iterable[Hashable], edges: Iterable[tuple[Hashable, Hashable]]
) -> dict:
    """Build a symmetric adjacency mapping from a vertex and edge list."""
    graph: dict = {v: set() for v in vertices}
    for a, b in edges:
        if a not in graph or b not in graph:
            raise ValueError(f"edge ({a!r}, {b!r}) references unknown vertex")
        if a == b:
            continue
        graph[a].add(b)
        graph[b].add(a)
    return graph
