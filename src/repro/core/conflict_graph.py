"""Conflict graph over directed links.

Vertices are directed links, edges mark mutual exclusion (interference).
The conflict graph is the bridge between the interference model (binary
LIR or two-hop) and the feasibility model: its maximal independent sets
define the secondary extreme points of Eq. (4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import networkx as nx

from repro.core.cliques import adjacency_from_edges, maximal_independent_sets
from repro.core.interference import Link, PairwiseInterferenceMap


@dataclass
class ConflictGraph:
    """An undirected conflict graph over a fixed, ordered link set."""

    links: list[Link]
    adjacency: dict[Link, set[Link]]

    def __post_init__(self) -> None:
        if set(self.adjacency) != set(self.links):
            raise ValueError("adjacency must cover exactly the link set")

    # ---------------------------------------------------------- constructors
    @classmethod
    def from_interference_map(cls, interference: PairwiseInterferenceMap) -> "ConflictGraph":
        adjacency = adjacency_from_edges(interference.links, interference.conflict_pairs)
        return cls(links=list(interference.links), adjacency=adjacency)

    @classmethod
    def from_edges(
        cls, links: Iterable[Link], edges: Iterable[tuple[Link, Link]]
    ) -> "ConflictGraph":
        links = list(links)
        return cls(links=links, adjacency=adjacency_from_edges(links, edges))

    # ---------------------------------------------------------------- queries
    def interferes(self, link_a: Link, link_b: Link) -> bool:
        return link_b in self.adjacency.get(link_a, set())

    @property
    def num_edges(self) -> int:
        return sum(len(neigh) for neigh in self.adjacency.values()) // 2

    def degree(self, link: Link) -> int:
        return len(self.adjacency[link])

    def independent_sets(self) -> list[frozenset]:
        """All maximal independent sets (each is a set of links)."""
        return maximal_independent_sets(self.adjacency)

    def to_networkx(self) -> nx.Graph:
        """Export to a :class:`networkx.Graph` (for cross-checks and plots)."""
        graph = nx.Graph()
        graph.add_nodes_from(self.links)
        for link, neighbours in self.adjacency.items():
            for other in neighbours:
                graph.add_edge(link, other)
        return graph
