"""Two-link feasibility geometry (Figures 1, 5 and 6 of the paper).

For a pair of links the candidate regions have closed forms:

* the **time-sharing region** ``y1/c11 + y2/c22 <= 1`` (the binary model
  when the pair is classified interfering),
* the **independent region** ``y1 <= c11, y2 <= c22`` (the binary model
  when the pair is classified non-interfering),
* the **three-point region**: the downward closure of the convex hull of
  ``(c11, 0)``, ``(c31, c32)`` and ``(0, c22)`` — the reference model the
  paper uses to quantify the binary model's errors (Section 4.4).

This module provides membership tests, areas and the FP/FN error measures
derived from those areas.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TwoLinkRegions:
    """Feasibility-region geometry of one interfering link pair.

    Attributes:
        c11: max UDP throughput of link 1 alone (primary extreme point).
        c22: max UDP throughput of link 2 alone (primary extreme point).
        c31: throughput of link 1 when both links are backlogged.
        c32: throughput of link 2 when both links are backlogged.
    """

    c11: float
    c22: float
    c31: float | None = None
    c32: float | None = None

    def __post_init__(self) -> None:
        if self.c11 <= 0 or self.c22 <= 0:
            raise ValueError("primary extreme points must be positive")
        if (self.c31 is None) != (self.c32 is None):
            raise ValueError("c31 and c32 must be provided together")
        if self.c31 is not None and (self.c31 < 0 or self.c32 < 0):
            raise ValueError("secondary extreme point must be non-negative")

    # -------------------------------------------------------------- membership
    def in_time_sharing(self, y1: float, y2: float, tolerance: float = 1e-9) -> bool:
        """Membership in the time-sharing region."""
        if y1 < -tolerance or y2 < -tolerance:
            return False
        return y1 / self.c11 + y2 / self.c22 <= 1.0 + tolerance

    def in_independent(self, y1: float, y2: float, tolerance: float = 1e-9) -> bool:
        """Membership in the independent (rectangular) region."""
        if y1 < -tolerance or y2 < -tolerance:
            return False
        return y1 <= self.c11 * (1.0 + tolerance) and y2 <= self.c22 * (1.0 + tolerance)

    def in_three_point(self, y1: float, y2: float, tolerance: float = 1e-9) -> bool:
        """Membership in the three-point region (requires c31/c32).

        The region is the downward closure of the hull of the primary
        points and (c31, c32): below the segment (c11,0)-(c31,c32) and
        below the segment (c31,c32)-(0,c22) (whenever those segments
        actually expand the region beyond time-sharing, otherwise the
        time-sharing test applies).
        """
        if self.c31 is None:
            raise ValueError("three-point region requires the secondary extreme point")
        if y1 < -tolerance or y2 < -tolerance:
            return False
        if not self.in_independent(y1, y2, tolerance):
            return False
        if self.in_time_sharing(y1, y2, tolerance):
            return True
        # Above the time-sharing line: the point must lie below both hull
        # edges through (c31, c32).
        return self._below_edge(self.c11, 0.0, self.c31, self.c32, y1, y2, tolerance) and (
            self._below_edge(self.c31, self.c32, 0.0, self.c22, y1, y2, tolerance)
        )

    @staticmethod
    def _below_edge(
        x1: float, y1: float, x2: float, y2: float, px: float, py: float, tol: float
    ) -> bool:
        """Whether (px, py) lies on the origin side of the edge (x1,y1)-(x2,y2)."""
        cross = (x2 - x1) * (py - y1) - (y2 - y1) * (px - x1)
        # Orient the edge so the origin gives a negative cross product.
        origin_cross = (x2 - x1) * (0.0 - y1) - (y2 - y1) * (0.0 - x1)
        if origin_cross > 0:
            cross = -cross
        scale = max(abs(x1), abs(x2), abs(y1), abs(y2), 1.0)
        return cross <= tol * scale * scale

    # ------------------------------------------------------------------- areas
    @property
    def time_sharing_area(self) -> float:
        """Area ``A1`` of the time-sharing triangle."""
        return 0.5 * self.c11 * self.c22

    @property
    def independent_area(self) -> float:
        """Area of the independent rectangle (``c11 * c22``)."""
        return self.c11 * self.c22

    @property
    def three_point_area(self) -> float:
        """Area ``A1 + A2`` of the three-point region.

        When (c31, c32) lies inside the time-sharing triangle the hull
        degenerates to the triangle itself and the area equals ``A1``.
        """
        if self.c31 is None:
            raise ValueError("three-point area requires the secondary extreme point")
        if self.in_time_sharing(self.c31, self.c32):
            return self.time_sharing_area
        # Shoelace area of polygon (0,0) -> (c11,0) -> (c31,c32) -> (0,c22).
        xs = [0.0, self.c11, self.c31, 0.0]
        ys = [0.0, 0.0, self.c32, self.c22]
        area = 0.0
        for i in range(len(xs)):
            j = (i + 1) % len(xs)
            area += xs[i] * ys[j] - xs[j] * ys[i]
        return abs(area) / 2.0

    @property
    def capture_gain_area(self) -> float:
        """Area ``A2`` gained above time-sharing thanks to capture."""
        return max(0.0, self.three_point_area - self.time_sharing_area)

    # --------------------------------------------------------------- LIR & co.
    @property
    def lir(self) -> float:
        """LIR of the pair (requires c31/c32)."""
        if self.c31 is None:
            raise ValueError("LIR requires the secondary extreme point")
        return (self.c31 + self.c32) / (self.c11 + self.c22)

    def false_negative_error(self) -> float:
        """FN error when the binary model picks the time-sharing region.

        Fraction of the true (three-point) region missed: ``A2/(A1+A2)``.
        """
        total = self.three_point_area
        if total <= 0:
            return 0.0
        return self.capture_gain_area / total

    def false_positive_error(self) -> float:
        """FP error when the binary model picks the independent region.

        Relative over-estimation: ``(c11*c22 - (A1+A2)) / (A1+A2)``.
        """
        total = self.three_point_area
        if total <= 0:
            return 0.0
        return max(0.0, (self.independent_area - total) / total)
