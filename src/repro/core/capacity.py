"""Link capacity representation (Eq. 6 of the paper).

The max UDP throughput of a link is expressed as a closed-form function
of its *channel* loss rate ``p_l``::

    T(p_l) = P / (t_idle + t_tx)

* ``t_tx`` is the expected busy time per delivered packet: the expected
  number of MAC attempts ``ETX = 1/(1 - p_l)`` times the duration of one
  DATA/ACK exchange at the link's nominal throughput (DIFS + initial
  backoff + DATA + SIFS + ACK, from Jun et al. [19]).
* ``t_idle`` is the *extra* idle time caused by binary exponential
  backoff escalation across the retransmission attempts: summing the
  average backoff of stages ``1 .. floor(ETX)-1`` while the contention
  window keeps doubling, and ``(Wm - 1)/2`` slots per attempt once the
  window has saturated at stage ``m`` (the paper's ``F(a, b)`` terms).

At ``p_l = 0`` the expression reduces exactly to the nominal throughput.
The inverse mapping (loss rate from an observed max UDP throughput) is
provided for validation and testing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mac.constants import DEFAULT_MAC_CONFIG, MacConfig, UDP_TOTAL_HEADER_BYTES
from repro.mac.nominal import nominal_cycle_breakdown
from repro.phy.radio import PhyRate, RATE_1MBPS


@dataclass(frozen=True)
class CapacityModel:
    """Closed-form max-UDP-throughput model for one link configuration.

    Attributes:
        payload_bytes: UDP payload size ``P``.
        rate: modulation of DATA frames on the link.
        mac: MAC timing parameters.
        header_bytes: header overhead ``H`` (MAC + IP + UDP).
        ack_rate: modulation of 802.11 ACKs.
    """

    payload_bytes: int = 1470
    rate: PhyRate = RATE_1MBPS
    mac: MacConfig = DEFAULT_MAC_CONFIG
    header_bytes: int = UDP_TOTAL_HEADER_BYTES
    ack_rate: PhyRate = RATE_1MBPS

    # ------------------------------------------------------------ components
    def cycle_time_s(self) -> float:
        """Duration of one successful, uncontended DATA/ACK exchange."""
        return nominal_cycle_breakdown(
            self.payload_bytes, self.rate, self.mac, self.header_bytes, self.ack_rate
        ).cycle_s

    def expected_transmissions(self, loss_rate: float) -> float:
        """ETX: expected MAC attempts per delivered packet."""
        p = self._validate_loss(loss_rate)
        if p >= 1.0:
            return float("inf")
        return 1.0 / (1.0 - p)

    def _backoff_sum_slots(self, first_stage: int, last_stage: int) -> float:
        """Average backoff slots accumulated between two backoff stages.

        Implements the paper's ``F(a, b) = sigma * sum_{i=a}^{b}
        (2^i W0 - 1) / 2`` (returned here in slots, multiplied by the slot
        duration by the caller).  An empty range contributes zero.
        """
        total = 0.0
        w0 = self.mac.w0
        for stage in range(first_stage, last_stage + 1):
            window = min((2**stage) * w0, self.mac.wmax)
            total += (window - 1) / 2.0
        return total

    def idle_time_s(self, loss_rate: float) -> float:
        """Extra average idle (backoff escalation) time per delivered packet."""
        p = self._validate_loss(loss_rate)
        if p >= 1.0:
            return float("inf")
        etx_value = self.expected_transmissions(p)
        m = self.mac.max_backoff_stage
        sigma = self.mac.slot_s
        attempts = int(etx_value)
        if etx_value < m:
            slots = self._backoff_sum_slots(1, attempts - 1)
        else:
            slots = self._backoff_sum_slots(1, m - 1)
            slots += (attempts - m) * (self.mac.wmax - 1) / 2.0
        return sigma * max(slots, 0.0)

    def busy_time_s(self, loss_rate: float) -> float:
        """Expected channel-busy time per delivered packet (``t_tx``)."""
        p = self._validate_loss(loss_rate)
        if p >= 1.0:
            return float("inf")
        return self.expected_transmissions(p) * self.cycle_time_s()

    # ----------------------------------------------------------------- outputs
    def max_udp_throughput_bps(self, loss_rate: float) -> float:
        """Eq. (6): max UDP throughput of the link at channel loss ``p_l``."""
        p = self._validate_loss(loss_rate)
        if p >= 1.0:
            return 0.0
        denominator = self.busy_time_s(p) + self.idle_time_s(p)
        return self.payload_bytes * 8 / denominator

    def nominal_throughput_bps(self) -> float:
        """Throughput of a loss-free link (equals Jun et al.'s TMT)."""
        return self.max_udp_throughput_bps(0.0)

    def loss_rate_from_throughput(
        self, throughput_bps: float, tolerance: float = 1e-6
    ) -> float:
        """Invert the capacity representation by bisection.

        Returns the channel loss rate that would produce the observed max
        UDP throughput; clamps to [0, 1) and returns 0 for throughputs at
        or above the nominal value.
        """
        if throughput_bps <= 0:
            return 1.0
        if throughput_bps >= self.nominal_throughput_bps():
            return 0.0
        low, high = 0.0, 1.0 - 1e-9
        while high - low > tolerance:
            mid = (low + high) / 2.0
            if self.max_udp_throughput_bps(mid) > throughput_bps:
                low = mid
            else:
                high = mid
        return (low + high) / 2.0

    @staticmethod
    def _validate_loss(loss_rate: float) -> float:
        if loss_rate < 0.0 or loss_rate > 1.0:
            raise ValueError(f"loss rate must lie in [0, 1], got {loss_rate}")
        return loss_rate


def combine_data_ack_losses(p_data: float, p_ack: float) -> float:
    """Combined link loss rate ``1 - (1 - p_DATA)(1 - p_ACK)``."""
    for p in (p_data, p_ack):
        if p < 0.0 or p > 1.0:
            raise ValueError("loss rates must lie in [0, 1]")
    return 1.0 - (1.0 - p_data) * (1.0 - p_ack)
