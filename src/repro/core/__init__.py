"""The paper's primary contribution: the convex feasibility-region model
of an operational 802.11 mesh, its online parameter estimation (capacity
representation, channel-loss estimator, two-hop interference model) and
the utility-maximising rate-control loop built on top of it."""

from repro.core.capacity import CapacityModel, combine_data_ack_losses
from repro.core.loss_estimator import (
    ChannelLossEstimate,
    estimate_channel_loss_rate,
    sliding_min_loss_curve,
)
from repro.core.interference import (
    BinaryLirClassifier,
    DEFAULT_LIR_THRESHOLD,
    PairwiseInterferenceMap,
    connectivity_from_loss_rates,
    link_interference_ratio,
)
from repro.core.cliques import (
    adjacency_from_edges,
    bron_kerbosch_cliques,
    complement_graph,
    maximal_cliques,
    maximal_independent_sets,
)
from repro.core.conflict_graph import ConflictGraph
from repro.core.extreme_points import (
    FeasibilityRegion,
    primary_extreme_points,
    secondary_extreme_points,
)
from repro.core.feasibility import TwoLinkRegions
from repro.core.lir_error import (
    ExpectedErrors,
    PairSample,
    best_threshold,
    expected_errors,
    pair_error,
    synthetic_pair_from_lir,
    threshold_sweep,
)
from repro.core.utility import (
    AlphaFairUtility,
    MAX_THROUGHPUT,
    PROPORTIONAL_FAIR,
)
from repro.core.optimizer import OptimizationResult, RateOptimizer
from repro.core.rate_control import (
    FlowRateAssignment,
    RateController,
    input_rates_from_outputs,
    tcp_ack_airtime_factor,
)
from repro.core.controller import ControlDecision, LinkEstimate, OnlineOptimizer

__all__ = [
    "CapacityModel",
    "combine_data_ack_losses",
    "ChannelLossEstimate",
    "estimate_channel_loss_rate",
    "sliding_min_loss_curve",
    "BinaryLirClassifier",
    "DEFAULT_LIR_THRESHOLD",
    "PairwiseInterferenceMap",
    "connectivity_from_loss_rates",
    "link_interference_ratio",
    "adjacency_from_edges",
    "bron_kerbosch_cliques",
    "complement_graph",
    "maximal_cliques",
    "maximal_independent_sets",
    "ConflictGraph",
    "FeasibilityRegion",
    "primary_extreme_points",
    "secondary_extreme_points",
    "TwoLinkRegions",
    "ExpectedErrors",
    "PairSample",
    "best_threshold",
    "expected_errors",
    "pair_error",
    "synthetic_pair_from_lir",
    "threshold_sweep",
    "AlphaFairUtility",
    "MAX_THROUGHPUT",
    "PROPORTIONAL_FAIR",
    "OptimizationResult",
    "RateOptimizer",
    "FlowRateAssignment",
    "RateController",
    "input_rates_from_outputs",
    "tcp_ack_airtime_factor",
    "ControlDecision",
    "LinkEstimate",
    "OnlineOptimizer",
]
