"""Extreme points and the convex feasibility region (Sections 3.1–3.2).

The feasible rate region of the mesh is modeled as the set of link output
rate vectors dominated by a convex combination of *extreme points*:

* each **primary** extreme point puts one link at its capacity (its max
  UDP throughput when transmitting alone, backlogged — Section 3.1) and
  every other link at zero;
* each **secondary** extreme point corresponds to a maximal independent
  set of the conflict graph (enumerated by :mod:`repro.core.cliques`),
  with every member link at its capacity (Eq. 4: ``c2[m] = C1 * v[m]``).

A rate vector ``y`` is estimated feasible when there exist convex
weights ``alpha`` with ``sum_k alpha_k * c[k] >= y`` componentwise (the
polytope plus free disposal).  Membership and boundary queries reduce
to small linear programs solved with scipy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np
from scipy.optimize import linprog

from repro.core.conflict_graph import ConflictGraph
from repro.core.interference import Link


def primary_extreme_points(
    capacities: Mapping[Link, float], links: Sequence[Link]
) -> np.ndarray:
    """One extreme point per link: that link at capacity, others at zero."""
    _validate_capacities(capacities, links)
    matrix = np.zeros((len(links), len(links)), dtype=float)
    for index, link in enumerate(links):
        matrix[index, index] = capacities[link]
    return matrix


def secondary_extreme_points(
    capacities: Mapping[Link, float],
    conflict_graph: ConflictGraph,
    links: Sequence[Link] | None = None,
) -> np.ndarray:
    """Eq. (4): one extreme point per maximal independent set."""
    links = list(links) if links is not None else list(conflict_graph.links)
    _validate_capacities(capacities, links)
    independent_sets = conflict_graph.independent_sets()
    matrix = np.zeros((len(independent_sets), len(links)), dtype=float)
    for row, members in enumerate(independent_sets):
        for col, link in enumerate(links):
            if link in members:
                matrix[row, col] = capacities[link]
    return matrix


def _validate_capacities(capacities: Mapping[Link, float], links: Sequence[Link]) -> None:
    for link in links:
        if link not in capacities:
            raise KeyError(f"missing capacity for link {link}")
        if capacities[link] < 0:
            raise ValueError(f"capacity of link {link} must be non-negative")


@dataclass
class FeasibilityRegion:
    """The convex feasibility region spanned by a set of extreme points.

    Attributes:
        links: ordered directed links (columns of ``extreme_points``).
        extreme_points: ``K x L`` array, one extreme point per row.
    """

    links: list[Link]
    extreme_points: np.ndarray
    _cached_caps: dict[Link, float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.extreme_points = np.asarray(self.extreme_points, dtype=float)
        if self.extreme_points.ndim != 2:
            raise ValueError("extreme_points must be a 2-D array")
        if self.extreme_points.shape[1] != len(self.links):
            raise ValueError("extreme point dimension must match the number of links")
        if self.extreme_points.shape[0] == 0:
            raise ValueError("at least one extreme point is required")
        if np.any(self.extreme_points < 0):
            raise ValueError("extreme points must be non-negative")

    # ------------------------------------------------------------- properties
    @property
    def num_links(self) -> int:
        return len(self.links)

    @property
    def num_extreme_points(self) -> int:
        return int(self.extreme_points.shape[0])

    def link_index(self, link: Link) -> int:
        return self.links.index(link)

    def max_single_link_rate(self, link: Link) -> float:
        """The largest rate the region allows on one link alone."""
        return float(self.extreme_points[:, self.link_index(link)].max())

    # -------------------------------------------------------------- membership
    def contains(self, rates: Sequence[float] | np.ndarray, tolerance: float = 1e-9) -> bool:
        """Whether the link-rate vector ``rates`` is estimated feasible."""
        y = np.asarray(rates, dtype=float)
        if y.shape != (self.num_links,):
            raise ValueError(f"expected a vector of {self.num_links} link rates")
        if np.any(y < -tolerance):
            return False
        c = self.extreme_points  # (K, L)
        k = self.num_extreme_points
        # Feasibility LP over alpha: C^T alpha >= y, sum alpha = 1, alpha >= 0.
        result = linprog(
            c=np.zeros(k),
            A_ub=-c.T,
            b_ub=-(y - tolerance),
            A_eq=np.ones((1, k)),
            b_eq=np.array([1.0]),
            bounds=[(0.0, None)] * k,
            method="highs",
        )
        return bool(result.success)

    def max_scaling(self, direction: Sequence[float] | np.ndarray) -> float:
        """Largest ``theta`` such that ``theta * direction`` is feasible.

        This is how the validation experiments search for the boundary of
        the region along a given rate vector (scaling factors of Section
        4.5).  Returns 0 for the zero direction.
        """
        d = np.asarray(direction, dtype=float)
        if d.shape != (self.num_links,):
            raise ValueError(f"expected a vector of {self.num_links} link rates")
        if np.any(d < 0):
            raise ValueError("direction must be non-negative")
        if np.allclose(d, 0.0):
            return 0.0
        k = self.num_extreme_points
        # Variables: [theta, alpha_1..alpha_K]; maximize theta.
        objective = np.zeros(k + 1)
        objective[0] = -1.0
        a_ub = np.hstack([d.reshape(-1, 1), -self.extreme_points.T])
        b_ub = np.zeros(self.num_links)
        a_eq = np.zeros((1, k + 1))
        a_eq[0, 1:] = 1.0
        result = linprog(
            c=objective,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=np.array([1.0]),
            bounds=[(0.0, None)] * (k + 1),
            method="highs",
        )
        if not result.success:  # pragma: no cover - the LP is always feasible
            raise RuntimeError(f"max_scaling LP failed: {result.message}")
        return float(result.x[0])

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_capacities_and_conflicts(
        cls,
        capacities: Mapping[Link, float],
        conflict_graph: ConflictGraph,
        include_primary: bool = True,
    ) -> "FeasibilityRegion":
        """Build the model of Section 3.2 from capacities and conflicts."""
        links = list(conflict_graph.links)
        secondary = secondary_extreme_points(capacities, conflict_graph, links)
        if include_primary:
            primary = primary_extreme_points(capacities, links)
            points = np.vstack([primary, secondary]) if secondary.size else primary
        else:
            points = secondary
        return cls(links=links, extreme_points=points)
