"""Channel loss rate estimator (Section 5.3 of the paper).

During network operation the loss rate measured by broadcast probes mixes
two processes: *channel* losses (independent, caused by marginal links)
and *collision* losses (bursty, caused by interfering traffic).  The
capacity representation of Eq. (6) needs the channel component only.

The estimator scans the probing window of ``S`` probes with sliding
windows of every size ``W`` in ``[Wmin, S]``; for each ``W`` it records
the *minimum* loss rate over all window positions, ``p_ch^(W)``.  Small
windows find collision-free stretches (under-estimating), large windows
inevitably include collision bursts (approaching the overall measured
rate ``p``), so ``p_ch^(W)`` rises with ``W`` and saturates near the true
channel loss rate:

* **Case 1** — if ``p_ch^(W)`` reaches ``0.99 p`` before ``W = S/2``,
  losses are spread uniformly: the channel loss rate is simply ``p``.
* **Case 2** — otherwise the curve is fitted with ``a ln(w) + b`` and the
  knee (point of maximum curvature of the normalized fit) selects the
  window size ``W*``; the estimate is ``p_ch^(W*)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default minimum sliding-window size (number of probes).
DEFAULT_MIN_WINDOW = 10
#: Fraction of the measured loss rate that must be reached before S/2 for
#: the estimator to declare Case 1 (uniform losses).
CASE1_FRACTION = 0.99


@dataclass
class ChannelLossEstimate:
    """Output of the channel loss estimator for one link direction."""

    measured_loss_rate: float
    channel_loss_rate: float
    case: int
    window_sizes: np.ndarray
    min_loss_curve: np.ndarray
    selected_window: int
    log_fit_coefficients: tuple[float, float] | None = None


def sliding_min_loss_curve(
    loss_series: np.ndarray, min_window: int = DEFAULT_MIN_WINDOW
) -> tuple[np.ndarray, np.ndarray]:
    """Compute ``p_ch^(W)`` for every window size ``W`` in ``[Wmin, S]``.

    Args:
        loss_series: 0/1 array, 1 marking a lost probe, in send order.
        min_window: smallest sliding window (the paper uses 10).

    Returns:
        (window sizes, minimum loss rate per window size).
    """
    series = np.asarray(loss_series, dtype=float)
    if series.ndim != 1:
        raise ValueError("loss series must be one-dimensional")
    total = series.size
    if total == 0:
        raise ValueError("loss series is empty")
    if min_window < 1:
        raise ValueError("min_window must be at least 1")
    min_window = min(min_window, total)
    cumulative = np.concatenate(([0.0], np.cumsum(series)))
    sizes = np.arange(min_window, total + 1)
    minima = np.empty(sizes.size, dtype=float)
    for index, window in enumerate(sizes):
        window_sums = cumulative[window:] - cumulative[:-window]
        minima[index] = window_sums.min() / window
    return sizes, minima


def _knee_of_log_fit(
    sizes: np.ndarray, curve: np.ndarray
) -> tuple[int, tuple[float, float]]:
    """Fit ``a ln(w) + b`` and locate the knee of the normalized fit.

    The knee is the sample of maximum curvature of the fitted curve after
    normalizing both axes to [0, 1] (with the window size normalized
    *linearly*): the fitted ``a ln(w) + b`` rises steeply for small
    windows and flattens for large ones, and the maximum-curvature point
    marks where the rapid rise ends — the paper's selection rule.  The
    normalization makes the rule scale-free, so it behaves identically
    whether loss rates are near 0.01 or near 0.5.
    """
    log_sizes = np.log(sizes.astype(float))
    a, b = np.polyfit(log_sizes, curve, 1)
    fitted = a * log_sizes + b
    span_x = float(sizes[-1] - sizes[0])
    span_y = float(fitted[-1] - fitted[0])
    if span_x <= 0 or abs(span_y) < 1e-12:
        # Degenerate (flat) fit: any window is as good as another.
        return int(sizes[0]), (float(a), float(b))
    x = (sizes - sizes[0]) / span_x
    y = (fitted - fitted[0]) / span_y
    dy = np.gradient(y, x)
    d2y = np.gradient(dy, x)
    curvature = np.abs(d2y) / (1.0 + dy**2) ** 1.5
    # Ignore the very first and last samples where the discrete gradient
    # is one-sided and noisy.
    if curvature.size > 4:
        interior = slice(1, -1)
        knee_index = 1 + int(np.argmax(curvature[interior]))
    else:
        knee_index = int(np.argmax(curvature))
    return int(sizes[knee_index]), (float(a), float(b))


def estimate_channel_loss_rate(
    loss_series: np.ndarray,
    min_window: int = DEFAULT_MIN_WINDOW,
    case1_fraction: float = CASE1_FRACTION,
) -> ChannelLossEstimate:
    """Estimate the channel (non-collision) loss rate of a probe series.

    Args:
        loss_series: 0/1 loss indicators of ``S`` consecutive probes.
        min_window: smallest sliding window size.
        case1_fraction: fraction of the measured loss rate that must be
            reached before ``S/2`` to trigger Case 1.
    """
    series = np.asarray(loss_series, dtype=float)
    measured = float(series.mean()) if series.size else 0.0
    sizes, curve = sliding_min_loss_curve(series, min_window)
    total = series.size

    if measured == 0.0:
        return ChannelLossEstimate(
            measured_loss_rate=0.0,
            channel_loss_rate=0.0,
            case=1,
            window_sizes=sizes,
            min_loss_curve=curve,
            selected_window=int(sizes[-1]),
        )

    # Case 1: the curve reaches the measured loss rate before S/2.
    threshold = case1_fraction * measured
    half_mask = sizes <= total / 2
    if np.any(curve[half_mask] >= threshold):
        return ChannelLossEstimate(
            measured_loss_rate=measured,
            channel_loss_rate=measured,
            case=1,
            window_sizes=sizes,
            min_loss_curve=curve,
            selected_window=int(sizes[half_mask][np.argmax(curve[half_mask] >= threshold)]),
        )

    # Case 2: log fit and maximum-curvature knee.
    selected_window, coefficients = _knee_of_log_fit(sizes, curve)
    position = int(np.searchsorted(sizes, selected_window))
    position = min(position, curve.size - 1)
    estimate = float(curve[position])
    return ChannelLossEstimate(
        measured_loss_rate=measured,
        channel_loss_rate=min(estimate, measured),
        case=2,
        window_sizes=sizes,
        min_loss_curve=curve,
        selected_window=selected_window,
        log_fit_coefficients=coefficients,
    )
