"""Monitor protocol, registry and the sampling host.

A *monitor* turns a dynamic run into typed per-flow time series instead
of a single end-of-run aggregate — the trajectory view the paper's
online optimizer is judged on.  The design piggybacks the profiler-hook
pattern of :mod:`repro.engine`: a :class:`MonitorHost` registers itself
on ``Simulator.monitors`` and drives sampling through ordinary
self-rechaining events, so the simulator's dispatch loop never tests for
monitors and an experiment that configures none pays nothing.

Monitor selection is part of :class:`repro.experiment.specs.ExperimentSpec`
(``monitors`` / ``monitor_interval_s``), *not* an environment knob: the
emitted series are serialized into the content-addressed
``ExperimentResult`` payload, so anything influencing them must be under
the spec digest for the cache and broker paths to stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Protocol

__all__ = [
    "FlowSeries",
    "Monitor",
    "MonitorHost",
    "create_monitor",
    "monitor_description",
    "monitor_names",
    "register_monitor",
]


@dataclass(frozen=True)
class FlowSeries:
    """One flow's sampled metric: parallel time/value tuples.

    ``times`` are virtual-time window *ends*; ``values[i]`` covers the
    window ``(times[i-1], times[i]]`` (the first window starts when the
    monitors did).  Round-trips through ``to_dict``/``from_dict``, which
    is how series travel inside ``ExperimentResult`` payloads.
    """

    flow_id: int
    metric: str
    times: tuple[float, ...]
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.values):
            raise ValueError("times and values must have equal length")

    def to_dict(self) -> dict[str, Any]:
        return {
            "flow_id": self.flow_id,
            "metric": self.metric,
            "times": list(self.times),
            "values": list(self.values),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FlowSeries":
        return cls(
            flow_id=int(data["flow_id"]),
            metric=str(data["metric"]),
            times=tuple(float(t) for t in data["times"]),
            values=tuple(float(v) for v in data["values"]),
        )


class Monitor(Protocol):
    """What the host expects from a registered monitor.

    ``attach`` binds the monitor to a built network and its flow
    handles before traffic starts; ``sample`` closes one observation
    window ``[window_start, window_end)`` of virtual time; ``series``
    returns the accumulated per-flow time series (one
    :class:`FlowSeries` per flow, in flow-id order).
    """

    name: str

    def attach(self, network: Any, flows: list[Any]) -> None: ...

    def sample(self, window_start: float, window_end: float) -> None: ...

    def series(self) -> list[FlowSeries]: ...


@dataclass(frozen=True)
class _MonitorRegistration:
    factory: Callable[[], Monitor]
    description: str


_MONITORS: dict[str, _MonitorRegistration] = {}


def register_monitor(
    name: str, *, description: str = ""
) -> Callable[[Callable[[], Monitor]], Callable[[], Monitor]]:
    """Register a zero-argument monitor factory (usually a class)."""

    def decorator(factory: Callable[[], Monitor]) -> Callable[[], Monitor]:
        if name in _MONITORS:
            raise ValueError(f"monitor {name!r} is already registered")
        _MONITORS[name] = _MonitorRegistration(
            factory=factory, description=description or (factory.__doc__ or "").strip()
        )
        return factory

    return decorator


def monitor_names() -> list[str]:
    """Every registered monitor name, sorted."""
    return sorted(_MONITORS)


def monitor_description(name: str) -> str:
    """The one-line description a monitor registered with."""
    return _lookup(name).description


def _lookup(name: str) -> _MonitorRegistration:
    if name not in _MONITORS:
        raise KeyError(f"unknown monitor {name!r}; registered: {monitor_names()}")
    return _MONITORS[name]


def create_monitor(name: str) -> Monitor:
    """Instantiate the registered monitor ``name``."""
    return _lookup(name).factory()


class MonitorHost:
    """Attaches monitors to a run and drives their sampling windows.

    The host samples every ``interval_s`` seconds of virtual time via a
    self-rechaining event (started at flow start, spanning cycle
    boundaries), then :meth:`collect` closes the final partial window —
    deterministically, since both the event times and the run end are
    pure virtual-time quantities.  It registers itself on
    ``Simulator.monitors`` as the discoverable attachment point; the run
    loop itself never reads that attribute.
    """

    def __init__(
        self,
        network: Any,
        flows: list[Any],
        names: tuple[str, ...] | list[str],
        interval_s: float = 1.0,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.network = network
        self.interval_s = float(interval_s)
        self.monitors: list[Monitor] = [create_monitor(name) for name in names]
        for monitor in self.monitors:
            monitor.attach(network, flows)
        self._window_start = 0.0
        self._started = False
        self._finished = False

    def start(self) -> None:
        """Open the first window and begin the sampling chain."""
        if self._started:
            raise RuntimeError("MonitorHost is already started")
        self._started = True
        sim = self.network.sim
        sim.monitors = self
        self._window_start = sim.now
        sim.schedule(self.interval_s, self._on_window)

    def _on_window(self) -> None:
        if self._finished:
            return
        now = self.network.sim.now
        for monitor in self.monitors:
            monitor.sample(self._window_start, now)
        self._window_start = now
        self.network.sim.schedule(self.interval_s, self._on_window)

    def finish(self) -> None:
        """Close the final (possibly partial) window.  Idempotent."""
        if self._finished:
            return
        self._finished = True
        now = self.network.sim.now
        if now - self._window_start > 1e-12:
            for monitor in self.monitors:
                monitor.sample(self._window_start, now)

    def collect(self) -> dict[str, list[FlowSeries]]:
        """Finish sampling and return every monitor's series by name."""
        self.finish()
        return {monitor.name: monitor.series() for monitor in self.monitors}
