"""Typed run-time monitors: per-flow time series for dynamic scenarios.

Importing this package registers the built-in monitors (``pdr``,
``throughput``, ``e2e_latency``) — :mod:`repro.experiment.specs`
validates ``ExperimentSpec.monitors`` against :func:`monitor_names`, so
registration must be an import side effect of the package itself.
"""

from repro.monitors.base import (
    FlowSeries,
    Monitor,
    MonitorHost,
    create_monitor,
    monitor_description,
    monitor_names,
    register_monitor,
)
from repro.monitors.flows import E2ELatencyMonitor, PDRMonitor, ThroughputMonitor

__all__ = [
    "E2ELatencyMonitor",
    "FlowSeries",
    "Monitor",
    "MonitorHost",
    "PDRMonitor",
    "ThroughputMonitor",
    "create_monitor",
    "monitor_description",
    "monitor_names",
    "register_monitor",
]
