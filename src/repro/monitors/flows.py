"""The built-in per-flow monitors: PDR, throughput, end-to-end latency.

Each monitor samples every configured flow once per window and appends
to a per-flow series, regardless of transport: UDP flows are observed
through :class:`~repro.transport.udp.UdpSource`/``UdpSink`` counters,
TCP flows through :class:`~repro.transport.tcp.TcpStats` and the sink's
unique-segment arrival log (so TCP "delivery" means goodput-counted
segments, with retransmissions counted on the send side — the same
convention the end-of-run ``goodput_bps`` uses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.net.packet import Packet, PacketKind
from repro.monitors.base import FlowSeries, register_monitor

__all__ = ["E2ELatencyMonitor", "PDRMonitor", "ThroughputMonitor"]


@dataclass
class _FlowView:
    """Transport-agnostic read access to one flow's counters."""

    handle: Any
    sent: Callable[[], int]
    delivered: Callable[[], int]

    @property
    def flow_id(self) -> int:
        return self.handle.flow_id


def _flow_views(flows: list[Any]) -> list[_FlowView]:
    """Wrap UDP and TCP flow handles behind one counter interface."""
    views: list[_FlowView] = []
    for handle in flows:
        if hasattr(handle, "source"):  # UdpFlowHandle
            views.append(
                _FlowView(
                    handle=handle,
                    sent=lambda h=handle: h.source.stats.packets_sent,
                    delivered=lambda h=handle: h.sink.received_packets,
                )
            )
        else:  # TcpFlowHandle
            views.append(
                _FlowView(
                    handle=handle,
                    sent=lambda h=handle: h.flow.source.stats.segments_sent,
                    delivered=lambda h=handle: len(h.flow.sink.arrivals),
                )
            )
    views.sort(key=lambda view: view.flow_id)
    return views


@dataclass
class _SeriesBuilder:
    """Mutable accumulator for one flow's (time, value) samples."""

    flow_id: int
    metric: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, time_s: float, value: float) -> None:
        self.times.append(float(time_s))
        self.values.append(float(value))

    def build(self) -> FlowSeries:
        return FlowSeries(
            flow_id=self.flow_id,
            metric=self.metric,
            times=tuple(self.times),
            values=tuple(self.values),
        )


@register_monitor("pdr", description="per-window packet delivery ratio per flow")
class PDRMonitor:
    """Packet delivery ratio per window: delivered delta / sent delta.

    A window in which the source offered nothing reports 1.0 (vacuous
    delivery — nothing was lost), which keeps the series well-defined
    across idle windows instead of injecting NaNs into payloads.  A
    window's ratio can exceed 1.0 when a prior window's queue backlog
    drains into it (e.g. the first window after a churn rejoin); the
    series is deliberately left un-clamped so those catch-up bursts stay
    visible.
    """

    name = "pdr"
    metric = "pdr"

    def attach(self, network: Any, flows: list[Any]) -> None:
        self._views = _flow_views(flows)
        self._last: dict[int, tuple[int, int]] = {
            view.flow_id: (view.sent(), view.delivered()) for view in self._views
        }
        self._builders = [
            _SeriesBuilder(view.flow_id, self.metric) for view in self._views
        ]

    def sample(self, window_start: float, window_end: float) -> None:
        for view, builder in zip(self._views, self._builders):
            sent, delivered = view.sent(), view.delivered()
            last_sent, last_delivered = self._last[view.flow_id]
            self._last[view.flow_id] = (sent, delivered)
            sent_delta = sent - last_sent
            delivered_delta = delivered - last_delivered
            value = delivered_delta / sent_delta if sent_delta > 0 else 1.0
            builder.append(window_end, value)

    def series(self) -> list[FlowSeries]:
        return [builder.build() for builder in self._builders]


@register_monitor("throughput", description="per-window goodput (bit/s) per flow")
class ThroughputMonitor:
    """Per-window goodput through each flow handle's ``throughput_bps``
    (UDP payload goodput; TCP unique-segment goodput)."""

    name = "throughput"
    metric = "throughput_bps"

    def attach(self, network: Any, flows: list[Any]) -> None:
        self._views = _flow_views(flows)
        self._builders = [
            _SeriesBuilder(view.flow_id, self.metric) for view in self._views
        ]

    def sample(self, window_start: float, window_end: float) -> None:
        for view, builder in zip(self._views, self._builders):
            builder.append(
                window_end, view.handle.throughput_bps(window_start, window_end)
            )

    def series(self) -> list[FlowSeries]:
        return [builder.build() for builder in self._builders]


@register_monitor("e2e_latency", description="per-window mean end-to-end delay per flow")
class E2ELatencyMonitor:
    """Mean end-to-end delay (``now - packet.created_at``) of the data
    packets delivered to each flow's destination during the window.

    Observes deliveries directly via the destination node's delivery
    handlers (the same hook the transport sinks use), so retransmitted
    TCP segments that arrive as duplicates are included — this is a MAC
    and queueing delay measure, not a goodput one.  A window with no
    deliveries reports 0.0.
    """

    name = "e2e_latency"
    metric = "e2e_latency_s"

    _DATA_KINDS = (PacketKind.UDP, PacketKind.TCP_DATA)

    def attach(self, network: Any, flows: list[Any]) -> None:
        views = _flow_views(flows)
        self._builders = [_SeriesBuilder(view.flow_id, self.metric) for view in views]
        # sum of delays and delivery count accumulated in the open window
        self._accum: dict[int, tuple[float, int]] = {
            view.flow_id: (0.0, 0) for view in views
        }
        self._order = [view.flow_id for view in views]
        for view in views:
            destination = network.nodes[view.handle.path[-1]]
            destination.add_delivery_handler(
                self._make_handler(view.flow_id, destination)
            )

    def _make_handler(self, flow_id: int, node: Any) -> Callable[[Packet, int], None]:
        def on_delivery(packet: Packet, from_id: int) -> None:
            if packet.kind not in self._DATA_KINDS or packet.flow_id != flow_id:
                return
            total, count = self._accum[flow_id]
            self._accum[flow_id] = (
                total + (node.sim.now - packet.created_at),
                count + 1,
            )

        return on_delivery

    def sample(self, window_start: float, window_end: float) -> None:
        for flow_id, builder in zip(self._order, self._builders):
            total, count = self._accum[flow_id]
            self._accum[flow_id] = (0.0, 0)
            builder.append(window_end, total / count if count else 0.0)

    def series(self) -> list[FlowSeries]:
        return [builder.build() for builder in self._builders]
