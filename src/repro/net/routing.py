"""Routing: ETX/ETT link metrics, Dijkstra path computation and the
routing matrix used by the optimizer.

The paper's implementation reuses the Srcr routing protocol with the ETT
metric of Draves et al. and fixes routes for the duration of each
experiment.  We reproduce the functional pieces: link metrics derived
from probe loss rates and link rates, shortest paths under those metrics,
per-node next-hop table installation, and construction of the binary
routing matrix ``R`` (links x flows) consumed by the convex optimization
of Section 6.1.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.phy.radio import PhyRate


Link = tuple[int, int]


def etx(p_forward: float, p_reverse: float = 0.0) -> float:
    """Expected transmission count of a link.

    ``ETX = 1 / ((1 - p_fwd) * (1 - p_rev))`` where ``p_fwd`` is the DATA
    loss probability and ``p_rev`` the ACK loss probability.  Returns
    ``inf`` for unusable links.
    """
    delivery = (1.0 - min(max(p_forward, 0.0), 1.0)) * (1.0 - min(max(p_reverse, 0.0), 1.0))
    if delivery <= 0.0:
        return float("inf")
    return 1.0 / delivery


def ett(p_forward: float, p_reverse: float, packet_bytes: int, rate: PhyRate) -> float:
    """Expected transmission time of a link in seconds.

    ``ETT = ETX * S / B`` with packet size ``S`` and link bandwidth ``B``.
    """
    count = etx(p_forward, p_reverse)
    if count == float("inf"):
        return float("inf")
    return count * (packet_bytes * 8) / rate.bps


@dataclass
class RouteResult:
    """Output of a shortest-path computation from one source."""

    source: int
    distance: dict[int, float]
    predecessor: dict[int, int]

    def path_to(self, destination: int) -> list[int] | None:
        """Node sequence from the source to ``destination`` or ``None``."""
        if destination == self.source:
            return [self.source]
        if destination not in self.predecessor:
            return None
        path = [destination]
        while path[-1] != self.source:
            path.append(self.predecessor[path[-1]])
        path.reverse()
        return path


def dijkstra(
    nodes: list[int], weights: dict[Link, float], source: int
) -> RouteResult:
    """Dijkstra single-source shortest paths over a directed link-weight map.

    Links with infinite weight are treated as absent.
    """
    if source not in nodes:
        raise ValueError(f"source {source} is not a node")
    adjacency: dict[int, list[tuple[int, float]]] = {n: [] for n in nodes}
    for (u, v), w in weights.items():
        if w == float("inf"):
            continue
        if w < 0:
            raise ValueError("link weights must be non-negative")
        if u in adjacency:
            adjacency[u].append((v, w))
    distance = {source: 0.0}
    predecessor: dict[int, int] = {}
    visited: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        dist, u = heapq.heappop(heap)
        if u in visited:
            continue
        visited.add(u)
        for v, w in adjacency[u]:
            nd = dist + w
            if nd < distance.get(v, float("inf")) - 1e-15:
                distance[v] = nd
                predecessor[v] = u
                heapq.heappush(heap, (nd, v))
    return RouteResult(source=source, distance=distance, predecessor=predecessor)


@dataclass
class FlowRoute:
    """A routed multi-hop flow."""

    flow_id: int
    source: int
    destination: int
    path: list[int]

    @property
    def links(self) -> list[Link]:
        """Directed links traversed by the flow, in order."""
        return list(zip(self.path[:-1], self.path[1:]))

    @property
    def hop_count(self) -> int:
        return len(self.path) - 1


@dataclass
class RoutingMatrix:
    """Binary routing matrix ``R`` with links as rows and flows as columns."""

    links: list[Link]
    flows: list[FlowRoute]
    matrix: np.ndarray

    def link_index(self, link: Link) -> int:
        return self.links.index(link)

    def flows_on_link(self, link: Link) -> list[FlowRoute]:
        idx = self.link_index(link)
        return [f for j, f in enumerate(self.flows) if self.matrix[idx, j] > 0]


class Router:
    """Centralised route computation mirroring Srcr's behaviour.

    Routes are computed from a global view of link weights (each node in
    the real system floods its measurements; centralising the computation
    changes nothing about the resulting paths) and installed into the
    per-node next-hop tables of a :class:`repro.sim.network.MeshNetwork`.
    """

    def __init__(self, nodes: list[int], weights: dict[Link, float]) -> None:
        self.nodes = list(nodes)
        self.weights = dict(weights)
        self._route_cache: dict[int, RouteResult] = {}

    def update_weights(self, weights: dict[Link, float]) -> None:
        """Replace the link weights and invalidate cached shortest paths."""
        self.weights = dict(weights)
        self._route_cache.clear()

    def shortest_path(self, source: int, destination: int) -> list[int] | None:
        if source not in self._route_cache:
            self._route_cache[source] = dijkstra(self.nodes, self.weights, source)
        return self._route_cache[source].path_to(destination)

    def route_flows(
        self, demands: list[tuple[int, int]], first_flow_id: int = 0
    ) -> list[FlowRoute]:
        """Route a list of (source, destination) demands.

        Raises:
            ValueError: if any demand has no path under the current weights.
        """
        flows = []
        for offset, (src, dst) in enumerate(demands):
            path = self.shortest_path(src, dst)
            if path is None:
                raise ValueError(f"no route from {src} to {dst}")
            flows.append(
                FlowRoute(flow_id=first_flow_id + offset, source=src, destination=dst, path=path)
            )
        return flows


def build_routing_matrix(flows: list[FlowRoute], links: list[Link] | None = None) -> RoutingMatrix:
    """Build the binary links-by-flows routing matrix of Section 6.1.

    If ``links`` is omitted, the link set is the union of all links used
    by the flows, in first-appearance order.
    """
    if links is None:
        links = []
        seen: set[Link] = set()
        for flow in flows:
            for link in flow.links:
                if link not in seen:
                    seen.add(link)
                    links.append(link)
    index = {link: i for i, link in enumerate(links)}
    matrix = np.zeros((len(links), len(flows)), dtype=float)
    for j, flow in enumerate(flows):
        for link in flow.links:
            if link not in index:
                raise ValueError(f"flow {flow.flow_id} uses link {link} not in the link set")
            matrix[index[link], j] = 1.0
    return RoutingMatrix(links=list(links), flows=list(flows), matrix=matrix)


def path_loss_probability(link_losses: dict[Link, float], path: list[int]) -> float:
    """End-to-end loss probability of a path: ``1 - prod(1 - p_l)``.

    This is the ``p_s`` the paper uses to translate target output rates
    into input rates (``x_s = y_s / (1 - p_s)``).
    """
    survival = 1.0
    for link in zip(path[:-1], path[1:]):
        p = min(max(link_losses.get(link, 0.0), 0.0), 1.0)
        survival *= 1.0 - p
    return 1.0 - survival
