"""Network-layer packet representation.

A :class:`Packet` is what flows and probes hand to a mesh node for
delivery; nodes wrap packets into MAC frames hop by hop.  Packets keep
their end-to-end addressing (network source/destination), a flow id used
by sinks and shapers, and free-form ``meta`` used by TCP (sequence and
acknowledgment numbers) and by the probing system.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

_packet_ids = itertools.count()


class PacketKind(Enum):
    """Traffic classes carried over the mesh."""

    UDP = "udp"
    TCP_DATA = "tcp_data"
    TCP_ACK = "tcp_ack"
    PROBE = "probe"
    CONTROL = "control"


@dataclass(slots=True)
class Packet:
    """An end-to-end network-layer packet.

    Attributes:
        kind: traffic class.
        src: originating node id.
        dst: final destination node id.
        flow_id: identifier of the flow the packet belongs to (``-1`` for
            control traffic and probes).
        payload_bytes: transport payload size; headers are added per hop
            by the node when building MAC frames.
        created_at: virtual time at which the packet entered the network.
        seq: per-flow sequence number.
        meta: protocol-specific fields (TCP sequence numbers, probe ids).
        hops: number of MAC hops traversed so far.
    """

    kind: PacketKind
    src: int
    dst: int
    flow_id: int
    payload_bytes: int
    created_at: float
    seq: int = 0
    meta: dict[str, Any] = field(default_factory=dict)
    hops: int = 0
    packet_id: int = field(default_factory=_packet_ids.__next__)

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
