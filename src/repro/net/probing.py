"""Network-layer broadcast probing.

This is the measurement substrate of the paper's online capacity
estimation (Section 5.2): every node periodically broadcasts

* a DATA-emulating probe — same size and modulation as a DATA frame, and
* an ACK-emulating probe — ACK-sized, sent at the 1 Mb/s basic rate,

and every neighbour records which sequence numbers it received.  Because
broadcast frames are never retransmitted by the MAC, the resulting loss
pattern reflects the raw loss process the MAC experiences, including both
channel errors and collisions; the channel-loss estimator of Section 5.3
then separates the two.

The probing system exposes per-directed-link loss *series* (ordered 0/1
loss indicators) and loss *rates*, and combines the DATA loss of the
forward direction with the ACK loss of the reverse direction into the
link loss rate ``p_l = 1 - (1 - p_DATA)(1 - p_ACK)`` used by Eq. (6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Iterable

import numpy as np

from repro.mac.constants import ACK_FRAME_BYTES
from repro.net.node import MeshNode
from repro.phy.radio import PhyRate, RATE_1MBPS
from repro.engine import Simulator


#: Default probing period (seconds); the paper uses 0.5 s.
DEFAULT_PROBE_PERIOD_S = 0.5
#: Default DATA probe size on the air (matches a 1500-byte UDP datagram).
DEFAULT_DATA_PROBE_BYTES = 1500


@dataclass(frozen=True)
class ProbePayload:
    """Payload carried by a broadcast probe frame."""

    sender: int
    seq: int
    kind: str  # "data" or "ack"
    rate_name: str = ""


@dataclass
class _ProbeLog:
    """Reception record of probes from one sender/kind at one receiver."""

    received: set[int] = field(default_factory=set)


class ProbingSystem:
    """Coordinates per-node probers and collects reception records.

    Args:
        sim: discrete-event simulator.
        nodes: the mesh nodes participating in probing.
        period_s: probing period (one DATA probe and one ACK probe per
            period per node).
        data_probe_bytes: on-air size of the DATA-emulating probe.
        jitter_fraction: uniform jitter applied to each probe interval to
            avoid phase-locking all probers (real systems desynchronise
            naturally).
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: Iterable[MeshNode],
        period_s: float = DEFAULT_PROBE_PERIOD_S,
        data_probe_bytes: int = DEFAULT_DATA_PROBE_BYTES,
        ack_probe_bytes: int = ACK_FRAME_BYTES,
        ack_rate: PhyRate = RATE_1MBPS,
        jitter_fraction: float = 0.1,
    ) -> None:
        if period_s <= 0:
            raise ValueError("probing period must be positive")
        self.sim = sim
        self.nodes = {node.node_id: node for node in nodes}
        self.period_s = period_s
        self.data_probe_bytes = data_probe_bytes
        self.ack_probe_bytes = ack_probe_bytes
        self.ack_rate = ack_rate
        self.jitter_fraction = jitter_fraction
        self._rng = sim.rng_stream("probing")
        self._sent: dict[tuple[int, str], int] = {}
        self._logs: dict[tuple[int, int, str], _ProbeLog] = {}
        self._label_cache: dict[tuple[str, str], str] = {}
        self._running = False
        # One reusable reschedule callback per node: probing fires every
        # period for the whole run, so the per-fire lambda allocation is
        # hoisted out of the hot path.
        self._probe_callbacks = {
            node_id: partial(self._probe_once, node_id) for node_id in self.nodes
        }
        for node in self.nodes.values():
            node.add_broadcast_handler(self._make_handler(node.node_id))

    # ---------------------------------------------------------------- wiring
    def _make_handler(self, receiver_id: int):
        def handler(payload: object, sender: int) -> None:
            if isinstance(payload, ProbePayload):
                self._record(receiver_id, payload)

        return handler

    @staticmethod
    def _kind_label(kind: str, rate: PhyRate | None) -> str:
        """Internal bookkeeping label: ACK probes share one stream, DATA
        probes are tracked per modulation (mixed 1 / 11 Mb/s meshes need
        per-rate loss estimates, since a frame that survives at 1 Mb/s may
        be undecodable at 11 Mb/s)."""
        if kind == "ack" or rate is None:
            return kind
        return f"{kind}@{rate.name}"

    def _record(self, receiver_id: int, payload: ProbePayload) -> None:
        # Hot path: one call per probe reception.  The label strings are
        # memoised and the log is only allocated on first sight of a
        # (sender, receiver, label) stream.
        rate_name = payload.rate_name
        if rate_name:
            label_key = (payload.kind, rate_name)
            label = self._label_cache.get(label_key)
            if label is None:
                label = self._label_cache[label_key] = f"{payload.kind}@{rate_name}"
        else:
            label = payload.kind
        key = (payload.sender, receiver_id, label)
        log = self._logs.get(key)
        if log is None:
            log = self._logs[key] = _ProbeLog()
        log.received.add(payload.seq)

    # --------------------------------------------------------------- probing
    def start(self) -> None:
        """Begin periodic probing at every node."""
        if self._running:
            return
        self._running = True
        for node_id in self.nodes:
            offset = float(self._rng.uniform(0.0, self.period_s))
            self.sim.schedule(offset, self._probe_callbacks[node_id])

    def stop(self) -> None:
        """Stop scheduling new probes (in-flight probes still complete)."""
        self._running = False

    def _data_rates_of(self, node: MeshNode) -> list[PhyRate]:
        """Distinct modulations this node's DATA frames may use."""
        rates = {node.data_rate.name: node.data_rate}
        for rate in node.link_rates.values():
            rates[rate.name] = rate
        return list(rates.values())

    def _probe_once(self, node_id: int) -> None:
        if not self._running:
            return
        node = self.nodes[node_id]
        probes: list[tuple[str, int, PhyRate]] = [
            ("data", self.data_probe_bytes, rate) for rate in self._data_rates_of(node)
        ]
        probes.append(("ack", self.ack_probe_bytes, self.ack_rate))
        for kind, size, rate in probes:
            label = self._kind_label(kind, rate if kind == "data" else None)
            seq = self._sent.get((node_id, label), 0)
            self._sent[(node_id, label)] = seq + 1
            payload = ProbePayload(
                sender=node_id,
                seq=seq,
                kind=kind,
                rate_name=rate.name if kind == "data" else "",
            )
            node.broadcast(payload, size, rate)
        jitter = float(self._rng.uniform(-1.0, 1.0)) * self.jitter_fraction * self.period_s
        self.sim.schedule(max(1e-6, self.period_s + jitter), self._probe_callbacks[node_id])

    # ------------------------------------------------------------- reporting
    def _resolve_rate(self, sender: int, kind: str, rate: PhyRate | None) -> PhyRate | None:
        if kind != "data":
            return None
        if rate is not None:
            return rate
        return self.nodes[sender].data_rate if sender in self.nodes else None

    def probes_sent(self, sender: int, kind: str = "data", rate: PhyRate | None = None) -> int:
        """Number of probes of ``kind`` (at ``rate``, for DATA) sent so far."""
        label = self._kind_label(kind, self._resolve_rate(sender, kind, rate))
        return self._sent.get((sender, label), 0)

    def loss_series(
        self,
        sender: int,
        receiver: int,
        kind: str = "data",
        last_n: int | None = None,
        rate: PhyRate | None = None,
    ) -> np.ndarray:
        """Ordered 0/1 loss indicators (1 = lost) for probes of ``kind``.

        For DATA probes, ``rate`` selects which modulation's probe stream
        to read (defaulting to the sender's default data rate).  The
        series covers the ``last_n`` most recent probes sent by
        ``sender`` (all of them when ``last_n`` is None) — the "probing
        window" consumed by the channel-loss estimator.
        """
        resolved = self._resolve_rate(sender, kind, rate)
        label = self._kind_label(kind, resolved)
        sent = self._sent.get((sender, label), 0)
        if sent == 0:
            return np.zeros(0, dtype=int)
        start = 0 if last_n is None else max(0, sent - last_n)
        log = self._logs.get((sender, receiver, label), _ProbeLog())
        return np.array(
            [0 if seq in log.received else 1 for seq in range(start, sent)], dtype=int
        )

    def loss_rate(
        self,
        sender: int,
        receiver: int,
        kind: str = "data",
        last_n: int | None = None,
        rate: PhyRate | None = None,
    ) -> float:
        """Fraction of probes of ``kind`` from ``sender`` lost at ``receiver``."""
        series = self.loss_series(sender, receiver, kind, last_n, rate)
        if series.size == 0:
            return 1.0
        return float(series.mean())

    def link_loss_rate(
        self, tx: int, rx: int, last_n: int | None = None, rate: PhyRate | None = None
    ) -> float:
        """Combined DATA/ACK loss rate of the directed link ``tx -> rx``.

        DATA probes travel in the forward direction (tx to rx) at the
        link's modulation and ACK probes in the reverse direction (rx to
        tx), mirroring where real DATA and ACK frames would be lost.
        """
        p_data = self.loss_rate(tx, rx, "data", last_n, rate)
        p_ack = self.loss_rate(rx, tx, "ack", last_n)
        return 1.0 - (1.0 - p_data) * (1.0 - p_ack)

    def link_loss_series(
        self, tx: int, rx: int, last_n: int | None = None, rate: PhyRate | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """The (DATA, ACK) loss series of the directed link ``tx -> rx``."""
        return (
            self.loss_series(tx, rx, "data", last_n, rate),
            self.loss_series(rx, tx, "ack", last_n),
        )
