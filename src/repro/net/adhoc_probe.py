"""Ad Hoc Probe baseline (Chen et al., WICON 2005).

Ad Hoc Probe estimates path capacity by sending back-to-back packet
pairs and taking the *minimum* observed dispersion (inter-arrival gap)
between the two packets of a pair; capacity is the packet size divided by
that minimum dispersion.

The paper uses it as the baseline for Figure 11 and shows that it
consistently over-estimates the max UDP throughput of a link: the minimum
dispersion reflects the nominal per-packet service time of the MAC and
filters out both congestion *and* the link's inherent channel losses, so
lossy links look far better than they are.  We reproduce the tool so the
benchmark can regenerate that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.node import MeshNode
from repro.net.packet import Packet, PacketKind
from repro.engine import Simulator


@dataclass
class PacketPairSample:
    """Arrival record of one packet pair at the receiver."""

    pair_id: int
    first_arrival: float | None = None
    second_arrival: float | None = None

    @property
    def dispersion(self) -> float | None:
        if self.first_arrival is None or self.second_arrival is None:
            return None
        gap = self.second_arrival - self.first_arrival
        return gap if gap > 0 else None


class AdHocProbe:
    """Packet-pair capacity estimator between two mesh nodes.

    Args:
        sim: simulator.
        source: probing node.
        destination: measured node (must be reachable via routing).
        packet_bytes: UDP payload of each probe packet.
        pair_interval_s: spacing between successive packet pairs.
        flow_id: flow identifier used for the probe packets.
    """

    def __init__(
        self,
        sim: Simulator,
        source: MeshNode,
        destination: MeshNode,
        packet_bytes: int = 1472,
        pair_interval_s: float = 0.5,
        flow_id: int = -2,
    ) -> None:
        self.sim = sim
        self.source = source
        self.destination = destination
        self.packet_bytes = packet_bytes
        self.pair_interval_s = pair_interval_s
        self.flow_id = flow_id
        self.pairs_sent = 0
        self.samples: dict[int, PacketPairSample] = {}
        self._remaining = 0
        self._seq = 0
        destination.add_delivery_handler(self._on_delivery)

    # ----------------------------------------------------------------- probing
    def start(self, num_pairs: int) -> None:
        """Send ``num_pairs`` packet pairs, one every ``pair_interval_s``."""
        if num_pairs <= 0:
            raise ValueError("num_pairs must be positive")
        self._remaining = num_pairs
        self.sim.schedule(0.0, self._send_pair)

    def _send_pair(self) -> None:
        if self._remaining <= 0:
            return
        self._remaining -= 1
        pair_id = self.pairs_sent
        self.pairs_sent += 1
        for index in (0, 1):
            packet = Packet(
                kind=PacketKind.UDP,
                src=self.source.node_id,
                dst=self.destination.node_id,
                flow_id=self.flow_id,
                payload_bytes=self.packet_bytes,
                created_at=self.sim.now,
                seq=self._seq,
                meta={"adhoc_pair": pair_id, "adhoc_index": index},
            )
            self._seq += 1
            self.source.send_packet(packet)
        if self._remaining > 0:
            self.sim.schedule(self.pair_interval_s, self._send_pair)

    # ---------------------------------------------------------------- receiving
    def _on_delivery(self, packet: Packet, from_id: int) -> None:
        if packet.flow_id != self.flow_id or "adhoc_pair" not in packet.meta:
            return
        pair_id = packet.meta["adhoc_pair"]
        sample = self.samples.setdefault(pair_id, PacketPairSample(pair_id=pair_id))
        if packet.meta["adhoc_index"] == 0:
            sample.first_arrival = self.sim.now
        else:
            sample.second_arrival = self.sim.now

    # ----------------------------------------------------------------- results
    def dispersions(self) -> list[float]:
        """All valid pair dispersions observed so far."""
        return [s.dispersion for s in self.samples.values() if s.dispersion is not None]

    def capacity_estimate_bps(self) -> float | None:
        """Ad Hoc Probe's capacity estimate: packet size over min dispersion.

        Returns ``None`` when no complete pair has been received.
        """
        gaps = self.dispersions()
        if not gaps:
            return None
        return self.packet_bytes * 8 / min(gaps)
