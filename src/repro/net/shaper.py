"""Token-bucket rate shaping.

The paper programs per-flow rate limits (Click's ``BandwidthShaper``)
with the optimized input rates.  We provide the same functionality: a
token bucket that sources consult before injecting packets, plus a
convenience pacing helper returning when the next packet of a given size
may be sent.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TokenBucketShaper:
    """Classic token bucket.

    Attributes:
        rate_bps: sustained rate in bits per second.  ``float('inf')``
            disables shaping.
        bucket_bits: burst capacity.  Defaults to two maximum-size packets
            so a freshly (re)configured shaper does not dump a large burst
            into the MAC queue.
    """

    rate_bps: float
    bucket_bits: float = 2 * 1500 * 8
    _tokens: float = 0.0
    _last_update: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_bps < 0:
            raise ValueError("rate must be non-negative")
        self._tokens = self.bucket_bits

    def set_rate(self, rate_bps: float) -> None:
        """Reconfigure the sustained rate, keeping accumulated tokens."""
        if rate_bps < 0:
            raise ValueError("rate must be non-negative")
        self.rate_bps = rate_bps

    def _refill(self, now: float) -> None:
        if now < self._last_update:
            return
        elapsed = now - self._last_update
        self._last_update = now
        if self.rate_bps == float("inf"):
            self._tokens = self.bucket_bits
        else:
            self._tokens = min(self.bucket_bits, self._tokens + elapsed * self.rate_bps)

    #: Slack (in bits) below which the bucket is considered full enough;
    #: absorbs floating-point rounding so callers never see a vanishingly
    #: small waiting time that would stall a discrete-event loop.
    _EPSILON_BITS = 1e-6

    def try_consume(self, now: float, packet_bytes: int) -> bool:
        """Consume tokens for a packet if available; returns success."""
        self._refill(now)
        bits = packet_bytes * 8
        if self.rate_bps == float("inf"):
            return True
        if self._tokens >= bits - self._EPSILON_BITS:
            self._tokens = max(0.0, self._tokens - bits)
            return True
        return False

    def time_until_available(self, now: float, packet_bytes: int) -> float:
        """Seconds until ``packet_bytes`` worth of tokens will be available."""
        self._refill(now)
        if self.rate_bps == float("inf"):
            return 0.0
        bits = packet_bytes * 8
        if self._tokens >= bits - self._EPSILON_BITS:
            return 0.0
        if self.rate_bps == 0.0:
            return float("inf")
        return (bits - self._tokens) / self.rate_bps
