"""Network-layer substrate: packets, mesh nodes, ETT routing, broadcast
probing, token-bucket shaping and the Ad Hoc Probe baseline."""

from repro.net.packet import Packet, PacketKind
from repro.net.node import MeshNode, NodeStats, transport_header_bytes
from repro.net.routing import (
    FlowRoute,
    RouteResult,
    Router,
    RoutingMatrix,
    build_routing_matrix,
    dijkstra,
    etx,
    ett,
    path_loss_probability,
)
from repro.net.probing import (
    DEFAULT_DATA_PROBE_BYTES,
    DEFAULT_PROBE_PERIOD_S,
    ProbePayload,
    ProbingSystem,
)
from repro.net.shaper import TokenBucketShaper
from repro.net.adhoc_probe import AdHocProbe, PacketPairSample

__all__ = [
    "Packet",
    "PacketKind",
    "MeshNode",
    "NodeStats",
    "transport_header_bytes",
    "FlowRoute",
    "RouteResult",
    "Router",
    "RoutingMatrix",
    "build_routing_matrix",
    "dijkstra",
    "etx",
    "ett",
    "path_loss_probability",
    "DEFAULT_DATA_PROBE_BYTES",
    "DEFAULT_PROBE_PERIOD_S",
    "ProbePayload",
    "ProbingSystem",
    "TokenBucketShaper",
    "AdHocProbe",
    "PacketPairSample",
]
