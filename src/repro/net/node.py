"""Mesh node: queueing, forwarding and local delivery.

A :class:`MeshNode` owns one :class:`repro.mac.dcf.DcfMac` and implements
the network layer on top of it: it resolves the next hop for each packet
from its routing table, encapsulates packets into MAC frames (adding MAC
+ IP + transport header overhead), forwards transit packets, and hands
locally addressed packets to whichever transport/probing entities
registered themselves as handlers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.mac.constants import (
    DEFAULT_MAC_CONFIG,
    IP_HEADER_BYTES,
    MAC_OVERHEAD_BYTES,
    MacConfig,
    TCP_HEADER_BYTES,
    UDP_HEADER_BYTES,
)
from repro.mac.dcf import DcfMac
from repro.mac.frames import BROADCAST_ADDR, Frame, FrameKind
from repro.mac.medium import WirelessMedium
from repro.phy.radio import PhyRate, RATE_1MBPS
from repro.net.packet import Packet, PacketKind
from repro.engine import Simulator


def transport_header_bytes(kind: PacketKind) -> int:
    """IP + transport header bytes for a packet of the given kind."""
    if kind in (PacketKind.TCP_DATA, PacketKind.TCP_ACK):
        return IP_HEADER_BYTES + TCP_HEADER_BYTES
    if kind is PacketKind.PROBE:
        return IP_HEADER_BYTES + UDP_HEADER_BYTES
    return IP_HEADER_BYTES + UDP_HEADER_BYTES


@dataclass
class NodeStats:
    """Per-node network-layer counters."""

    originated: int = 0
    forwarded: int = 0
    delivered: int = 0
    no_route_drops: int = 0
    queue_drops: int = 0
    mac_drops: int = 0


class MeshNode:
    """One mesh router.

    Args:
        node_id: identifier, must match the node's entry in the medium.
        sim: discrete-event simulator.
        medium: the shared wireless medium.
        mac_config: DCF parameters.
        data_rate: modulation for unicast DATA frames originated or
            forwarded by this node (per-node, matching the testbed where
            each link runs at a fixed 1 or 11 Mb/s rate).
        ack_rate: modulation for 802.11 ACKs and broadcast control frames.
    """

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        medium: WirelessMedium,
        mac_config: MacConfig = DEFAULT_MAC_CONFIG,
        data_rate: PhyRate | None = None,
        ack_rate: PhyRate = RATE_1MBPS,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.medium = medium
        self.data_rate = data_rate or medium.radio.data_rate
        self.ack_rate = ack_rate
        self.mac = DcfMac(
            node_id,
            sim,
            medium,
            config=mac_config,
            ack_rate=ack_rate,
            rx_callback=self._on_mac_receive,
            tx_done_callback=self._on_mac_tx_done,
            dequeue_callback=self._on_mac_dequeue,
        )
        self.routing_table: dict[int, int] = {}
        #: optional per-neighbor data rate override (supports mixed
        #: 1 / 11 Mb/s links within one node, as in the paper's testbed).
        self.link_rates: dict[int, PhyRate] = {}
        self.stats = NodeStats()
        self._delivery_handlers: list[Callable[[Packet, int], None]] = []
        self._broadcast_handlers: list[Callable[[object, int], None]] = []
        self._dequeue_listeners: list[Callable[[], None]] = []
        self._tx_done_listeners: list[Callable[[Packet, bool], None]] = []

    # ------------------------------------------------------------- handlers
    def add_delivery_handler(self, handler: Callable[[Packet, int], None]) -> None:
        """Register ``handler(packet, previous_hop)`` for locally addressed packets."""
        self._delivery_handlers.append(handler)

    def add_broadcast_handler(self, handler: Callable[[object, int], None]) -> None:
        """Register ``handler(payload, sender)`` for received broadcast frames."""
        self._broadcast_handlers.append(handler)

    def add_dequeue_listener(self, listener: Callable[[], None]) -> None:
        """Register a callback fired whenever the MAC dequeues a frame.

        Backlogged sources use this to keep the interface queue topped up.
        """
        self._dequeue_listeners.append(listener)

    def add_tx_done_listener(self, listener: Callable[[Packet, bool], None]) -> None:
        """Register ``listener(packet, success)`` fired per MAC-level completion."""
        self._tx_done_listeners.append(listener)

    # -------------------------------------------------------------- routing
    def set_route(self, destination: int, next_hop: int) -> None:
        """Install or replace the next hop toward ``destination``."""
        self.routing_table[destination] = next_hop

    def set_link_rate(self, neighbor: int, rate: PhyRate) -> None:
        """Fix the modulation used on the link toward ``neighbor``."""
        self.link_rates[neighbor] = rate

    def next_hop(self, destination: int) -> Optional[int]:
        if destination == self.node_id:
            return self.node_id
        return self.routing_table.get(destination)

    # ------------------------------------------------------------ data path
    def frame_size_for(self, packet: Packet) -> int:
        """On-air MAC frame size for a network packet."""
        return MAC_OVERHEAD_BYTES + transport_header_bytes(packet.kind) + packet.payload_bytes

    def send_packet(self, packet: Packet) -> bool:
        """Originate or forward ``packet`` toward its destination.

        Returns ``True`` if the packet was accepted by the MAC queue.
        """
        if packet.dst == self.node_id:
            self._deliver_local(packet, self.node_id)
            return True
        nhop = self.next_hop(packet.dst)
        if nhop is None:
            self.stats.no_route_drops += 1
            return False
        rate = self.link_rates.get(nhop, self.data_rate)
        frame = Frame(
            kind=FrameKind.DATA,
            src=self.node_id,
            dst=nhop,
            size_bytes=self.frame_size_for(packet),
            rate=rate,
            payload=packet,
        )
        if packet.src == self.node_id and packet.hops == 0:
            self.stats.originated += 1
        accepted = self.mac.enqueue(frame)
        if not accepted:
            self.stats.queue_drops += 1
        return accepted

    def broadcast(self, payload: object, size_bytes: int, rate: PhyRate | None = None) -> bool:
        """Send a link-layer broadcast frame (used by probing and routing)."""
        frame = Frame(
            kind=FrameKind.BROADCAST,
            src=self.node_id,
            dst=BROADCAST_ADDR,
            size_bytes=size_bytes,
            rate=rate or self.ack_rate,
            payload=payload,
        )
        return self.mac.enqueue(frame)

    # ------------------------------------------------------------ callbacks
    def _on_mac_receive(self, payload: object, from_id: int, frame: Frame) -> None:
        if frame.kind is FrameKind.BROADCAST:
            for handler in self._broadcast_handlers:
                handler(payload, from_id)
            return
        packet = payload
        if not isinstance(packet, Packet):  # pragma: no cover - defensive
            return
        packet.hops += 1
        if packet.dst == self.node_id:
            self._deliver_local(packet, from_id)
        else:
            self.stats.forwarded += 1
            self.send_packet(packet)

    def _deliver_local(self, packet: Packet, from_id: int) -> None:
        self.stats.delivered += 1
        for handler in self._delivery_handlers:
            handler(packet, from_id)

    def _on_mac_tx_done(self, frame: Frame, success: bool) -> None:
        if not success:
            self.stats.mac_drops += 1
        packet = frame.payload
        if isinstance(packet, Packet):
            for listener in self._tx_done_listeners:
                listener(packet, success)

    def _on_mac_dequeue(self) -> None:
        for listener in self._dequeue_listeners:
            listener()
