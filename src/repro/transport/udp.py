"""UDP traffic sources and sinks (iperf-like).

Two source modes cover everything the paper's experiments need:

* *backlogged* — the source keeps the MAC interface queue topped up, so
  the link transmits at its maximum UDP throughput.  This is how the
  primary extreme points (max UDP throughput of an isolated link) and the
  LIR numerator/denominator are measured.
* *constant bit rate* — the source injects packets at a configured input
  rate, optionally shaped by a token bucket.  This is how input-rate
  vectors are applied when sampling the feasibility region and how the
  rate-control module enforces optimized rates.

The sink measures per-flow goodput over arbitrary time windows and
records per-packet delivery for loss accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.node import MeshNode
from repro.net.packet import Packet, PacketKind
from repro.net.shaper import TokenBucketShaper
from repro.engine import Event, Simulator


#: Default UDP payload used throughout the experiments (bytes).
DEFAULT_UDP_PAYLOAD_BYTES = 1470


class UdpSink:
    """Receives UDP packets of one flow at the destination node.

    Records per-packet arrival time and payload size so goodput can be
    measured over arbitrary time windows.
    """

    def __init__(self, node: MeshNode, flow_id: int) -> None:
        self.node = node
        self.flow_id = flow_id
        self.received_packets = 0
        self.received_bytes = 0
        self.arrivals: list[tuple[float, int]] = []
        node.add_delivery_handler(self._on_delivery)

    def _on_delivery(self, packet: Packet, from_id: int) -> None:
        if packet.kind is not PacketKind.UDP or packet.flow_id != self.flow_id:
            return
        self.received_packets += 1
        self.received_bytes += packet.payload_bytes
        self.arrivals.append((self.node.sim.now, packet.payload_bytes))

    def throughput_bps(self, start: float, end: float) -> float:
        """Goodput (payload bits/s) received in the window [start, end)."""
        if end <= start:
            raise ValueError("window end must exceed start")
        total_bytes = sum(b for t, b in self.arrivals if start <= t < end)
        return total_bytes * 8 / (end - start)


@dataclass
class UdpSourceStats:
    """Counters for a UDP source."""

    packets_sent: int = 0
    bytes_sent: int = 0
    send_failures: int = 0


class UdpSource:
    """UDP traffic generator attached to a source node.

    Args:
        sim: simulator.
        node: source node.
        destination: destination node id.
        flow_id: flow identifier (shared with the sink).
        payload_bytes: UDP payload per packet.
        rate_bps: input rate in payload bits per second; ``None`` selects
            backlogged mode.
        target_queue_depth: in backlogged mode, how many frames to keep in
            the MAC queue.
    """

    def __init__(
        self,
        sim: Simulator,
        node: MeshNode,
        destination: int,
        flow_id: int,
        payload_bytes: int = DEFAULT_UDP_PAYLOAD_BYTES,
        rate_bps: float | None = None,
        target_queue_depth: int = 5,
    ) -> None:
        self.sim = sim
        self.node = node
        self.destination = destination
        self.flow_id = flow_id
        self.payload_bytes = payload_bytes
        self.rate_bps = rate_bps
        self.target_queue_depth = target_queue_depth
        self.shaper: TokenBucketShaper | None = None
        self.stats = UdpSourceStats()
        self._active = False
        self._seq = 0
        self._next_send_event: Event | None = None
        node.add_dequeue_listener(self._on_dequeue)

    # ------------------------------------------------------------------ control
    @property
    def backlogged(self) -> bool:
        return self.rate_bps is None

    def set_rate(self, rate_bps: float | None) -> None:
        """Change the input rate; ``None`` switches to backlogged mode."""
        self.rate_bps = rate_bps
        if self._active and not self.backlogged:
            self._schedule_next_cbr(immediate=True)
        elif self._active and self.backlogged:
            self._fill_queue()

    def set_shaper(self, shaper: TokenBucketShaper | None) -> None:
        """Attach a token-bucket shaper applied on top of the CBR pacing."""
        self.shaper = shaper

    def start(self) -> None:
        """Begin generating traffic."""
        if self._active:
            return
        self._active = True
        if self.backlogged:
            self._fill_queue()
        else:
            self._schedule_next_cbr(immediate=True)

    def stop(self) -> None:
        """Stop generating traffic (queued packets still drain)."""
        self._active = False
        if self._next_send_event is not None:
            self._next_send_event.cancel()
            self._next_send_event = None

    # ---------------------------------------------------------------- sending
    def _make_packet(self) -> Packet:
        packet = Packet(
            kind=PacketKind.UDP,
            src=self.node.node_id,
            dst=self.destination,
            flow_id=self.flow_id,
            payload_bytes=self.payload_bytes,
            created_at=self.sim.now,
            seq=self._seq,
        )
        self._seq += 1
        return packet

    def _send_one(self) -> bool:
        packet = self._make_packet()
        accepted = self.node.send_packet(packet)
        if accepted:
            self.stats.packets_sent += 1
            self.stats.bytes_sent += self.payload_bytes
        else:
            self.stats.send_failures += 1
        return accepted

    def refresh(self) -> None:
        """Re-prime a stalled source after its node's MAC comes back up.

        A backlogged source stops offering frames the moment an enqueue
        is refused (there is no dequeue callback from a cleared queue to
        wake it), so a churn rejoin must kick it explicitly; CBR sources
        re-offer on their own self-rescheduling tick, where this is a
        harmless no-op.
        """
        if not self._active:
            return
        if self.backlogged:
            self._fill_queue()

    # --------------------------------------------------------------- backlogged
    def _fill_queue(self) -> None:
        if not self._active or not self.backlogged:
            return
        while self.node.mac.queue_length < self.target_queue_depth:
            if not self._send_one():
                break

    def _on_dequeue(self) -> None:
        if self._active and self.backlogged:
            self._fill_queue()

    # ---------------------------------------------------------------------- CBR
    def _packet_interval(self) -> float:
        assert self.rate_bps is not None
        if self.rate_bps <= 0:
            return float("inf")
        return self.payload_bytes * 8 / self.rate_bps

    def _schedule_next_cbr(self, immediate: bool = False) -> None:
        if self._next_send_event is not None:
            self._next_send_event.cancel()
            self._next_send_event = None
        if not self._active or self.backlogged:
            return
        interval = self._packet_interval()
        if interval == float("inf"):
            return
        delay = 0.0 if immediate else interval
        self._next_send_event = self.sim.schedule(delay, self._cbr_tick)

    def _cbr_tick(self) -> None:
        self._next_send_event = None
        if not self._active or self.backlogged:
            return
        if self.shaper is not None:
            wait = self.shaper.time_until_available(self.sim.now, self.payload_bytes)
            if wait > 0:
                # Minimum pacing quantum: keep virtual time advancing even
                # when the shaper is within rounding error of ready.
                self._next_send_event = self.sim.schedule(max(wait, 1e-4), self._cbr_tick)
                return
            self.shaper.try_consume(self.sim.now, self.payload_bytes)
        self._send_one()
        interval = self._packet_interval()
        if interval != float("inf"):
            self._next_send_event = self.sim.schedule(interval, self._cbr_tick)
