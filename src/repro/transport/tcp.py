"""Simplified TCP Reno over the mesh.

The TCP dynamics the paper relies on are reproduced faithfully enough to
exercise its rate-control framework:

* slow start and congestion avoidance (AIMD on a segment-based cwnd),
* fast retransmit on three duplicate ACKs,
* retransmission timeouts with exponential backoff,
* per-segment cumulative ACKs travelling the reverse path as real
  packets, so ACKs contend with DATA frames for the channel.

That last point is what produces the classic mesh starvation of Figure 13
(Shi et al.): the 2-hop flow's ACKs collide with the 1-hop flow's data at
the gateway, forcing the 2-hop sender into repeated timeouts.  The
rate-control module tames this by capping each flow's input rate and
leaving airtime for ACKs.

Sources may be rate-limited with a token-bucket shaper, which is how the
paper's Click implementation enforces the optimized rates on TCP traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.node import MeshNode
from repro.net.packet import Packet, PacketKind
from repro.net.shaper import TokenBucketShaper
from repro.engine import Event, Simulator


#: Default TCP maximum segment size (payload bytes).
DEFAULT_MSS_BYTES = 1460


@dataclass
class TcpStats:
    """Sender-side TCP counters."""

    segments_sent: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    fast_retransmits: int = 0
    acks_received: int = 0
    duplicate_acks: int = 0


class TcpSink:
    """TCP receiver: acknowledges every data segment cumulatively."""

    def __init__(self, sim: Simulator, node: MeshNode, flow_id: int, source: int) -> None:
        self.sim = sim
        self.node = node
        self.flow_id = flow_id
        self.source = source
        self.received_seqs: set[int] = set()
        self.cumulative_ack = 0
        self.arrivals: list[tuple[float, int]] = []
        self.acks_sent = 0
        node.add_delivery_handler(self._on_delivery)

    def _on_delivery(self, packet: Packet, from_id: int) -> None:
        if packet.kind is not PacketKind.TCP_DATA or packet.flow_id != self.flow_id:
            return
        seq = packet.meta["tcp_seq"]
        if seq not in self.received_seqs:
            self.received_seqs.add(seq)
            self.arrivals.append((self.sim.now, packet.payload_bytes))
            while self.cumulative_ack in self.received_seqs:
                self.cumulative_ack += 1
        self._send_ack()

    def _send_ack(self) -> None:
        ack = Packet(
            kind=PacketKind.TCP_ACK,
            src=self.node.node_id,
            dst=self.source,
            flow_id=self.flow_id,
            payload_bytes=0,
            created_at=self.sim.now,
            meta={"tcp_ack": self.cumulative_ack},
        )
        self.acks_sent += 1
        self.node.send_packet(ack)

    def goodput_bps(self, start: float, end: float) -> float:
        """Unique payload bits per second delivered in [start, end)."""
        if end <= start:
            raise ValueError("window end must exceed start")
        total = sum(b for t, b in self.arrivals if start <= t < end)
        return total * 8 / (end - start)


class TcpSource:
    """TCP Reno sender with an infinite backlog (FTP-like application).

    Args:
        sim: simulator.
        node: source node.
        destination: destination node id.
        flow_id: flow identifier shared with the sink.
        mss_bytes: segment payload size.
        initial_rto_s: initial retransmission timeout.
        min_rto_s: lower bound on the RTO.
        max_cwnd_segments: upper bound on the congestion window (receiver
            window surrogate).
    """

    def __init__(
        self,
        sim: Simulator,
        node: MeshNode,
        destination: int,
        flow_id: int,
        mss_bytes: int = DEFAULT_MSS_BYTES,
        initial_rto_s: float = 1.0,
        min_rto_s: float = 0.2,
        max_rto_s: float = 20.0,
        max_cwnd_segments: float = 64.0,
    ) -> None:
        self.sim = sim
        self.node = node
        self.destination = destination
        self.flow_id = flow_id
        self.mss_bytes = mss_bytes
        self.min_rto_s = min_rto_s
        self.max_rto_s = max_rto_s
        self.max_cwnd_segments = max_cwnd_segments
        self.stats = TcpStats()
        self.shaper: TokenBucketShaper | None = None

        self.cwnd = 1.0
        self.ssthresh = 32.0
        self.send_base = 0
        self.next_seq = 0
        self.dup_acks = 0
        self.rto_s = initial_rto_s
        self._srtt: float | None = None
        self._rttvar = 0.0
        self._timer: Event | None = None
        self._send_pending: Event | None = None
        self._send_times: dict[int, float] = {}
        self._retransmitted: set[int] = set()
        self._active = False
        # Hot-path constants and pre-bound timer callbacks: referencing
        # ``self._on_timeout`` builds a fresh bound-method object every
        # time, and the RTO timer re-arms on every cumulative ACK.
        self._wire_bytes = mss_bytes + 40
        self._on_send_retry_cb = self._on_send_retry
        self._on_timeout_cb = self._on_timeout
        node.add_delivery_handler(self._on_delivery)

    # ------------------------------------------------------------------ control
    def set_shaper(self, shaper: TokenBucketShaper | None) -> None:
        """Attach (or remove) a rate-limiting token bucket."""
        self.shaper = shaper

    def set_rate_limit(self, rate_bps: float | None) -> None:
        """Convenience: install a shaper at ``rate_bps`` (None removes it)."""
        if rate_bps is None:
            self.shaper = None
        elif self.shaper is None:
            self.shaper = TokenBucketShaper(rate_bps=rate_bps)
        else:
            self.shaper.set_rate(rate_bps)

    def start(self) -> None:
        """Open the connection and start pushing data."""
        if self._active:
            return
        self._active = True
        self._try_send()

    def stop(self) -> None:
        """Stop the sender (outstanding segments are abandoned)."""
        self._active = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._send_pending is not None:
            self._send_pending.cancel()
            self._send_pending = None

    # ----------------------------------------------------------------- sending
    @property
    def window_segments(self) -> int:
        return int(min(self.cwnd, self.max_cwnd_segments))

    def _segment_wire_bytes(self) -> int:
        # Approximate on-air size used for shaping decisions.
        return self._wire_bytes

    def _try_send(self) -> None:
        if not self._active:
            return
        while self.next_seq < self.send_base + self.window_segments:
            if self.shaper is not None:
                wait = self.shaper.time_until_available(self.sim.now, self._wire_bytes)
                if wait > 0:
                    # Clamp to a minimum pacing quantum so the event loop
                    # always advances virtual time between retries.
                    self._schedule_send_retry(max(wait, 1e-4))
                    return
                self.shaper.try_consume(self.sim.now, self._wire_bytes)
            self._transmit_segment(self.next_seq)
            self.next_seq += 1

    def _schedule_send_retry(self, delay: float) -> None:
        if self._send_pending is not None:
            self._send_pending.cancel()
        self._send_pending = self.sim.schedule(delay, self._on_send_retry_cb)

    def _on_send_retry(self) -> None:
        self._send_pending = None
        self._try_send()

    def _transmit_segment(self, seq: int, is_retransmission: bool = False) -> None:
        packet = Packet(
            kind=PacketKind.TCP_DATA,
            src=self.node.node_id,
            dst=self.destination,
            flow_id=self.flow_id,
            payload_bytes=self.mss_bytes,
            created_at=self.sim.now,
            seq=seq,
            meta={"tcp_seq": seq},
        )
        self.node.send_packet(packet)
        self.stats.segments_sent += 1
        if is_retransmission:
            self.stats.retransmissions += 1
            self._retransmitted.add(seq)
        else:
            self._send_times[seq] = self.sim.now
        if self._timer is None:
            self._arm_timer()

    # ------------------------------------------------------------------- timer
    def _arm_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.sim.schedule(self.rto_s, self._on_timeout_cb)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_timeout(self) -> None:
        self._timer = None
        if not self._active or self.send_base >= self.next_seq:
            return
        self.stats.timeouts += 1
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0
        self.dup_acks = 0
        self.rto_s = min(self.rto_s * 2.0, self.max_rto_s)
        self._transmit_segment(self.send_base, is_retransmission=True)
        self._arm_timer()

    # --------------------------------------------------------------------- ACKs
    def _update_rtt(self, seq: int) -> None:
        # Karn's algorithm: ignore RTT samples of retransmitted segments.
        sent_at = self._send_times.get(seq)
        if sent_at is None or seq in self._retransmitted:
            return
        sample = self.sim.now - sent_at
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - sample)
            self._srtt = 0.875 * self._srtt + 0.125 * sample
        self.rto_s = min(
            self.max_rto_s, max(self.min_rto_s, self._srtt + 4.0 * self._rttvar)
        )

    def _on_delivery(self, packet: Packet, from_id: int) -> None:
        if packet.kind is not PacketKind.TCP_ACK or packet.flow_id != self.flow_id:
            return
        if not self._active:
            return
        ackno = packet.meta["tcp_ack"]
        self.stats.acks_received += 1
        if ackno > self.send_base:
            self._update_rtt(ackno - 1)
            for seq in range(self.send_base, ackno):
                self._send_times.pop(seq, None)
                self._retransmitted.discard(seq)
            self.send_base = ackno
            self.dup_acks = 0
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0
            else:
                self.cwnd += 1.0 / max(self.cwnd, 1.0)
            self.cwnd = min(self.cwnd, self.max_cwnd_segments)
            if self.send_base < self.next_seq:
                self._arm_timer()
            else:
                self._cancel_timer()
            self._try_send()
        else:
            self.stats.duplicate_acks += 1
            self.dup_acks += 1
            if self.dup_acks == 3:
                self.stats.fast_retransmits += 1
                self.ssthresh = max(self.cwnd / 2.0, 2.0)
                self.cwnd = self.ssthresh
                self._transmit_segment(self.send_base, is_retransmission=True)
                self._arm_timer()


@dataclass
class TcpFlow:
    """A routed TCP connection: source, sink and bookkeeping."""

    flow_id: int
    source: TcpSource
    sink: TcpSink

    def start(self) -> None:
        self.source.start()

    def stop(self) -> None:
        self.source.stop()

    def goodput_bps(self, start: float, end: float) -> float:
        return self.sink.goodput_bps(start, end)


def make_tcp_flow(
    sim: Simulator,
    source_node: MeshNode,
    destination_node: MeshNode,
    flow_id: int,
    mss_bytes: int = DEFAULT_MSS_BYTES,
) -> TcpFlow:
    """Wire up a :class:`TcpSource`/:class:`TcpSink` pair."""
    source = TcpSource(sim, source_node, destination_node.node_id, flow_id, mss_bytes=mss_bytes)
    sink = TcpSink(sim, destination_node, flow_id, source_node.node_id)
    return TcpFlow(flow_id=flow_id, source=source, sink=sink)
