"""Transport substrate: backlogged/CBR UDP sources and sinks plus a
simplified TCP Reno implementation whose ACKs travel the reverse path as
real packets (required to reproduce the mesh starvation scenarios)."""

from repro.transport.udp import (
    DEFAULT_UDP_PAYLOAD_BYTES,
    UdpSink,
    UdpSource,
    UdpSourceStats,
)
from repro.transport.tcp import (
    DEFAULT_MSS_BYTES,
    TcpFlow,
    TcpSink,
    TcpSource,
    TcpStats,
    make_tcp_flow,
)

__all__ = [
    "DEFAULT_UDP_PAYLOAD_BYTES",
    "UdpSink",
    "UdpSource",
    "UdpSourceStats",
    "DEFAULT_MSS_BYTES",
    "TcpFlow",
    "TcpSink",
    "TcpSource",
    "TcpStats",
    "make_tcp_flow",
]
