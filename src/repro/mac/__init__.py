"""802.11 DCF MAC substrate: frames, timing, the shared medium and the
per-station CSMA/CA state machine, plus the nominal-throughput calculator
used by the paper's capacity representation (Eq. 6)."""

from repro.mac.constants import (
    ACK_FRAME_BYTES,
    DEFAULT_MAC_CONFIG,
    IP_HEADER_BYTES,
    MAC_OVERHEAD_BYTES,
    MacConfig,
    TCP_ACK_BYTES,
    TCP_HEADER_BYTES,
    UDP_HEADER_BYTES,
    UDP_TOTAL_HEADER_BYTES,
)
from repro.mac.frames import BROADCAST_ADDR, Frame, FrameKind, make_ack
from repro.mac.medium import WirelessMedium
from repro.mac.dcf import DcfMac, MacStats
from repro.mac.nominal import (
    NominalThroughputBreakdown,
    nominal_cycle_breakdown,
    nominal_throughput_bps,
)

__all__ = [
    "ACK_FRAME_BYTES",
    "DEFAULT_MAC_CONFIG",
    "IP_HEADER_BYTES",
    "MAC_OVERHEAD_BYTES",
    "MacConfig",
    "TCP_ACK_BYTES",
    "TCP_HEADER_BYTES",
    "UDP_HEADER_BYTES",
    "UDP_TOTAL_HEADER_BYTES",
    "BROADCAST_ADDR",
    "Frame",
    "FrameKind",
    "make_ack",
    "WirelessMedium",
    "DcfMac",
    "MacStats",
    "NominalThroughputBreakdown",
    "nominal_cycle_breakdown",
    "nominal_throughput_bps",
]
