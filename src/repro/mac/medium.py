"""The shared wireless medium.

The medium glues the PHY to the per-node MACs: it tracks every ongoing
transmission, computes the power each node receives from each
transmitter, notifies MACs of local carrier-sense busy/idle transitions,
and decides whether each frame is successfully decoded at its intended
receiver(s) when the transmission ends.

Loss causes are recorded per frame and aggregated, because the paper's
online estimator hinges on separating *collision* losses from *channel*
losses:

``half_duplex``  the receiver was transmitting during the frame,
``rx_locked``    the receiver was already locked onto another frame,
``weak``         received power below the modulation's sensitivity,
``collision``    SINR below the capture threshold (overlap loss),
``channel``      independent channel error (the residual loss process).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.phy.error_models import BerPacketErrorModel, ErrorModel
from repro.phy.propagation import LogDistancePathLoss, PropagationModel, dbm_to_mw
from repro.phy.radio import RadioConfig, frame_airtime
from repro.phy.sinr import CaptureModel
from repro.mac.frames import Frame
from repro.engine import Simulator


class MacListener(Protocol):
    """What the medium expects from a registered MAC entity."""

    def on_medium_busy(self) -> None: ...

    def on_medium_idle(self) -> None: ...

    def on_frame_received(self, frame: Frame, from_id: int) -> None: ...

    def on_transmission_end(self, frame: Frame) -> None: ...


@dataclass
class _Reception:
    """Tracks one intended receiver of an ongoing transmission."""

    signal_dbm: float
    cur_interference_mw: float = 0.0
    peak_interference_mw: float = 0.0
    failure: str | None = None

    def add_interference(self, power_mw: float) -> None:
        self.cur_interference_mw += power_mw
        self.peak_interference_mw = max(self.peak_interference_mw, self.cur_interference_mw)

    def remove_interference(self, power_mw: float) -> None:
        self.cur_interference_mw = max(0.0, self.cur_interference_mw - power_mw)


@dataclass
class _Transmission:
    """An ongoing transmission and the state of its intended receivers."""

    tx_id: int
    frame: Frame
    start: float
    end: float
    receptions: dict[int, _Reception] = field(default_factory=dict)


class WirelessMedium:
    """Shared-channel model with carrier sensing, capture and channel errors.

    Args:
        sim: the discrete-event simulator driving virtual time.
        positions: node id -> (x, y) coordinates in metres.
        radio: common radio configuration (tx power, CS threshold, gains).
        propagation: path-loss model.
        error_model: residual channel error model applied to frames that
            survive interference.
        capture: SINR capture model.
        link_error_override: optional map ``(tx, rx) -> packet error
            probability for a 1500-byte frame``; when present it replaces
            the SNR-derived error probability on that link, which lets
            experiments prescribe exact channel loss rates.
    """

    def __init__(
        self,
        sim: Simulator,
        positions: dict[int, tuple[float, float]],
        radio: RadioConfig | None = None,
        propagation: PropagationModel | None = None,
        error_model: ErrorModel | None = None,
        capture: CaptureModel | None = None,
        link_error_override: dict[tuple[int, int], float] | None = None,
    ) -> None:
        self.sim = sim
        self.positions = dict(positions)
        self.radio = radio or RadioConfig()
        self.propagation = propagation or LogDistancePathLoss()
        self.error_model = error_model or BerPacketErrorModel()
        self.capture = capture or CaptureModel()
        self.link_error_override = dict(link_error_override or {})
        self._macs: dict[int, MacListener] = {}
        self._ongoing: dict[int, _Transmission] = {}
        self._transmitting: set[int] = set()
        self._sensed_mw: dict[int, float] = {node: 0.0 for node in positions}
        self._busy_state: dict[int, bool] = {node: False for node in positions}
        self._rx_power_cache: dict[tuple[int, int], float] = {}
        self._rng = sim.rng_stream("medium")
        self.loss_counts: Counter[str] = Counter()
        self.delivered_frames = 0
        self.frame_observers: list[Callable[[Frame, int, bool, str | None], None]] = []

    # ------------------------------------------------------------ registration
    def register_mac(self, node_id: int, mac: MacListener) -> None:
        """Attach the MAC entity of ``node_id`` so it receives callbacks."""
        if node_id not in self.positions:
            raise KeyError(f"node {node_id} has no position in the medium")
        self._macs[node_id] = mac

    def add_frame_observer(
        self, observer: Callable[[Frame, int, bool, str | None], None]
    ) -> None:
        """Register ``observer(frame, rx_id, success, failure_reason)``.

        Observers see every delivery attempt at every intended receiver;
        the measurement/trace layer uses this to count losses per link.
        """
        self.frame_observers.append(observer)

    # ------------------------------------------------------------------ power
    def distance(self, a: int, b: int) -> float:
        xa, ya = self.positions[a]
        xb, yb = self.positions[b]
        return ((xa - xb) ** 2 + (ya - yb) ** 2) ** 0.5

    def rx_power_dbm(self, tx: int, rx: int) -> float:
        """Received power at ``rx`` of a transmission from ``tx``."""
        key = (tx, rx)
        if key not in self._rx_power_cache:
            loss = self.propagation.path_loss_db(self.distance(tx, rx), key)
            power = (
                self.radio.tx_power_dbm
                + 2.0 * self.radio.antenna_gain_dbi
                - loss
            )
            self._rx_power_cache[key] = power
        return self._rx_power_cache[key]

    def rx_power_mw(self, tx: int, rx: int) -> float:
        return dbm_to_mw(self.rx_power_dbm(tx, rx))

    def in_range(self, tx: int, rx: int, sensitivity_dbm: float) -> bool:
        """Whether ``rx`` can decode frames from ``tx`` absent interference."""
        return self.rx_power_dbm(tx, rx) >= sensitivity_dbm

    def can_sense(self, a: int, b: int) -> bool:
        """Whether node ``a`` senses the channel busy while ``b`` transmits."""
        return self.rx_power_dbm(b, a) >= self.radio.cs_threshold_dbm

    # ----------------------------------------------------------- carrier sense
    def is_busy(self, node_id: int) -> bool:
        """Local carrier-sense state of ``node_id``."""
        if node_id in self._transmitting:
            return True
        return self._sensed_mw[node_id] >= dbm_to_mw(self.radio.cs_threshold_dbm)

    def _refresh_busy_states(self) -> None:
        """Recompute busy flags and notify MACs whose state flipped."""
        for node_id, mac in self._macs.items():
            busy = self.is_busy(node_id)
            if busy != self._busy_state[node_id]:
                self._busy_state[node_id] = busy
                if busy:
                    mac.on_medium_busy()
                else:
                    mac.on_medium_idle()

    # ------------------------------------------------------------ transmission
    def _intended_receivers(self, tx_id: int, frame: Frame) -> list[int]:
        if not frame.is_broadcast:
            return [frame.dst] if frame.dst in self.positions else []
        receivers = []
        for node in self.positions:
            if node == tx_id:
                continue
            if self.in_range(tx_id, node, frame.rate.rx_sensitivity_dbm):
                receivers.append(node)
        return receivers

    def _receiver_is_locked(self, rx_id: int) -> bool:
        """Whether ``rx_id`` is currently locked onto an ongoing frame."""
        for tx in self._ongoing.values():
            reception = tx.receptions.get(rx_id)
            if reception is not None and reception.failure is None:
                return True
        return False

    def begin_transmission(self, tx_id: int, frame: Frame) -> float:
        """Start putting ``frame`` on the air from ``tx_id``.

        Returns the frame airtime; the medium schedules its own end-of-
        transmission processing and will call ``on_transmission_end`` on
        the transmitter's MAC when the frame leaves the air.
        """
        if tx_id in self._transmitting:
            raise RuntimeError(f"node {tx_id} is already transmitting")
        duration = frame_airtime(frame.size_bytes, frame.rate)
        now = self.sim.now
        transmission = _Transmission(tx_id=tx_id, frame=frame, start=now, end=now + duration)

        # The new transmission interferes with, and may destroy, receptions
        # already in progress.
        tx_power_cache: dict[int, float] = {}
        for other in self._ongoing.values():
            for rx_id, reception in other.receptions.items():
                if rx_id == tx_id:
                    # Half duplex: a node cannot keep receiving once it starts
                    # transmitting.
                    if reception.failure is None:
                        reception.failure = "half_duplex"
                    continue
                power = tx_power_cache.get(rx_id)
                if power is None:
                    power = self.rx_power_mw(tx_id, rx_id)
                    tx_power_cache[rx_id] = power
                reception.add_interference(power)

        # Build reception state for the new frame's intended receivers.
        for rx_id in self._intended_receivers(tx_id, frame):
            reception = _Reception(signal_dbm=self.rx_power_dbm(tx_id, rx_id))
            if rx_id in self._transmitting:
                reception.failure = "half_duplex"
            elif self._receiver_is_locked(rx_id):
                reception.failure = "rx_locked"
            interference = 0.0
            for other in self._ongoing.values():
                interference += self.rx_power_mw(other.tx_id, rx_id)
            reception.cur_interference_mw = interference
            reception.peak_interference_mw = interference
            transmission.receptions[rx_id] = reception

        self._ongoing[tx_id] = transmission
        self._transmitting.add(tx_id)
        for node in self.positions:
            if node != tx_id:
                self._sensed_mw[node] += self.rx_power_mw(tx_id, node)
        self._refresh_busy_states()
        self.sim.schedule(duration, lambda: self._finish_transmission(tx_id))
        return duration

    def _finish_transmission(self, tx_id: int) -> None:
        transmission = self._ongoing.pop(tx_id)
        self._transmitting.discard(tx_id)
        for node in self.positions:
            if node != tx_id:
                self._sensed_mw[node] = max(
                    0.0, self._sensed_mw[node] - self.rx_power_mw(tx_id, node)
                )
        # Ongoing receptions no longer suffer this transmitter's interference.
        for other in self._ongoing.values():
            for rx_id, reception in other.receptions.items():
                if rx_id != tx_id:
                    reception.remove_interference(self.rx_power_mw(tx_id, rx_id))

        self._refresh_busy_states()
        self._deliver(transmission)
        mac = self._macs.get(tx_id)
        if mac is not None:
            mac.on_transmission_end(transmission.frame)

    # -------------------------------------------------------------- reception
    def _channel_error_probability(self, tx_id: int, rx_id: int, frame: Frame) -> float:
        override = self.link_error_override.get((tx_id, rx_id))
        if override is not None:
            # The override is specified for a nominal 1500-byte frame;
            # rescale to the actual frame length assuming independent
            # bit errors so short probes lose less often than long DATA.
            reference_bits = 1500 * 8
            if override >= 1.0:
                return 1.0
            ber = 1.0 - (1.0 - override) ** (1.0 / reference_bits)
            return 1.0 - (1.0 - ber) ** (frame.size_bytes * 8)
        snr = self.rx_power_dbm(tx_id, rx_id) - self.capture.noise_floor_dbm
        return self.error_model.packet_error_probability(snr, frame.rate, frame.size_bytes)

    def _deliver(self, transmission: _Transmission) -> None:
        frame = transmission.frame
        for rx_id, reception in transmission.receptions.items():
            failure = reception.failure
            if failure is None:
                if reception.signal_dbm < frame.rate.rx_sensitivity_dbm:
                    failure = "weak"
                elif not self.capture.decodable(
                    reception.signal_dbm, reception.peak_interference_mw, frame.rate
                ):
                    failure = "collision"
                else:
                    # Residual channel errors (independent of interference).
                    per = self._channel_error_probability(transmission.tx_id, rx_id, frame)
                    if per > 0.0 and self._rng.random() < per:
                        failure = "channel"
                    elif reception.peak_interference_mw > 0.0:
                        # Partial capture: the frame clears the SINR
                        # threshold but overlapping interference still
                        # degrades the effective SINR, producing extra
                        # bit errors.  This is what makes real-world LIR
                        # values non-binary (Section 4.2 of the paper).
                        effective_sinr = self.capture.sinr(
                            reception.signal_dbm, reception.peak_interference_mw
                        )
                        p_int = self.error_model.packet_error_probability(
                            effective_sinr, frame.rate, frame.size_bytes
                        )
                        if p_int > 0.0 and self._rng.random() < p_int:
                            failure = "collision"
            success = failure is None
            for observer in self.frame_observers:
                observer(frame, rx_id, success, failure)
            if success:
                self.delivered_frames += 1
                mac = self._macs.get(rx_id)
                if mac is not None:
                    mac.on_frame_received(frame, transmission.tx_id)
            else:
                self.loss_counts[failure] += 1
