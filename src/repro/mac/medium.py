"""The shared wireless medium.

The medium glues the PHY to the per-node MACs: it tracks every ongoing
transmission, computes the power each node receives from each
transmitter, notifies MACs of local carrier-sense busy/idle transitions,
and decides whether each frame is successfully decoded at its intended
receiver(s) when the transmission ends.

Loss causes are recorded per frame and aggregated, because the paper's
online estimator hinges on separating *collision* losses from *channel*
losses:

``half_duplex``  the receiver was transmitting during the frame,
``rx_locked``    the receiver was already locked onto another frame,
``rx_off``       the receiver's radio was down (churn failure),
``weak``         received power below the modulation's sensitivity,
``collision``    SINR below the capture threshold (overlap loss),
``channel``      independent channel error (the residual loss process).

Performance note: node positions only change at explicit position
epochs (:meth:`WirelessMedium.update_positions`), so every pairwise
received power (dBm and mW) is precomputed into symmetric numpy
matrices up front and epochs rebuild only the rows/columns of the
nodes that moved.  Each value is produced by the *same scalar
formula* the lazy per-call path used, so the fast path is bit-identical
to the original — the experiment goldens and the sim-level trace goldens
under ``tests/sim/golden`` are the proof.  The per-event bookkeeping
(carrier-sense energy in ``_sensed_mw``, interference add/remove)
deliberately runs on plain-float mirrors of those matrices (nested
dicts and row lists): at mesh sizes (tens of nodes) numpy element reads
box a ``np.float64`` per access and ufunc dispatch dominates 18-element
vector ops, which sampling profiles showed to be *slower* than scalar
loops over precomputed Python floats.  The matrices stay the canonical
tables — the mirrors are derived from them via ``tolist()`` (exact) and
the property suite asserts both agree to the bit.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Protocol

import numpy as np

from repro.phy.error_models import BerPacketErrorModel, ErrorModel
from repro.phy.propagation import LogDistancePathLoss, PropagationModel, dbm_to_mw
from repro.phy.radio import RadioConfig, frame_airtime
from repro.phy.sinr import CaptureModel
from repro.mac.frames import BROADCAST_ADDR, Frame, FrameKind
from repro.engine import Simulator


class MacListener(Protocol):
    """What the medium expects from a registered MAC entity.

    Implementations may additionally expose the DCF guard attributes
    ``_access_event`` and ``current``.  When both exist, the medium's
    fused notification loops elide ``on_medium_busy`` calls while
    ``_access_event is None`` and ``on_medium_idle`` calls while
    ``current is None`` — exactly the conditions under which
    :class:`repro.mac.dcf.DcfMac` makes those handlers no-ops.
    """

    def on_medium_busy(self) -> None: ...

    def on_medium_idle(self) -> None: ...

    def on_frame_received(self, frame: Frame, from_id: int) -> None: ...

    def on_transmission_end(self, frame: Frame) -> None: ...


@dataclass(slots=True)
class _Reception:
    """Tracks one intended receiver of an ongoing transmission."""

    signal_dbm: float
    cur_interference_mw: float = 0.0
    peak_interference_mw: float = 0.0
    failure: str | None = None

    def add_interference(self, power_mw: float) -> None:
        self.cur_interference_mw += power_mw
        self.peak_interference_mw = max(self.peak_interference_mw, self.cur_interference_mw)

    def remove_interference(self, power_mw: float) -> None:
        self.cur_interference_mw = max(0.0, self.cur_interference_mw - power_mw)


@dataclass(slots=True)
class _Transmission:
    """An ongoing transmission and the state of its intended receivers.

    ``sensed_row`` and ``mw_row`` are the power-table row objects this
    transmission's energy was *added* with at begin time.  Finish
    subtracts through these snapshots rather than re-fetching the live
    tables, so when a position epoch rebuilds the tables mid-flight
    (:meth:`WirelessMedium.update_positions` replaces row objects, never
    mutates them) every in-flight add/remove pair stays exactly
    balanced: sensed energy returns to precisely what the epoch left,
    with no spurious busy/idle flips.  In a static run the snapshots are
    the same objects a fresh fetch would return, so behaviour is
    bit-identical.
    """

    tx_id: int
    frame: Frame
    start: float
    end: float
    receptions: dict[int, _Reception] = field(default_factory=dict)
    sensed_row: list[float] | None = None
    mw_row: dict[int, float] | None = None


class WirelessMedium:
    """Shared-channel model with carrier sensing, capture and channel errors.

    Args:
        sim: the discrete-event simulator driving virtual time.
        positions: node id -> (x, y) coordinates in metres.  The
            pairwise power tables are built once from them; mobility
            moves nodes through :meth:`update_positions`, which rebuilds
            only the affected rows/columns.
        radio: common radio configuration (tx power, CS threshold, gains).
        propagation: path-loss model.
        error_model: residual channel error model applied to frames that
            survive interference.
        capture: SINR capture model.
        link_error_override: optional map ``(tx, rx) -> packet error
            probability for a 1500-byte frame``; when present it replaces
            the SNR-derived error probability on that link, which lets
            experiments prescribe exact channel loss rates.
    """

    def __init__(
        self,
        sim: Simulator,
        positions: dict[int, tuple[float, float]],
        radio: RadioConfig | None = None,
        propagation: PropagationModel | None = None,
        error_model: ErrorModel | None = None,
        capture: CaptureModel | None = None,
        link_error_override: dict[tuple[int, int], float] | None = None,
    ) -> None:
        self.sim = sim
        self.positions = dict(positions)
        self.radio = radio or RadioConfig()
        self.propagation = propagation or LogDistancePathLoss()
        self.error_model = error_model or BerPacketErrorModel()
        self.capture = capture or CaptureModel()
        self.link_error_override = dict(link_error_override or {})
        self._macs: dict[int, MacListener] = {}
        #: MAC notification order: (node_id, mac, index, hinted) in
        #: registration order, mirroring the dict iteration the scalar
        #: path used.  ``hinted`` records that the listener exposes the
        #: DCF guard attributes (``_access_event``, ``current``) whose
        #: None-ness makes ``on_medium_busy`` / ``on_medium_idle``
        #: no-ops, letting the notification loops skip those calls.
        self._mac_entries: list[tuple[int, MacListener, int, bool]] = []
        self._ongoing: dict[int, _Transmission] = {}
        self._transmitting: set[int] = set()
        self.loss_counts: Counter[str] = Counter()
        self.delivered_frames = 0
        self.frame_observers: list[Callable[[Frame, int, bool, str | None], None]] = []
        self._rng = sim.rng_stream("medium")
        # Buffered uniform draws: ``Generator.random(n)`` produces the
        # exact same stream as n scalar ``random()`` calls, so refilling
        # in blocks keeps the draw sequence bit-identical while paying
        # the numpy call overhead once per block.
        self._rand_buf: list[float] = []
        self._rand_pos = 0
        self._per_cache: dict[tuple[int, int, float, int], float] = {}
        self._airtime_cache: dict[tuple[int, float], float] = {}
        # Interference-signature memo: link powers are frozen, so the
        # whole deterministic part of reception resolution (weak /
        # capture verdict, residual PER, partial-capture PER) is a pure
        # function of ``(tx, rx, rate, length, peak interference)``.
        # Saturated cells repeat the same few overlap patterns for the
        # whole run, so after warm-up nearly every delivery is a single
        # dict hit that skips the SINR/error-model math entirely.  The
        # random draws stay *outside* the memo — the draw sequence is
        # identical to the uncached path.
        self._resolve_cache: dict[
            tuple[int, int, float, int, float], tuple[str | None, float, float]
        ] = {}
        self._bcast_receivers: dict[tuple[int, float], list[int]] = {}
        # Nodes whose radio is off (churn failures).  Receptions at an
        # inactive node fail with "rx_off"; the empty-set falsy check
        # keeps the static hot path to one local load and a bool test.
        self._inactive: set[int] = set()
        self._build_power_tables()

    def _build_power_tables(self) -> None:
        """Precompute every pairwise received power once.

        Each entry is computed by the exact scalar expression the lazy
        path used (``tx_power + 2*gain - path_loss`` then ``dbm_to_mw``),
        so matrix reads are bit-identical to on-demand recomputation.
        Shadowing draws are keyed per pair (not by draw order), so eager
        evaluation yields the same values lazy evaluation did.
        """
        ids = list(self.positions)
        self._node_ids = ids
        index = {node: i for i, node in enumerate(ids)}
        self._node_index = index
        n = len(ids)
        eirp = self.radio.tx_power_dbm + 2.0 * self.radio.antenna_gain_dbi
        power_dbm = np.empty((n, n), dtype=np.float64)
        power_mw = np.empty((n, n), dtype=np.float64)
        pow_dbm_map: dict[tuple[int, int], float] = {}
        pow_mw_map: dict[tuple[int, int], float] = {}
        pow_dbm_from: dict[int, dict[int, float]] = {}
        pow_mw_from: dict[int, dict[int, float]] = {}
        snr_from: dict[int, dict[int, float]] = {}
        noise_dbm = self.capture.noise_floor_dbm
        for i, a in enumerate(ids):
            row_dbm = pow_dbm_from[a] = {}
            row_mw = pow_mw_from[a] = {}
            row_snr = snr_from[a] = {}
            for j, b in enumerate(ids):
                dbm = eirp - self.propagation.path_loss_db(self.distance(a, b), (a, b))
                mw = dbm_to_mw(dbm)
                power_dbm[i, j] = dbm
                power_mw[i, j] = mw
                pow_dbm_map[(a, b)] = dbm
                pow_mw_map[(a, b)] = mw
                row_dbm[b] = dbm
                row_mw[b] = mw
                row_snr[b] = dbm - noise_dbm
        self._power_dbm = power_dbm
        self._power_mw = power_mw
        self._pow_dbm = pow_dbm_map
        self._pow_mw = pow_mw_map
        self._pow_dbm_from = pow_dbm_from
        self._pow_mw_from = pow_mw_from
        self._snr_from = snr_from
        # Row i with the diagonal zeroed: what node i's transmission adds
        # to every *other* node's sensed energy (a node never senses its
        # own signal as foreign energy).  ``tolist()`` round-trips float64
        # to Python floats exactly, so the scalar mirror carries the same
        # bits as the matrix.
        sensed_rows = power_mw.copy()
        np.fill_diagonal(sensed_rows, 0.0)
        self._sensed_rows = sensed_rows.tolist()
        self._sensed_mw = [0.0] * n
        self._busy_state = [False] * n
        # Live (failure-free) reception count per node index, maintained
        # incrementally so the rx-locked check is O(1) instead of a scan
        # over every ongoing transmission.
        self._rx_live = [0] * n
        self._cs_threshold_mw = dbm_to_mw(self.radio.cs_threshold_dbm)
        # One end-of-transmission callback per node, built once instead
        # of a fresh closure per frame.
        self._finish_callbacks = {
            node: partial(self._finish_transmission, node) for node in ids
        }

    # --------------------------------------------------------------- dynamics
    def update_positions(self, moved: dict[int, tuple[float, float]]) -> None:
        """Move nodes and rebuild only the affected power-table state.

        For each moved node the full row *and* column of the power
        matrices (and their scalar mirrors) are recomputed with the same
        per-direction scalar formula :meth:`_build_power_tables` uses —
        shadowing offsets are keyed per pair, so a rebuilt entry equals
        what a fresh medium at the new positions would compute, bit for
        bit.  Unmoved-pair entries are untouched.

        Invariants this method maintains for in-flight transmissions:

        * ``_sensed_rows`` and ``_pow_mw_from`` rows are *replaced* with
          fresh objects, never mutated — finish subtracts through the
          begin-time snapshots on :class:`_Transmission`, so every
          add/remove pair stays exactly balanced across the epoch and no
          busy/idle notification fires at the epoch instant.
        * memo invalidation is exact: ``_per_cache`` and
          ``_resolve_cache`` drop only keys whose tx or rx moved;
          ``_bcast_receivers`` (a function of every pairwise power) is
          cleared wholesale; ``_airtime_cache`` is keyed ``(size,
          rate)`` — position-independent — and survives.
        * no RNG stream is touched and no event is scheduled, so a run
          with zero moves is event- and draw-identical to a static run.

        A reception that *begins* after the epoch while an old
        transmission still interferes sees the new tables for the add
        and the old snapshot for the remove; the residual is clamped at
        zero and bounded by one frame airtime — deterministic, and far
        below the position-epoch timescale.
        """
        if not moved:
            return
        index = self._node_index
        for node_id in moved:
            if node_id not in index:
                raise KeyError(f"node {node_id} has no position in the medium")
        for node_id, (x, y) in moved.items():
            self.positions[node_id] = (float(x), float(y))
        ids = self._node_ids
        moved_set = set(moved)
        eirp = self.radio.tx_power_dbm + 2.0 * self.radio.antenna_gain_dbi
        noise_dbm = self.capture.noise_floor_dbm
        power_dbm = self._power_dbm
        power_mw = self._power_mw
        pow_dbm_map = self._pow_dbm
        pow_mw_map = self._pow_mw
        pow_dbm_from = self._pow_dbm_from
        snr_from = self._snr_from
        pow_mw_from = self._pow_mw_from = {
            node: dict(row) for node, row in self._pow_mw_from.items()
        }
        sensed_rows = self._sensed_rows = [list(row) for row in self._sensed_rows]
        for a in sorted(moved_set):
            i = index[a]
            row_dbm = pow_dbm_from[a]
            row_mw = pow_mw_from[a]
            row_snr = snr_from[a]
            sensed_row = sensed_rows[i]
            for b in ids:
                j = index[b]
                dbm = eirp - self.propagation.path_loss_db(self.distance(a, b), (a, b))
                mw = dbm_to_mw(dbm)
                power_dbm[i, j] = dbm
                power_mw[i, j] = mw
                pow_dbm_map[(a, b)] = dbm
                pow_mw_map[(a, b)] = mw
                row_dbm[b] = dbm
                row_mw[b] = mw
                row_snr[b] = dbm - noise_dbm
                sensed_row[j] = 0.0 if j == i else mw
                if b in moved_set:
                    continue  # (b, a) is covered when b's own row rebuilds
                dbm_r = eirp - self.propagation.path_loss_db(self.distance(b, a), (b, a))
                mw_r = dbm_to_mw(dbm_r)
                power_dbm[j, i] = dbm_r
                power_mw[j, i] = mw_r
                pow_dbm_map[(b, a)] = dbm_r
                pow_mw_map[(b, a)] = mw_r
                pow_dbm_from[b][a] = dbm_r
                pow_mw_from[b][a] = mw_r
                snr_from[b][a] = dbm_r - noise_dbm
                sensed_rows[j][i] = mw_r
        for cache in (self._per_cache, self._resolve_cache):
            stale = [key for key in cache if key[0] in moved_set or key[1] in moved_set]
            for key in stale:
                del cache[key]
        self._bcast_receivers.clear()

    def set_node_active(self, node_id: int, active: bool) -> None:
        """Turn a node's radio on or off (churn join/fail).

        While off, every delivery attempt at the node fails with
        ``"rx_off"`` (counted in :attr:`loss_counts` and visible to
        frame observers, so probing estimators see the link die).  The
        node keeps its position and power-table rows; an in-progress
        transmission *from* the node runs to its scheduled end — the
        MAC-level quiesce is the caller's job (see
        :meth:`repro.sim.network.MeshNetwork.fail_node`).
        """
        if node_id not in self._node_index:
            raise KeyError(f"node {node_id} has no position in the medium")
        if active:
            self._inactive.discard(node_id)
            return
        if node_id in self._inactive:
            return
        self._inactive.add(node_id)
        # Receptions already in flight at the dying node fail now.
        rx_index = self._node_index[node_id]
        rx_live = self._rx_live
        for transmission in self._ongoing.values():
            reception = transmission.receptions.get(node_id)
            if reception is not None and reception.failure is None:
                reception.failure = "rx_off"
                rx_live[rx_index] -= 1

    # ------------------------------------------------------------ registration
    def register_mac(self, node_id: int, mac: MacListener) -> None:
        """Attach the MAC entity of ``node_id`` so it receives callbacks."""
        if node_id not in self.positions:
            raise KeyError(f"node {node_id} has no position in the medium")
        hinted = hasattr(mac, "_access_event") and hasattr(mac, "current")
        if node_id in self._macs:
            # Re-registration replaces in place, keeping the original
            # notification position (dict-overwrite semantics).
            for k, (existing, _, idx, _) in enumerate(self._mac_entries):
                if existing == node_id:
                    self._mac_entries[k] = (node_id, mac, idx, hinted)
                    break
        else:
            self._mac_entries.append(
                (node_id, mac, self._node_index[node_id], hinted)
            )
        self._macs[node_id] = mac

    def add_frame_observer(
        self, observer: Callable[[Frame, int, bool, str | None], None]
    ) -> None:
        """Register ``observer(frame, rx_id, success, failure_reason)``.

        Observers see every delivery attempt at every intended receiver;
        the measurement/trace layer uses this to count losses per link.
        """
        self.frame_observers.append(observer)

    # ------------------------------------------------------------------ power
    def distance(self, a: int, b: int) -> float:
        xa, ya = self.positions[a]
        xb, yb = self.positions[b]
        return ((xa - xb) ** 2 + (ya - yb) ** 2) ** 0.5

    def rx_power_dbm(self, tx: int, rx: int) -> float:
        """Received power at ``rx`` of a transmission from ``tx``."""
        return self._pow_dbm[(tx, rx)]

    def rx_power_mw(self, tx: int, rx: int) -> float:
        return self._pow_mw[(tx, rx)]

    def sensed_power_mw(self, node_id: int) -> float:
        """Current carrier-sensed foreign energy at ``node_id`` (mW)."""
        return self._sensed_mw[self._node_index[node_id]]

    def in_range(self, tx: int, rx: int, sensitivity_dbm: float) -> bool:
        """Whether ``rx`` can decode frames from ``tx`` absent interference."""
        return self._pow_dbm[(tx, rx)] >= sensitivity_dbm

    def can_sense(self, a: int, b: int) -> bool:
        """Whether node ``a`` senses the channel busy while ``b`` transmits."""
        return self._pow_dbm[(b, a)] >= self.radio.cs_threshold_dbm

    # ----------------------------------------------------------- carrier sense
    def is_busy(self, node_id: int) -> bool:
        """Local carrier-sense state of ``node_id``."""
        if node_id in self._transmitting:
            return True
        return self._sensed_mw[self._node_index[node_id]] >= self._cs_threshold_mw

    def _refresh_busy_states(self) -> None:
        """Recompute busy flags and notify MACs whose state flipped."""
        sensed = self._sensed_mw
        threshold = self._cs_threshold_mw
        transmitting = self._transmitting
        busy_state = self._busy_state
        for node_id, mac, idx, _ in self._mac_entries:
            busy = node_id in transmitting or sensed[idx] >= threshold
            if busy != busy_state[idx]:
                busy_state[idx] = busy
                if busy:
                    mac.on_medium_busy()
                else:
                    mac.on_medium_idle()

    # ------------------------------------------------------------ transmission
    def _intended_receivers(self, tx_id: int, frame: Frame) -> list[int]:
        if not frame.is_broadcast:
            return [frame.dst] if frame.dst in self.positions else []
        # Who hears a broadcast depends only on the (frozen) link powers
        # and the rate's sensitivity — memoised per (tx, sensitivity).
        sensitivity = frame.rate.rx_sensitivity_dbm
        key = (tx_id, sensitivity)
        receivers = self._bcast_receivers.get(key)
        if receivers is None:
            row_dbm = self._pow_dbm_from[tx_id]
            receivers = self._bcast_receivers[key] = [
                node
                for node in self._node_ids
                if node != tx_id and row_dbm[node] >= sensitivity
            ]
        return receivers

    def _receiver_is_locked(self, rx_id: int) -> bool:
        """Whether ``rx_id`` is currently locked onto an ongoing frame."""
        return self._rx_live[self._node_index[rx_id]] > 0

    def begin_transmission(self, tx_id: int, frame: Frame) -> float:
        """Start putting ``frame`` on the air from ``tx_id``.

        Returns the frame airtime; the medium schedules its own end-of-
        transmission processing and will call ``on_transmission_end`` on
        the transmitter's MAC when the frame leaves the air.
        """
        if tx_id in self._transmitting:
            raise RuntimeError(f"node {tx_id} is already transmitting")
        airtime_key = (frame.size_bytes, frame.rate.bps)
        duration = self._airtime_cache.get(airtime_key)
        if duration is None:
            duration = self._airtime_cache[airtime_key] = frame_airtime(
                frame.size_bytes, frame.rate
            )
        now = self.sim.now
        transmission = _Transmission(tx_id=tx_id, frame=frame, start=now, end=now + duration)
        row_mw = transmission.mw_row = self._pow_mw_from[tx_id]
        ongoing = self._ongoing

        # The new transmission interferes with, and may destroy, receptions
        # already in progress.  The interference accumulate is inlined
        # (``add_interference`` unrolled) — this pair loop runs once per
        # (ongoing reception, new transmitter).
        node_index = self._node_index
        rx_live = self._rx_live
        for other in ongoing.values():
            for rx_id, reception in other.receptions.items():
                if rx_id == tx_id:
                    # Half duplex: a node cannot keep receiving once it starts
                    # transmitting.
                    if reception.failure is None:
                        reception.failure = "half_duplex"
                        rx_live[node_index[rx_id]] -= 1
                    continue
                cur = reception.cur_interference_mw + row_mw[rx_id]
                reception.cur_interference_mw = cur
                if cur > reception.peak_interference_mw:
                    reception.peak_interference_mw = cur

        # Build reception state for the new frame's intended receivers.
        # The unicast case is inlined (one receiver, no sensitivity scan).
        if frame.dst != BROADCAST_ADDR and frame.kind is not FrameKind.BROADCAST:
            receivers = [frame.dst] if frame.dst in self.positions else []
        else:
            receivers = self._intended_receivers(tx_id, frame)
        row_dbm = self._pow_dbm_from[tx_id]
        pow_mw_from = self._pow_mw_from
        transmitting = self._transmitting
        receptions = transmission.receptions
        if len(receivers) >= 4 and ongoing:
            # Vectorized interference pass over the power matrix: one
            # fancy-indexed row read per ongoing transmitter, elementwise
            # adds across receivers.  Elementwise float64 add performs
            # the exact IEEE operation of the scalar loop in the same
            # per-receiver order, and ``tolist()`` round-trips exactly,
            # so this is bit-identical to the scalar fallback below.
            rx_idx = [node_index[rx_id] for rx_id in receivers]
            power_mw = self._power_mw
            acc = None
            for other in ongoing.values():
                row_vec = power_mw[node_index[other.tx_id]].take(rx_idx)
                acc = row_vec if acc is None else acc + row_vec
            interference_list = acc.tolist()
        else:
            interference_list = None
        inactive = self._inactive
        for k, rx_id in enumerate(receivers):
            reception = _Reception(signal_dbm=row_dbm[rx_id])
            if inactive and rx_id in inactive:
                reception.failure = "rx_off"
            elif rx_id in transmitting:
                reception.failure = "half_duplex"
            elif self._receiver_is_locked(rx_id):
                reception.failure = "rx_locked"
            else:
                rx_live[node_index[rx_id]] += 1
            if interference_list is not None:
                interference = interference_list[k]
            else:
                interference = 0.0
                for other in ongoing.values():
                    interference += pow_mw_from[other.tx_id][rx_id]
            reception.cur_interference_mw = interference
            reception.peak_interference_mw = interference
            receptions[rx_id] = reception

        ongoing[tx_id] = transmission
        transmitting = self._transmitting
        transmitting.add(tx_id)
        # Add this transmitter's row into every node's sensed energy and
        # notify busy/idle flips in one fused pass.  Adding 0.0 (the
        # diagonal) is a bitwise no-op on the non-negative sensed values.
        # Each node's flip depends only on its own sensed entry, and the
        # MAC handlers never read another node's carrier-sense state, so
        # fusing update and notification is observationally identical to
        # the two-pass form (which remains as the fallback when some
        # nodes have no registered MAC).  Starting a transmission only
        # *raises* sensed energy and only *adds* to the transmitting
        # set, so busy can only flip False -> True here: already-busy
        # nodes skip the threshold test, and a not-busy node is in the
        # transmitting set iff it is this very transmitter.  For hinted
        # listeners the ``on_medium_busy`` call is elided when it would
        # be a no-op (no pending access event to freeze).
        row = transmission.sensed_row = self._sensed_rows[self._node_index[tx_id]]
        sensed = self._sensed_mw
        entries = self._mac_entries
        if len(entries) == len(row):
            threshold = self._cs_threshold_mw
            busy_state = self._busy_state
            for node_id, mac, j, hinted in entries:
                p = row[j]
                if p:
                    sensed[j] = s = sensed[j] + p
                else:
                    s = sensed[j]
                if busy_state[j]:
                    continue
                if s >= threshold or node_id == tx_id:
                    busy_state[j] = True
                    if not hinted or mac._access_event is not None:
                        mac.on_medium_busy()
        else:
            for j, p in enumerate(row):
                if p:
                    sensed[j] += p
            self._refresh_busy_states()
        self.sim.schedule(duration, self._finish_callbacks[tx_id])
        return duration

    def _finish_transmission(self, tx_id: int) -> None:
        transmission = self._ongoing.pop(tx_id)
        transmitting = self._transmitting
        transmitting.discard(tx_id)
        # The frame's still-live receptions leave the air with it: they
        # no longer lock their receivers.
        node_index = self._node_index
        rx_live = self._rx_live
        for rx_id, reception in transmission.receptions.items():
            if reception.failure is None:
                rx_live[node_index[rx_id]] -= 1
        # Remove this transmitter's row from every node's sensed energy
        # (clamped at zero, as the incremental float bookkeeping always
        # was) and notify busy/idle flips in the same fused pass as
        # ``begin_transmission``.  Ending a transmission only *lowers*
        # sensed energy and only *removes* from the transmitting set, so
        # busy can only flip True -> False here: idle nodes skip the
        # threshold test entirely.  For hinted listeners the
        # ``on_medium_idle`` call is elided when it would be a no-op (no
        # frame in service, hence nothing to resume).  The subtraction
        # goes through the begin-time row snapshot, so a position epoch
        # between begin and finish cannot unbalance the sensed energy.
        row = transmission.sensed_row
        sensed = self._sensed_mw
        entries = self._mac_entries
        if len(entries) == len(row):
            threshold = self._cs_threshold_mw
            busy_state = self._busy_state
            for node_id, mac, j, hinted in entries:
                p = row[j]
                if p:
                    v = sensed[j] - p
                    sensed[j] = s = v if v > 0.0 else 0.0
                else:
                    s = sensed[j]
                if not busy_state[j]:
                    continue
                if s < threshold and node_id not in transmitting:
                    busy_state[j] = False
                    if not hinted or mac.current is not None:
                        mac.on_medium_idle()
        else:
            for j, p in enumerate(row):
                if p:
                    v = sensed[j] - p
                    sensed[j] = v if v > 0.0 else 0.0
            self._refresh_busy_states()
        # Ongoing receptions no longer suffer this transmitter's
        # interference (``remove_interference`` unrolled; ``max(0.0, v)``
        # and the conditional produce the same float).  As above, the
        # begin-time snapshot removes exactly what was added.
        row_mw = transmission.mw_row
        for other in self._ongoing.values():
            for rx_id, reception in other.receptions.items():
                if rx_id != tx_id:
                    v = reception.cur_interference_mw - row_mw[rx_id]
                    reception.cur_interference_mw = v if v > 0.0 else 0.0

        self._deliver(transmission)
        mac = self._macs.get(tx_id)
        if mac is not None:
            mac.on_transmission_end(transmission.frame)

    # -------------------------------------------------------------- reception
    def _draw_uniform(self) -> float:
        """Next value of the medium's uniform RNG stream (buffered)."""
        pos = self._rand_pos
        buf = self._rand_buf
        if pos >= len(buf):
            buf = self._rand_buf = self._rng.random(256).tolist()
            pos = 0
        self._rand_pos = pos + 1
        return buf[pos]

    def _channel_error_probability(self, tx_id: int, rx_id: int, frame: Frame) -> float:
        # Link SNRs are frozen with the positions, so the residual error
        # probability is a constant per (link, rate, length) — memoised
        # here to keep the error model out of the per-frame path.
        key = (tx_id, rx_id, frame.rate.bps, frame.size_bytes)
        per = self._per_cache.get(key)
        if per is None:
            per = self._per_cache[key] = self._compute_channel_error_probability(
                tx_id, rx_id, frame
            )
        return per

    def _compute_channel_error_probability(self, tx_id: int, rx_id: int, frame: Frame) -> float:
        override = self.link_error_override.get((tx_id, rx_id))
        if override is not None:
            # The override is specified for a nominal 1500-byte frame;
            # rescale to the actual frame length assuming independent
            # bit errors so short probes lose less often than long DATA.
            reference_bits = 1500 * 8
            if override >= 1.0:
                return 1.0
            ber = 1.0 - (1.0 - override) ** (1.0 / reference_bits)
            return 1.0 - (1.0 - ber) ** (frame.size_bytes * 8)
        snr = self._snr_from[tx_id][rx_id]
        return self.error_model.packet_error_probability(snr, frame.rate, frame.size_bytes)

    def _resolve_reception(
        self, tx_id: int, rx_id: int, frame: Frame, peak_mw: float
    ) -> tuple[str | None, float, float]:
        """Deterministic part of reception resolution, memo-miss path.

        Returns ``(pre_failure, per, p_int)``: the draw-free verdict
        (``"weak"``/``"collision"``/None), the residual channel error
        probability, and the partial-capture error probability (0.0 when
        there was no overlap).  Everything here is a pure function of
        the key ``(tx, rx, rate, length, peak interference)`` because
        link powers are frozen at construction.
        """
        rate = frame.rate
        signal_dbm = self._pow_dbm_from[tx_id][rx_id]
        if signal_dbm < rate.rx_sensitivity_dbm:
            return ("weak", 0.0, 0.0)
        if not self.capture.decodable(signal_dbm, peak_mw, rate):
            return ("collision", 0.0, 0.0)
        per = self._channel_error_probability(tx_id, rx_id, frame)
        if peak_mw > 0.0:
            # Partial capture: the frame clears the SINR threshold but
            # overlapping interference still degrades the effective
            # SINR, producing extra bit errors.  This is what makes
            # real-world LIR values non-binary (Section 4.2 of the
            # paper).
            effective_sinr = self.capture.sinr(signal_dbm, peak_mw)
            p_int = self.error_model.packet_error_probability(
                effective_sinr, rate, frame.size_bytes
            )
        else:
            p_int = 0.0
        return (None, per, p_int)

    def _deliver(self, transmission: _Transmission) -> None:
        frame = transmission.frame
        rate_bps = frame.rate.bps
        size_bytes = frame.size_bytes
        observers = self.frame_observers
        macs = self._macs
        tx_id = transmission.tx_id
        cache = self._resolve_cache
        for rx_id, reception in transmission.receptions.items():
            failure = reception.failure
            if failure is None:
                # The deterministic verdict and both error probabilities
                # come from the interference-signature memo; only the
                # uniform draws (in the exact order and under the exact
                # conditions of the unmemoised path) happen per frame.
                peak_mw = reception.peak_interference_mw
                key = (tx_id, rx_id, rate_bps, size_bytes, peak_mw)
                resolved = cache.get(key)
                if resolved is None:
                    resolved = cache[key] = self._resolve_reception(
                        tx_id, rx_id, frame, peak_mw
                    )
                failure, per, p_int = resolved
                if failure is None:
                    # Residual channel errors (independent of
                    # interference), then partial-capture losses.
                    if per > 0.0 and self._draw_uniform() < per:
                        failure = "channel"
                    elif p_int > 0.0 and self._draw_uniform() < p_int:
                        failure = "collision"
            success = failure is None
            for observer in observers:
                observer(frame, rx_id, success, failure)
            if success:
                self.delivered_frames += 1
                mac = macs.get(rx_id)
                if mac is not None:
                    mac.on_frame_received(frame, tx_id)
            else:
                self.loss_counts[failure] += 1
