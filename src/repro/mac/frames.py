"""MAC frame representation.

Frames are what travels over the simulated medium.  They carry an opaque
``payload`` (a network-layer :class:`repro.net.packet.Packet` or probe
object) plus the addressing and sizing information the MAC and PHY need.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.phy.radio import PhyRate

#: Link-layer broadcast address.
BROADCAST_ADDR = -1

_frame_ids = itertools.count()


class FrameKind(Enum):
    """The three kinds of frames the DCF simulator exchanges."""

    DATA = "data"
    ACK = "ack"
    BROADCAST = "broadcast"

    # Identity hash instead of Enum's name-based Python-level __hash__:
    # members are singletons, so this is equivalent for dict keys (and
    # dict iteration order stays insertion-ordered regardless of hash),
    # but it keeps the per-delivery counter lookups out of Python code.
    __hash__ = object.__hash__


@dataclass(slots=True)
class Frame:
    """A MAC frame in flight.

    Attributes:
        kind: DATA (unicast, acknowledged, retransmitted), ACK, or
            BROADCAST (single attempt, no acknowledgment).
        src: transmitting node id.
        dst: receiving node id, or :data:`BROADCAST_ADDR`.
        size_bytes: full frame size on the air (MAC header + payload + FCS).
        rate: modulation used for the frame body.
        payload: opaque upper-layer object delivered to the receiver.
        retries: number of retransmissions already performed.
    """

    kind: FrameKind
    src: int
    dst: int
    size_bytes: int
    rate: PhyRate
    payload: Any = None
    retries: int = 0
    frame_id: int = field(default_factory=_frame_ids.__next__)

    @property
    def is_broadcast(self) -> bool:
        return self.dst == BROADCAST_ADDR or self.kind is FrameKind.BROADCAST

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("frame size must be positive")


def make_ack(data_frame: Frame, ack_bytes: int, rate: PhyRate) -> Frame:
    """Build the 802.11 ACK frame acknowledging ``data_frame``."""
    return Frame(
        kind=FrameKind.ACK,
        src=data_frame.dst,
        dst=data_frame.src,
        size_bytes=ack_bytes,
        rate=rate,
        payload=data_frame.frame_id,
    )
