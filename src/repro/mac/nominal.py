"""Nominal (theoretical maximum) 802.11 throughput.

Implements the Theoretical Maximum Throughput of Jun, Peddabachagari and
Sichitiu ("Theoretical Maximum Throughput of IEEE 802.11 and its
Applications", NCA 2003), which the paper cites as reference [19] and
uses as the ``Tnom`` term of its capacity representation (Eq. 6).

For a single backlogged sender with no losses, the per-packet cycle is::

    DIFS + average backoff + T_DATA + SIFS + T_ACK

where ``T_DATA`` and ``T_ACK`` include the PLCP preamble/header, and the
average backoff of an uncontended station is ``CWmin/2`` slots.  The
nominal throughput is the payload size divided by this cycle time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mac.constants import (
    ACK_FRAME_BYTES,
    DEFAULT_MAC_CONFIG,
    MacConfig,
    UDP_TOTAL_HEADER_BYTES,
)
from repro.phy.radio import PhyRate, RATE_1MBPS, frame_airtime


@dataclass(frozen=True)
class NominalThroughputBreakdown:
    """Per-packet time budget behind a nominal-throughput figure."""

    difs_s: float
    avg_backoff_s: float
    data_airtime_s: float
    sifs_s: float
    ack_airtime_s: float

    @property
    def cycle_s(self) -> float:
        """Total duration of one successful packet exchange."""
        return (
            self.difs_s
            + self.avg_backoff_s
            + self.data_airtime_s
            + self.sifs_s
            + self.ack_airtime_s
        )


def nominal_cycle_breakdown(
    payload_bytes: int,
    rate: PhyRate,
    mac: MacConfig = DEFAULT_MAC_CONFIG,
    header_bytes: int = UDP_TOTAL_HEADER_BYTES,
    ack_rate: PhyRate = RATE_1MBPS,
) -> NominalThroughputBreakdown:
    """Break a single successful DATA/ACK exchange into its components.

    Args:
        payload_bytes: UDP payload carried by the frame.
        rate: modulation of the DATA frame.
        mac: MAC timing parameters.
        header_bytes: MAC+IP+UDP header bytes added on top of the payload.
        ack_rate: modulation of the 802.11 ACK (basic rate).
    """
    if payload_bytes <= 0:
        raise ValueError("payload_bytes must be positive")
    data_airtime = frame_airtime(payload_bytes + header_bytes, rate)
    ack_airtime = frame_airtime(ACK_FRAME_BYTES, ack_rate)
    avg_backoff = mac.slot_s * mac.cw_min / 2.0
    return NominalThroughputBreakdown(
        difs_s=mac.difs_s,
        avg_backoff_s=avg_backoff,
        data_airtime_s=data_airtime,
        sifs_s=mac.sifs_s,
        ack_airtime_s=ack_airtime,
    )


def nominal_throughput_bps(
    payload_bytes: int,
    rate: PhyRate,
    mac: MacConfig = DEFAULT_MAC_CONFIG,
    header_bytes: int = UDP_TOTAL_HEADER_BYTES,
    ack_rate: PhyRate = RATE_1MBPS,
) -> float:
    """Nominal UDP payload throughput of a lossless, uncontended link.

    Returns bits per second of UDP payload delivered by a single
    backlogged transmitter with no channel errors, no collisions and no
    competing traffic — the quantity the paper calls ``Tnom``.
    """
    breakdown = nominal_cycle_breakdown(payload_bytes, rate, mac, header_bytes, ack_rate)
    return payload_bytes * 8 / breakdown.cycle_s
