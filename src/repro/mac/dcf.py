"""Per-station 802.11 DCF (Distributed Coordination Function) entity.

Implements the CSMA/CA access procedure used by every node of the mesh:

* physical carrier sensing (via :class:`repro.mac.medium.WirelessMedium`
  busy/idle notifications),
* DIFS deferral followed by a uniform backoff drawn from the current
  contention window, frozen while the medium is busy,
* unicast DATA frames acknowledged after SIFS, retransmitted with binary
  exponential backoff up to a retry limit,
* broadcast frames transmitted once with the initial contention window
  and never acknowledged (this is what makes network-layer broadcast
  probes reflect the raw loss rate seen by the MAC, as exploited by the
  paper's online estimator).

The MAC owns a bounded interface queue; upper layers push frames with
:meth:`DcfMac.enqueue` and get completion / drop / dequeue callbacks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.mac.constants import ACK_FRAME_BYTES, DEFAULT_MAC_CONFIG, MacConfig
from repro.mac.frames import Frame, FrameKind, make_ack
from repro.mac.medium import WirelessMedium
from repro.phy.radio import PhyRate, RATE_1MBPS, frame_airtime
from repro.engine import Event, Simulator


@dataclass
class MacStats:
    """Counters exposed by each DCF entity for diagnostics and tests."""

    enqueued: int = 0
    queue_drops: int = 0
    attempts: int = 0
    successes: int = 0
    retry_drops: int = 0
    broadcasts_sent: int = 0
    acks_sent: int = 0
    data_received: int = 0
    broadcast_received: int = 0
    retransmissions: int = 0


class DcfMac:
    """One station's DCF state machine.

    Args:
        node_id: identifier of this station in the medium.
        sim: discrete-event simulator.
        medium: the shared wireless medium.
        config: MAC timing/backoff parameters.
        ack_rate: modulation used for 802.11 ACK frames (basic rate).
        rx_callback: ``f(payload, src_id, frame)`` invoked on every
            successfully received DATA or broadcast frame addressed to
            (or overheard by, for broadcast) this station.
        tx_done_callback: ``f(frame, success)`` invoked when a queued
            frame leaves the MAC, either successfully or after exhausting
            its retries.
        dequeue_callback: ``f()`` invoked whenever a frame is taken from
            the interface queue; backlogged sources use it to top the
            queue back up.
    """

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        medium: WirelessMedium,
        config: MacConfig = DEFAULT_MAC_CONFIG,
        ack_rate: PhyRate = RATE_1MBPS,
        rx_callback: Optional[Callable[[object, int, Frame], None]] = None,
        tx_done_callback: Optional[Callable[[Frame, bool], None]] = None,
        dequeue_callback: Optional[Callable[[], None]] = None,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.medium = medium
        self.config = config
        self.ack_rate = ack_rate
        self.rx_callback = rx_callback
        self.tx_done_callback = tx_done_callback
        self.dequeue_callback = dequeue_callback
        self._rng = sim.rng_stream(f"mac-{node_id}")
        self.queue: deque[Frame] = deque()
        self.current: Frame | None = None
        self.stats = MacStats()
        self._cw = config.cw_min
        self._backoff_slots = 0
        self._access_event: Event | None = None
        self._access_idle_start = 0.0
        self._waiting_ack = False
        self._ack_timeout_event: Event | None = None
        self._transmitting = False
        self._down = False
        self._pending_control: deque[Frame] = deque()
        # Hot-path constants and bindings.  ``config`` and ``ack_rate``
        # are fixed for the MAC's lifetime, so the derived timings are
        # computed once — by the same expressions the per-frame code
        # used, so the floats are bit-identical.
        self._difs_s = config.difs_s
        self._slot_s = config.slot_s
        self._sifs_s = config.sifs_s
        self._cw_min = config.cw_min
        self._ack_timeout_s = (
            config.sifs_s
            + frame_airtime(ACK_FRAME_BYTES, ack_rate)
            + config.ack_timeout_slack_s
        )
        self._medium_is_busy = medium.is_busy
        # Pre-bound ACK sender: DATA receptions enqueue the ACK and
        # schedule this single bound method instead of building a fresh
        # ``partial`` per frame.  The outbox is FIFO and SIFS is a
        # constant, so scheduling order equals send order.
        self._ack_outbox: deque[Frame] = deque()
        self._send_next_control = self._send_next_control_frame
        medium.register_mac(node_id, self)

    # ------------------------------------------------------------- queueing
    @property
    def queue_length(self) -> int:
        """Frames waiting in the interface queue (excludes the one in service)."""
        return len(self.queue)

    @property
    def busy(self) -> bool:
        """Whether the MAC currently has a frame in service."""
        return self.current is not None

    @property
    def down(self) -> bool:
        """Whether the station is quiesced by a churn failure."""
        return self._down

    def quiesce(self) -> None:
        """Deterministically shut the station down (churn failure).

        Cancels the pending access and ACK-timeout events, drops every
        queued/in-service frame and pending control frame, and resets
        the contention window — the state a power-cycled interface comes
        back with.  No RNG is drawn and no event is scheduled, so a
        quiesce perturbs nothing beyond the frames it discards.  A
        transmission already on the air runs to its scheduled end
        (:meth:`on_transmission_end` is a guarded no-op while down).
        """
        self._down = True
        if self._access_event is not None:
            self._access_event.cancel()
            self._access_event = None
        if self._ack_timeout_event is not None:
            self._ack_timeout_event.cancel()
            self._ack_timeout_event = None
        self._waiting_ack = False
        self.queue.clear()
        self.current = None
        self._pending_control.clear()
        self._ack_outbox.clear()
        self._cw = self._cw_min
        self._backoff_slots = 0

    def revive(self) -> None:
        """Bring a quiesced station back up (churn rejoin).

        State was already reset by :meth:`quiesce`; traffic resumes when
        an upper layer next enqueues (CBR ticks and TCP retransmit
        timers re-offer on their own; backlogged UDP sources need a
        :meth:`repro.transport.udp.UdpSource.refresh` kick, which
        :meth:`repro.sim.network.MeshNetwork.revive_node` performs).
        """
        self._down = False

    def enqueue(self, frame: Frame) -> bool:
        """Push a frame into the interface queue.

        Returns ``False`` (and counts a queue drop) when the queue is
        full; the frame is discarded in that case, mirroring a drop-tail
        interface queue.  A station that is down (churn failure) refuses
        every frame without counting it.
        """
        if self._down:
            return False
        self.stats.enqueued += 1
        if len(self.queue) >= self.config.queue_limit:
            self.stats.queue_drops += 1
            return False
        self.queue.append(frame)
        if self.current is None:
            self._next_frame()
        return True

    def _next_frame(self) -> None:
        if self.current is not None or not self.queue:
            return
        self.current = self.queue.popleft()
        if self.dequeue_callback is not None:
            self.dequeue_callback()
        self._cw = self._cw_min
        self._backoff_slots = int(self._rng.integers(0, self._cw + 1))
        self._try_access()

    # ------------------------------------------------------------ DCF access
    def _try_access(self) -> None:
        if (
            self.current is None
            or self._access_event is not None
            or self._transmitting
            or self._waiting_ack
        ):
            return
        if self._medium_is_busy(self.node_id):
            return
        self._access_idle_start = self.sim.now
        delay = self._difs_s + self._backoff_slots * self._slot_s
        self._access_event = self.sim.schedule(delay, self._transmit_current)

    def on_medium_busy(self) -> None:
        """Carrier sense went busy: freeze the backoff countdown.

        The medium elides this call while ``self._access_event is None``
        (see :class:`repro.mac.medium.MacListener`), so any new side
        effect added here must keep that guard a faithful no-op test.
        """
        event = self._access_event
        if event is None:
            return
        elapsed = self.sim.now - self._access_idle_start - self._difs_s
        if elapsed > 0:
            consumed = int(elapsed / self._slot_s)
            self._backoff_slots = max(0, self._backoff_slots - consumed)
        event.cancel()
        self._access_event = None

    def on_medium_idle(self) -> None:
        """Carrier sense went idle: resume (or start) channel access.

        This is ``_try_access`` with the carrier-sense re-check elided:
        the medium invokes it synchronously at the moment it flipped
        this node's busy state to idle, so ``is_busy`` is False by
        construction (not transmitting, sensed energy below threshold).
        The medium also elides the call entirely while ``self.current is
        None`` (see :class:`repro.mac.medium.MacListener`), so any new
        side effect added here must keep that guard a faithful no-op
        test.
        """
        if (
            self.current is None
            or self._access_event is not None
            or self._transmitting
            or self._waiting_ack
        ):
            return
        self._access_idle_start = self.sim.now
        delay = self._difs_s + self._backoff_slots * self._slot_s
        self._access_event = self.sim.schedule(delay, self._transmit_current)

    def _transmit_current(self) -> None:
        self._access_event = None
        frame = self.current
        if frame is None:  # pragma: no cover - defensive
            return
        self._backoff_slots = 0
        self._transmitting = True
        self.stats.attempts += 1
        if frame.retries > 0:
            self.stats.retransmissions += 1
        self.medium.begin_transmission(self.node_id, frame)

    # -------------------------------------------------------- medium callbacks
    def on_transmission_end(self, frame: Frame) -> None:
        """Our own frame just left the air."""
        self._transmitting = False
        if self._down:
            # The station was quiesced while this frame was on the air:
            # its completion is moot and must not restart channel access.
            return
        if frame.kind is FrameKind.ACK:
            self._flush_control()
            self._try_access()
            return
        if frame.is_broadcast:
            self.stats.broadcasts_sent += 1
            self._complete_current(success=True)
            return
        # Unicast DATA: wait for the ACK.
        self._waiting_ack = True
        self._ack_timeout_event = self.sim.schedule(self._ack_timeout_s, self._on_ack_timeout)

    def on_frame_received(self, frame: Frame, from_id: int) -> None:
        """The medium successfully delivered a frame to this station."""
        if frame.kind is FrameKind.ACK:
            if (
                self._waiting_ack
                and self.current is not None
                and frame.dst == self.node_id
                and frame.payload == self.current.frame_id
            ):
                if self._ack_timeout_event is not None:
                    self._ack_timeout_event.cancel()
                    self._ack_timeout_event = None
                self._waiting_ack = False
                self._complete_current(success=True)
            return
        if frame.kind is FrameKind.DATA and frame.dst == self.node_id:
            self.stats.data_received += 1
            self._ack_outbox.append(make_ack(frame, ACK_FRAME_BYTES, self.ack_rate))
            self.sim.schedule(self._sifs_s, self._send_next_control)
            if self.rx_callback is not None:
                self.rx_callback(frame.payload, from_id, frame)
            return
        if frame.is_broadcast:
            self.stats.broadcast_received += 1
            if self.rx_callback is not None:
                self.rx_callback(frame.payload, from_id, frame)

    # ------------------------------------------------------------- ACK logic
    def _send_next_control_frame(self) -> None:
        if self._down or not self._ack_outbox:
            # A SIFS-scheduled send can outlive a quiesce (the event has
            # no handle to cancel); the cleared outbox makes it a no-op.
            return
        self._send_control(self._ack_outbox.popleft())

    def _send_control(self, ack: Frame) -> None:
        if self._transmitting:
            # Half duplex: we are mid-transmission; queue the ACK and send
            # it as soon as our own frame ends.  (Rare, but dropping it
            # silently would inflate retransmissions artificially.)
            self._pending_control.append(ack)
            return
        # Sending a control frame interrupts our own backoff countdown.
        self.on_medium_busy()
        self._transmitting = True
        self.stats.acks_sent += 1
        self.medium.begin_transmission(self.node_id, ack)

    def _flush_control(self) -> None:
        if self._pending_control and not self._transmitting:
            ack = self._pending_control.popleft()
            self._transmitting = True
            self.stats.acks_sent += 1
            self.medium.begin_transmission(self.node_id, ack)

    def _on_ack_timeout(self) -> None:
        self._ack_timeout_event = None
        self._waiting_ack = False
        frame = self.current
        if frame is None:  # pragma: no cover - defensive
            return
        frame.retries += 1
        if frame.retries > self.config.retry_limit:
            self.stats.retry_drops += 1
            self._complete_current(success=False)
            return
        self._cw = min(2 * (self._cw + 1) - 1, self.config.cw_max)
        self._backoff_slots = int(self._rng.integers(0, self._cw + 1))
        self._try_access()

    def _complete_current(self, success: bool) -> None:
        frame = self.current
        self.current = None
        self._cw = self._cw_min
        if success:
            self.stats.successes += 1
        if frame is not None and self.tx_done_callback is not None:
            self.tx_done_callback(frame, success)
        self._flush_control()
        self._next_frame()
