"""802.11b/g MAC timing and protocol constants.

Values follow the 802.11b/g (DSSS/CCK, long slot) parameter set used by
the paper's testbed: 20 microsecond slots, SIFS 10 us, DIFS 50 us,
CWmin 31, CWmax 1023.  The contention-window parameters feed both the DCF
simulator and the closed-form capacity representation of Eq. (6).
"""

from __future__ import annotations

from dataclasses import dataclass


#: Size in bytes of a MAC-layer 802.11 ACK frame.
ACK_FRAME_BYTES = 14
#: MAC header (24) + FCS (4) + LLC/SNAP (8) overhead added to every DATA frame.
MAC_OVERHEAD_BYTES = 36
#: IPv4 header bytes.
IP_HEADER_BYTES = 20
#: UDP header bytes.
UDP_HEADER_BYTES = 8
#: TCP header bytes.
TCP_HEADER_BYTES = 20
#: Total header overhead (MAC + IP + UDP) carried on top of a UDP payload.
UDP_TOTAL_HEADER_BYTES = MAC_OVERHEAD_BYTES + IP_HEADER_BYTES + UDP_HEADER_BYTES
#: Size of a TCP ACK segment on the wire (MAC + IP + TCP headers, no payload).
TCP_ACK_BYTES = MAC_OVERHEAD_BYTES + IP_HEADER_BYTES + TCP_HEADER_BYTES


@dataclass(frozen=True)
class MacConfig:
    """Tunable DCF parameters.

    Attributes:
        slot_s: backoff slot duration.
        sifs_s: short inter-frame space.
        difs_s: DCF inter-frame space.
        cw_min: minimum contention window (W0 - 1 slots drawn uniformly).
        cw_max: maximum contention window.
        retry_limit: number of transmission attempts before a unicast
            frame is dropped (the paper's Madwifi default behaviour).
        queue_limit: interface queue capacity in frames.
        ack_timeout_slack_s: extra guard time added to the ACK timeout.
    """

    slot_s: float = 20e-6
    sifs_s: float = 10e-6
    difs_s: float = 50e-6
    cw_min: int = 31
    cw_max: int = 1023
    retry_limit: int = 7
    queue_limit: int = 100
    ack_timeout_slack_s: float = 40e-6

    @property
    def w0(self) -> int:
        """Initial contention window size (number of slots, W0)."""
        return self.cw_min + 1

    @property
    def wmax(self) -> int:
        """Maximum contention window size (Wm)."""
        return self.cw_max + 1

    @property
    def max_backoff_stage(self) -> int:
        """Backoff stage m at which the contention window saturates."""
        stage = 0
        cw = self.cw_min
        while cw < self.cw_max:
            cw = min(2 * (cw + 1) - 1, self.cw_max)
            stage += 1
        return stage


#: Default MAC configuration (802.11b/g long slot).
DEFAULT_MAC_CONFIG = MacConfig()
