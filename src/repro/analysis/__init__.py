"""Metrics (Jain index, RMSE, CDFs, isolation metrics) and plain-text
reporting helpers used by the benchmark harness."""

from repro.analysis.metrics import (
    cdf_fraction_below,
    empirical_cdf,
    feasibility_ratio,
    jain_fairness_index,
    relative_error,
    rmse,
    stability_deviations,
)
from repro.analysis.reporting import (
    ExperimentReport,
    batch_summary_table,
    drain_emitted_reports,
    format_cdf_summary,
    format_table,
)

__all__ = [
    "cdf_fraction_below",
    "empirical_cdf",
    "feasibility_ratio",
    "jain_fairness_index",
    "relative_error",
    "rmse",
    "stability_deviations",
    "ExperimentReport",
    "batch_summary_table",
    "drain_emitted_reports",
    "format_cdf_summary",
    "format_table",
]
