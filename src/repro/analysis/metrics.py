"""Evaluation metrics used throughout the paper's figures.

Jain's fairness index (Figure 14b), root-mean-square error (Figures 10
and 12), empirical CDFs (most figures), and the flow-isolation metrics of
Section 6.2: feasibility (achieved over optimized rate) and stability
(relative deviation from the per-scenario mean).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    Equals 1 for perfectly equal allocations and 1/n when a single flow
    receives everything.  Zero-length input raises; an all-zero
    allocation returns 1.0 (every flow equally starved).
    """
    x = np.asarray(list(values), dtype=float)
    if x.size == 0:
        raise ValueError("at least one value is required")
    if np.any(x < 0):
        raise ValueError("values must be non-negative")
    # Normalize by the max before squaring: for subnormal inputs
    # (sum x)^2 underflows to 0 while sum x^2 may not (and vice versa at
    # the overflow end), which would push the index outside [1/n, 1].
    # After scaling the largest value is exactly 1, so both sums stay in
    # [1, n^2] and the ratio is computed at full precision.
    peak = float(x.max())
    if peak == 0.0:
        return 1.0
    x = x / peak
    return float(np.sum(x)) ** 2 / (x.size * float(np.sum(x**2)))


def rmse(estimates: Sequence[float], truths: Sequence[float]) -> float:
    """Root mean square error between two equally long sequences."""
    est = np.asarray(list(estimates), dtype=float)
    truth = np.asarray(list(truths), dtype=float)
    if est.shape != truth.shape:
        raise ValueError("estimates and truths must have the same length")
    if est.size == 0:
        raise ValueError("at least one value is required")
    return float(np.sqrt(np.mean((est - truth) ** 2)))


def empirical_cdf(values: Iterable[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative fractions)."""
    x = np.sort(np.asarray(list(values), dtype=float))
    if x.size == 0:
        raise ValueError("at least one value is required")
    fractions = np.arange(1, x.size + 1) / x.size
    return x, fractions


def cdf_fraction_below(values: Iterable[float], threshold: float) -> float:
    """Fraction of the samples that are <= ``threshold``."""
    x = np.asarray(list(values), dtype=float)
    if x.size == 0:
        raise ValueError("at least one value is required")
    return float(np.mean(x <= threshold))


def feasibility_ratio(achieved_bps: float, target_bps: float) -> float:
    """Flow-isolation feasibility metric: achieved over optimized rate."""
    if target_bps <= 0:
        return 1.0
    return achieved_bps / target_bps


def stability_deviations(throughputs: Sequence[float]) -> list[float]:
    """Per-run stability metric: ``|x_i - mean| / mean`` for each run."""
    x = np.asarray(list(throughputs), dtype=float)
    if x.size == 0:
        raise ValueError("at least one throughput is required")
    mean = float(x.mean())
    if mean == 0.0:
        return [0.0] * x.size
    return list(np.abs(x - mean) / mean)


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate - truth| / truth`` with a zero-truth guard."""
    if truth == 0.0:
        return 0.0 if estimate == 0.0 else float("inf")
    return abs(estimate - truth) / abs(truth)
