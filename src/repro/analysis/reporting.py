"""Plain-text reporting helpers used by the benchmark harness.

Every benchmark regenerates the rows/series of one table or figure of the
paper; these helpers render them consistently so ``bench_output.txt``
reads like the paper's evaluation section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> str:
    """Render a fixed-width text table."""
    rendered_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_cdf_summary(name: str, values: Sequence[float], percentiles=(10, 25, 50, 75, 90)) -> str:
    """One-line summary of a distribution (used in place of CDF plots)."""
    import numpy as np

    x = np.asarray(list(values), dtype=float)
    parts = [f"{name}: n={x.size}"]
    if x.size:
        parts.append(f"mean={x.mean():.3f}")
        for p in percentiles:
            parts.append(f"p{p}={np.percentile(x, p):.3f}")
    return "  ".join(parts)


def batch_summary_table(results: Sequence[object], title: str | None = None) -> str:
    """Summary table for a batch of experiment results.

    Accepts any sequence of :class:`repro.experiment.ExperimentResult`\\ s
    (duck-typed here to keep the analysis layer free of an experiment
    dependency): one row per run plus a mean/min/max footer over the
    aggregate throughputs.
    """
    import numpy as np

    rows = []
    aggregates = []
    for result in results:
        spec = result.spec
        aggregate = result.aggregate_bps
        aggregates.append(aggregate)
        # ScenarioSpec.describe() names generated scenarios by their
        # composition (topology x workload x radio profile) instead of
        # the uninformative literal "generated".
        scenario = spec.scenario
        scenario_name = (
            scenario.describe() if hasattr(scenario, "describe") else scenario.scenario
        )
        rows.append([
            spec.label or scenario_name,
            spec.scenario.seed,
            spec.scenario.run_seed if spec.scenario.run_seed is not None else "-",
            aggregate / 1e3,
            result.jain_index,
            result.utility,
        ])
    table = format_table(
        ["experiment", "seed", "run_seed", "aggregate kb/s", "Jain index", "utility"],
        rows,
        title=title,
    )
    if aggregates:
        x = np.asarray(aggregates, dtype=float)
        table += (
            f"\naggregate kb/s over {x.size} run(s): "
            f"mean={x.mean() / 1e3:.1f}  min={x.min() / 1e3:.1f}  max={x.max() / 1e3:.1f}"
        )
    return table


@dataclass
class ExperimentReport:
    """Accumulates paper-vs-measured lines for one experiment."""

    experiment_id: str
    description: str
    lines: list[str] = field(default_factory=list)

    def add(self, line: str) -> None:
        self.lines.append(line)

    def add_comparison(self, quantity: str, paper_value: str, measured_value: str) -> None:
        self.lines.append(f"{quantity}: paper={paper_value}  measured={measured_value}")

    def render(self) -> str:
        header = f"=== {self.experiment_id}: {self.description} ==="
        return "\n".join([header, *self.lines])

    def emit(self) -> None:
        """Print the report and register it for the benchmark summary.

        pytest captures per-test output, so the benchmark harness also
        collects emitted reports via :func:`drain_emitted_reports` and
        re-prints them in its terminal summary, which is what ends up in
        ``bench_output.txt``.
        """
        _EMITTED_REPORTS.append(self)
        print("\n" + self.render())


#: Reports emitted since the last drain (consumed by the benchmark harness).
_EMITTED_REPORTS: list[ExperimentReport] = []


def drain_emitted_reports() -> list[ExperimentReport]:
    """Return (and clear) every report emitted since the last call."""
    reports = list(_EMITTED_REPORTS)
    _EMITTED_REPORTS.clear()
    return reports
