"""Plain-text reporting helpers used by the benchmark harness.

Every benchmark regenerates the rows/series of one table or figure of the
paper; these helpers render them consistently so ``bench_output.txt``
reads like the paper's evaluation section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> str:
    """Render a fixed-width text table."""
    rendered_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_cdf_summary(name: str, values: Sequence[float], percentiles=(10, 25, 50, 75, 90)) -> str:
    """One-line summary of a distribution (used in place of CDF plots)."""
    import numpy as np

    x = np.asarray(list(values), dtype=float)
    parts = [f"{name}: n={x.size}"]
    if x.size:
        parts.append(f"mean={x.mean():.3f}")
        for p in percentiles:
            parts.append(f"p{p}={np.percentile(x, p):.3f}")
    return "  ".join(parts)


@dataclass
class ExperimentReport:
    """Accumulates paper-vs-measured lines for one experiment."""

    experiment_id: str
    description: str
    lines: list[str] = field(default_factory=list)

    def add(self, line: str) -> None:
        self.lines.append(line)

    def add_comparison(self, quantity: str, paper_value: str, measured_value: str) -> None:
        self.lines.append(f"{quantity}: paper={paper_value}  measured={measured_value}")

    def render(self) -> str:
        header = f"=== {self.experiment_id}: {self.description} ==="
        return "\n".join([header, *self.lines])

    def emit(self) -> None:
        """Print the report and register it for the benchmark summary.

        pytest captures per-test output, so the benchmark harness also
        collects emitted reports via :func:`drain_emitted_reports` and
        re-prints them in its terminal summary, which is what ends up in
        ``bench_output.txt``.
        """
        _EMITTED_REPORTS.append(self)
        print("\n" + self.render())


#: Reports emitted since the last drain (consumed by the benchmark harness).
_EMITTED_REPORTS: list[ExperimentReport] = []


def drain_emitted_reports() -> list[ExperimentReport]:
    """Return (and clear) every report emitted since the last call."""
    reports = list(_EMITTED_REPORTS)
    _EMITTED_REPORTS.clear()
    return reports
