"""SINR computation and the 802.11 capture model.

Capture is central to the paper's findings: in Information Asymmetry and
Near-Far topologies the two transmitters do not sense each other, their
frames overlap at the receivers, and yet receivers often decode one (or
both) frames because the wanted signal is strong enough relative to the
interference.  That is what pushes the true feasibility region above the
time-sharing line (Figure 5 of the paper).

We model capture with a per-rate SINR threshold: a frame is decodable in
the presence of overlapping transmissions iff its signal power exceeds
noise-plus-peak-interference by the modulation's ``min_sinr_db``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.propagation import dbm_to_mw, mw_to_dbm
from repro.phy.radio import PhyRate

#: Thermal noise floor for a 22 MHz 802.11b/g channel plus a typical
#: receiver noise figure (about -101 dBm + 7 dB NF).
NOISE_FLOOR_DBM = -94.0


def snr_db(signal_dbm: float, noise_dbm: float = NOISE_FLOOR_DBM) -> float:
    """Signal-to-noise ratio in dB."""
    return signal_dbm - noise_dbm


def sinr_db(
    signal_dbm: float,
    interference_mw: float,
    noise_dbm: float = NOISE_FLOOR_DBM,
) -> float:
    """Signal-to-interference-plus-noise ratio in dB.

    Args:
        signal_dbm: received power of the wanted frame.
        interference_mw: total interference power in milliwatts (sum of
            received powers of all overlapping transmissions).
        noise_dbm: thermal noise floor.
    """
    denom_mw = dbm_to_mw(noise_dbm) + max(interference_mw, 0.0)
    return signal_dbm - mw_to_dbm(denom_mw)


@dataclass
class CaptureModel:
    """Decides frame decodability from signal, interference and rate.

    Attributes:
        noise_floor_dbm: thermal noise power.  Fixed at construction:
            the derived linear noise power is cached so the hot
            decodability check does not re-derive dBm→mW per frame.
        sinr_margin_db: extra margin added to each rate's minimum SINR;
            raising it makes capture harder (more collision losses),
            lowering it makes overlapping transmissions survive more
            often.
    """

    noise_floor_dbm: float = NOISE_FLOOR_DBM
    sinr_margin_db: float = 0.0

    def __post_init__(self) -> None:
        # Cached conversions of the noise floor.  ``_noise_round_trip_dbm``
        # is ``mw_to_dbm(dbm_to_mw(noise))`` — NOT the noise floor itself
        # (the round trip is a ULP off) — so the interference-free fast
        # path in :meth:`sinr` returns bit-identical values to the full
        # ``sinr_db`` formula with ``interference_mw == 0``.
        self._noise_mw = dbm_to_mw(self.noise_floor_dbm)
        self._noise_round_trip_dbm = mw_to_dbm(self._noise_mw)

    def decodable(
        self,
        signal_dbm: float,
        interference_mw: float,
        rate: PhyRate,
    ) -> bool:
        """Whether a frame survives the worst overlapping interference."""
        if signal_dbm < rate.rx_sensitivity_dbm:
            return False
        return self.sinr(signal_dbm, interference_mw) >= rate.min_sinr_db + self.sinr_margin_db

    def sinr(self, signal_dbm: float, interference_mw: float) -> float:
        """Convenience accessor for the SINR under this model's noise."""
        if interference_mw <= 0.0:
            # denom == noise exactly, so skip the log10 — same float as
            # ``sinr_db(signal, 0.0, noise_floor)``.
            return signal_dbm - self._noise_round_trip_dbm
        return signal_dbm - mw_to_dbm(self._noise_mw + interference_mw)
