"""802.11b/g PHY rates, preamble timing and frame airtime computation.

The paper evaluates its model at the 1 Mb/s (DSSS/BPSK) and 11 Mb/s (CCK)
data rates of an 802.11g radio operating in the 2.4 GHz band with long
preambles and RTS/CTS disabled.  This module encodes those rates, their
receiver sensitivity and required SINR, and provides the airtime of a
frame of a given size at a given rate (PLCP preamble + header + payload).
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: PLCP long preamble duration in seconds (144 bits at 1 Mb/s).
PLCP_PREAMBLE_S = 144e-6
#: PLCP header duration in seconds (48 bits at 1 Mb/s, long preamble format).
PLCP_HEADER_S = 48e-6
#: Total physical-layer overhead per frame for DSSS/CCK long preamble.
PHY_OVERHEAD_S = PLCP_PREAMBLE_S + PLCP_HEADER_S


@dataclass(frozen=True)
class PhyRate:
    """A single 802.11 modulation/data-rate option.

    Attributes:
        bps: data rate in bits per second.
        name: human-readable label, e.g. ``"11Mbps"``.
        min_sinr_db: SINR (dB) required to decode a frame in the presence
            of interference (capture threshold).
        rx_sensitivity_dbm: minimum received signal power (dBm) for the
            frame to be decodable at all in the absence of interference.
        base_ber: residual bit error rate at high SNR.  Links whose SNR
            sits near the sensitivity threshold experience a higher BER
            (see :mod:`repro.phy.error_models`).
    """

    bps: float
    name: str
    min_sinr_db: float
    rx_sensitivity_dbm: float
    base_ber: float = 1e-7

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


RATE_1MBPS = PhyRate(bps=1e6, name="1Mbps", min_sinr_db=4.0, rx_sensitivity_dbm=-94.0)
RATE_2MBPS = PhyRate(bps=2e6, name="2Mbps", min_sinr_db=6.0, rx_sensitivity_dbm=-91.0)
RATE_5_5MBPS = PhyRate(bps=5.5e6, name="5.5Mbps", min_sinr_db=8.0, rx_sensitivity_dbm=-87.0)
RATE_11MBPS = PhyRate(bps=11e6, name="11Mbps", min_sinr_db=10.0, rx_sensitivity_dbm=-82.0)

#: All supported rates indexed by their nominal bit rate in Mb/s.
RATE_TABLE = {
    1: RATE_1MBPS,
    2: RATE_2MBPS,
    5.5: RATE_5_5MBPS,
    11: RATE_11MBPS,
}


def rate_from_mbps(mbps: float) -> PhyRate:
    """Look up a :class:`PhyRate` by its nominal rate in Mb/s.

    Raises:
        KeyError: if the rate is not one of the supported 802.11b rates.
    """
    if mbps not in RATE_TABLE:
        raise KeyError(
            f"unsupported PHY rate {mbps} Mb/s; supported: {sorted(RATE_TABLE)}"
        )
    return RATE_TABLE[mbps]


def frame_airtime(payload_bytes: int, rate: PhyRate) -> float:
    """Airtime in seconds of a frame carrying ``payload_bytes`` MAC bytes.

    ``payload_bytes`` is the full MAC frame size (MAC header + payload +
    FCS); the PLCP preamble and header are added on top at the 1 Mb/s
    basic rate, matching the long-preamble DSSS/CCK format used by the
    testbed in the paper.
    """
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be non-negative")
    return PHY_OVERHEAD_S + (payload_bytes * 8) / rate.bps


@dataclass
class RadioConfig:
    """Static radio configuration shared by all nodes of a mesh.

    Attributes:
        tx_power_dbm: transmit power.  The paper fixes 19 dBm for all
            nodes.
        cs_threshold_dbm: energy level above which the medium is sensed
            busy (physical carrier sensing).
        antenna_gain_dbi: omni antenna gain applied at both ends.
        data_rate: default modulation rate for DATA frames.
        basic_rate: rate used for control/broadcast frames (ACK emulation
            probes, 802.11 ACKs).
    """

    tx_power_dbm: float = 19.0
    cs_threshold_dbm: float = -91.0
    antenna_gain_dbi: float = 5.0
    data_rate: PhyRate = field(default_factory=lambda: RATE_11MBPS)
    basic_rate: PhyRate = field(default_factory=lambda: RATE_1MBPS)

    @property
    def eirp_dbm(self) -> float:
        """Effective isotropic radiated power (single antenna gain)."""
        return self.tx_power_dbm + self.antenna_gain_dbi
