"""Channel (non-collision) packet error models.

The paper distinguishes two loss processes on a link:

* *collision losses*, caused by overlapping transmissions, which the MAC
  cannot always recover and which the channel-loss estimator of Section
  5.3 must filter out; and
* *channel losses*, caused by marginal links (low SNR, fading), which are
  independent across packets for the majority of links (observation (iii)
  in Section 5.3).

The simulator's medium handles collisions through the SINR capture model;
this module supplies the residual, independent channel error process.
Error probabilities scale with frame length, so ACK-sized probes see a
lower loss rate than DATA-sized probes, exactly as in the testbed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.phy.radio import PhyRate


class ErrorModel:
    """Interface: per-frame channel error probability for a link."""

    def packet_error_probability(
        self, snr_db: float, rate: PhyRate, frame_bytes: int
    ) -> float:
        raise NotImplementedError


@dataclass
class FixedPacketErrorModel(ErrorModel):
    """A constant per-packet error probability, independent of SNR.

    Useful for unit tests and for constructing links with a prescribed
    channel loss rate (ground truth for the loss-estimator experiments).
    """

    per: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.per <= 1.0:
            raise ValueError("packet error probability must lie in [0, 1]")

    def packet_error_probability(
        self, snr_db: float, rate: PhyRate, frame_bytes: int
    ) -> float:
        return self.per


@dataclass
class SnrThresholdErrorModel(ErrorModel):
    """Hard SNR threshold: perfect above sensitivity, lost below.

    The simplest possible model; used when experiments want to isolate
    collision behaviour from channel noise.
    """

    def packet_error_probability(
        self, snr_db: float, rate: PhyRate, frame_bytes: int
    ) -> float:
        required = rate.min_sinr_db
        return 0.0 if snr_db >= required else 1.0


@dataclass
class BerPacketErrorModel(ErrorModel):
    """Smooth BER-derived packet error model.

    The bit error rate decays exponentially with the SNR margin above the
    modulation's requirement, floored at the rate's residual BER:

    ``BER(snr) = 0.5 * exp(-k * (snr - snr_req))`` clipped to
    ``[base_ber, 0.5]``, and ``PER = 1 - (1 - BER)^(8 * bytes)``.

    This produces the qualitative behaviour the paper relies on: strong
    links are essentially loss free, marginal links have channel loss
    rates anywhere between a few percent and tens of percent, and longer
    frames lose more often than short ones.  The default decay gives the
    steep PER-vs-SNR transition (a few dB wide) typical of DSSS/CCK
    receivers, so interference more than ~10-15 dB below the signal does
    not corrupt frames.
    """

    decay_per_db: float = 2.2
    min_ber: float = 1e-8
    max_ber: float = 0.5
    reference_snr_offset_db: float = 0.0
    _cache: dict[tuple[float, float, int], float] = field(default_factory=dict, repr=False)

    def bit_error_rate(self, snr_db: float, rate: PhyRate) -> float:
        """Bit error rate at the given SNR for the given modulation."""
        margin = snr_db - (rate.min_sinr_db + self.reference_snr_offset_db)
        ber = 0.5 * math.exp(-self.decay_per_db * margin)
        return min(self.max_ber, max(self.min_ber, max(ber, rate.base_ber)))

    def packet_error_probability(
        self, snr_db: float, rate: PhyRate, frame_bytes: int
    ) -> float:
        key = (round(snr_db, 3), rate.bps, frame_bytes)
        if key not in self._cache:
            ber = self.bit_error_rate(snr_db, rate)
            bits = 8 * max(frame_bytes, 1)
            if ber >= self.max_ber:
                per = 1.0
            else:
                per = 1.0 - (1.0 - ber) ** bits
            self._cache[key] = min(1.0, max(0.0, per))
        return self._cache[key]
