"""Physical-layer substrate for the 802.11 mesh simulator.

This subpackage models everything below the MAC: transmit rates and
preamble formats of 802.11b/g, radio propagation (log-distance path loss
with deterministic per-link shadowing), thermal noise, SINR computation,
the capture effect, and bit/packet error models.

The PHY abstraction is intentionally compact: the MAC and the online
optimization layers above only need per-link received powers, carrier
sense decisions, SINR-based capture outcomes, and per-link residual
channel error rates.  Those are exactly the quantities exposed here.
"""

from repro.phy.radio import (
    PhyRate,
    RATE_1MBPS,
    RATE_2MBPS,
    RATE_5_5MBPS,
    RATE_11MBPS,
    RATE_TABLE,
    RadioConfig,
    frame_airtime,
)
from repro.phy.propagation import (
    PropagationModel,
    LogDistancePathLoss,
    FreeSpacePathLoss,
    dbm_to_mw,
    mw_to_dbm,
)
from repro.phy.sinr import (
    NOISE_FLOOR_DBM,
    sinr_db,
    snr_db,
    CaptureModel,
)
from repro.phy.error_models import (
    ErrorModel,
    SnrThresholdErrorModel,
    BerPacketErrorModel,
    FixedPacketErrorModel,
)

__all__ = [
    "PhyRate",
    "RATE_1MBPS",
    "RATE_2MBPS",
    "RATE_5_5MBPS",
    "RATE_11MBPS",
    "RATE_TABLE",
    "RadioConfig",
    "frame_airtime",
    "PropagationModel",
    "LogDistancePathLoss",
    "FreeSpacePathLoss",
    "dbm_to_mw",
    "mw_to_dbm",
    "NOISE_FLOOR_DBM",
    "sinr_db",
    "snr_db",
    "CaptureModel",
    "ErrorModel",
    "SnrThresholdErrorModel",
    "BerPacketErrorModel",
    "FixedPacketErrorModel",
]
