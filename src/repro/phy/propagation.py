"""Radio propagation models.

The testbed of the paper mixes indoor and outdoor links across a parking
lot and three office buildings, producing "a rich variety of wireless
conditions".  We emulate that variety with a log-distance path-loss model
plus a deterministic, per-link log-normal shadowing term: each unordered
node pair receives a fixed shadowing offset drawn from a seeded RNG, so
link qualities are heterogeneous yet reproducible across runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


def dbm_to_mw(dbm: float) -> float:
    """Convert a power level from dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert a power level from milliwatts to dBm.

    Zero or negative powers map to ``-inf`` dBm rather than raising, so
    that "no signal" propagates naturally through power sums.
    """
    if mw <= 0.0:
        return float("-inf")
    return 10.0 * math.log10(mw)


class PropagationModel:
    """Interface for propagation models.

    A propagation model maps (tx position, rx position, link key) to a
    path loss in dB.  Implementations must be deterministic: the same
    inputs always yield the same loss, which keeps simulations
    reproducible and lets the medium cache per-link received powers.
    """

    def path_loss_db(self, distance_m: float, link_key: tuple[int, int] | None = None) -> float:
        raise NotImplementedError

    def received_power_dbm(
        self,
        tx_power_dbm: float,
        distance_m: float,
        link_key: tuple[int, int] | None = None,
    ) -> float:
        """Received power for a given transmit power and distance."""
        return tx_power_dbm - self.path_loss_db(distance_m, link_key)


@dataclass
class FreeSpacePathLoss(PropagationModel):
    """Free-space (Friis) path loss at 2.4 GHz.

    Mostly useful in unit tests where a clean, monotone distance/power
    relation is convenient.
    """

    frequency_hz: float = 2.437e9
    min_distance_m: float = 1.0

    def path_loss_db(self, distance_m: float, link_key: tuple[int, int] | None = None) -> float:
        d = max(distance_m, self.min_distance_m)
        # FSPL(dB) = 20 log10(d) + 20 log10(f) - 147.55
        return 20.0 * math.log10(d) + 20.0 * math.log10(self.frequency_hz) - 147.55


@dataclass
class LogDistancePathLoss(PropagationModel):
    """Log-distance path loss with deterministic per-link shadowing.

    ``PL(d) = PL(d0) + 10 n log10(d / d0) + X_link`` where ``X_link`` is a
    zero-mean Gaussian offset (std ``shadowing_sigma_db``) drawn once per
    unordered link from a seeded RNG.  Symmetric by construction, which
    matches the paper's use of bidirectional broadcast probing.

    Mobility semantics: the shadowing offset is keyed by the node *pair*,
    not by position, so when a position epoch moves nodes (see
    :class:`repro.sim.dynamics.DynamicsDriver`) only the distance term of
    the loss changes — the per-pair offset stays the constant drawn at
    first use.  That keeps incremental power-table rebuilds a pure
    function of (pair, distance), with no hidden draw order: recomputing
    a row mid-run yields the same loss a fresh medium at the new
    positions would compute.
    """

    exponent: float = 3.3
    reference_distance_m: float = 1.0
    reference_loss_db: float = 40.0
    shadowing_sigma_db: float = 6.0
    seed: int = 1
    min_distance_m: float = 1.0
    _shadowing_cache: dict[tuple[int, int], float] = field(default_factory=dict, repr=False)

    def _shadowing_db(self, link_key: tuple[int, int] | None) -> float:
        if link_key is None or self.shadowing_sigma_db <= 0.0:
            return 0.0
        key = (min(link_key), max(link_key))
        if key not in self._shadowing_cache:
            rng = np.random.default_rng((self.seed, key[0], key[1]))
            self._shadowing_cache[key] = float(rng.normal(0.0, self.shadowing_sigma_db))
        return self._shadowing_cache[key]

    def path_loss_db(self, distance_m: float, link_key: tuple[int, int] | None = None) -> float:
        d = max(distance_m, self.min_distance_m)
        loss = self.reference_loss_db + 10.0 * self.exponent * math.log10(
            d / self.reference_distance_m
        )
        return loss + self._shadowing_db(link_key)
