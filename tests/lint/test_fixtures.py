"""Fixture corpus meta-tests.

Every registered rule must ship at least one violating and one clean
fixture under ``tests/lint/fixtures/<CODE>/``, the violating fixture
must actually trip the rule, the clean one must not trip anything —
and the two historical bugs (PR 1 hash-seeding, PR 5 write-then-unlink
requeue) must stay caught by the *default* production config forever.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import LintConfig, all_rules, lint_paths
from repro.lint.rules import FileRule, ProjectRule

REPO = Path(__file__).resolve().parents[2]
FIXTURES = REPO / "tests" / "lint" / "fixtures"

RULE_CODES = sorted(rule.code for rule in all_rules())


def _fixture_entries(code: str, kind: str) -> list[Path]:
    root = FIXTURES / code
    return sorted(
        path
        for path in root.glob(f"{kind}*")
        if path.suffix == ".py" or path.is_dir()
    )


def _config_for(code: str, fixture: Path) -> LintConfig:
    if code == "RPL301":
        return LintConfig.unscoped(
            schema_fingerprint_path=str(fixture / "fingerprint.json")
        )
    return LintConfig.unscoped()


@pytest.mark.parametrize("code", RULE_CODES)
def test_every_rule_has_violating_and_clean_fixtures(code: str) -> None:
    assert _fixture_entries(code, "violation"), f"{code} has no violating fixture"
    assert _fixture_entries(code, "clean"), f"{code} has no clean fixture"


@pytest.mark.parametrize("code", RULE_CODES)
def test_violating_fixtures_trip_their_rule(code: str) -> None:
    for fixture in _fixture_entries(code, "violation"):
        report = lint_paths([fixture], _config_for(code, fixture))
        codes = {finding.code for finding in report.findings}
        assert code in codes, (
            f"{fixture} was expected to trip {code}, got {sorted(codes)}"
        )


@pytest.mark.parametrize("code", RULE_CODES)
def test_clean_fixtures_stay_clean(code: str) -> None:
    for fixture in _fixture_entries(code, "clean"):
        report = lint_paths([fixture], _config_for(code, fixture))
        assert report.findings == [], (
            f"{fixture} should be clean, got: "
            + "; ".join(f.render() for f in report.findings)
        )


def test_rule_registry_is_well_formed() -> None:
    rules = all_rules()
    assert rules, "no rules registered"
    for rule in rules:
        assert isinstance(rule, (FileRule, ProjectRule))
        assert rule.code.startswith("RPL") and rule.code[3:].isdigit()
        assert rule.name, f"{rule.code} has no name"
        assert rule.summary, f"{rule.code} has no summary"


class TestHistoricalBugCorpus:
    """The two bugs this repo actually shipped must trip the production
    CLI (default scoping, no test-only config) with a nonzero exit."""

    def _run_cli(self, *args: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", *args],
            cwd=REPO,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
        )

    def test_history_corpus_fails_the_default_config(self) -> None:
        result = self._run_cli(
            "tests/lint/fixtures/history", "--format", "json"
        )
        assert result.returncode == 1, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        by_code = payload["summary"]["by_code"]
        assert by_code.get("RPL101"), "PR 1 hash-seeding bug no longer caught"
        assert by_code.get("RPL202"), "PR 5 write-then-unlink no longer caught"

    def test_pr1_hash_seeding_is_rpl101(self) -> None:
        fixture = FIXTURES / "history" / "repro" / "pr1_hash_seeding.py"
        report = lint_paths([fixture], LintConfig.default())
        assert any(f.code == "RPL101" for f in report.findings)

    def test_pr5_requeue_race_is_rpl202(self) -> None:
        fixture = (
            FIXTURES / "history" / "repro" / "experiment" / "backends"
            / "pr5_requeue_race.py"
        )
        report = lint_paths([fixture], LintConfig.default())
        assert any(f.code == "RPL202" for f in report.findings)
