"""Lint-engine behavior: suppressions, scoping, output schema, exit codes."""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.lint import LintConfig, lint_paths
from repro.lint.config import path_matches, scope_path
from repro.lint.engine import PARSE_ERROR_CODE

REPO = Path(__file__).resolve().parents[2]

HASH_VIOLATION = "def key(name):\n    return hash(name)\n"


def _write(tmp_path: Path, relative: str, source: str) -> Path:
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def _cli(*args: str, cwd: Path = REPO) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
    )


class TestSuppressions:
    def test_line_suppression_silences_the_line(self, tmp_path: Path) -> None:
        path = _write(
            tmp_path,
            "mod.py",
            """
            def key(name):
                return hash(name)  # repro-lint: disable=RPL101
            """,
        )
        assert lint_paths([path], LintConfig.unscoped()).findings == []

    def test_line_suppression_is_code_specific(self, tmp_path: Path) -> None:
        path = _write(
            tmp_path,
            "mod.py",
            """
            def key(name):
                return hash(name)  # repro-lint: disable=RPL999
            """,
        )
        report = lint_paths([path], LintConfig.unscoped())
        assert [f.code for f in report.findings] == ["RPL101"]

    def test_line_suppression_only_covers_its_line(self, tmp_path: Path) -> None:
        path = _write(
            tmp_path,
            "mod.py",
            """
            def key(name):
                a = hash(name)  # repro-lint: disable=RPL101
                return hash(a)
            """,
        )
        report = lint_paths([path], LintConfig.unscoped())
        assert len(report.findings) == 1
        assert report.findings[0].line == 4

    def test_file_wide_suppression(self, tmp_path: Path) -> None:
        path = _write(
            tmp_path,
            "mod.py",
            """
            # repro-lint: disable-file=RPL101
            def key(name):
                return hash(name)

            def other(name):
                return hash(name)
            """,
        )
        assert lint_paths([path], LintConfig.unscoped()).findings == []

    def test_disable_all_wildcard(self, tmp_path: Path) -> None:
        path = _write(
            tmp_path,
            "mod.py",
            """
            import os

            def names(d):
                return [n for n in os.listdir(d)]  # repro-lint: disable=all
            """,
        )
        assert lint_paths([path], LintConfig.unscoped()).findings == []

    def test_multiple_codes_one_comment(self, tmp_path: Path) -> None:
        path = _write(
            tmp_path,
            "mod.py",
            """
            import os

            def first(d):
                for n in set(os.listdir(d)):  # repro-lint: disable=RPL101, RPL105
                    return n
            """,
        )
        assert lint_paths([path], LintConfig.unscoped()).findings == []


class TestScoping:
    def test_path_matches_patterns(self) -> None:
        assert path_matches("**", "anything/at/all.py")
        assert path_matches("repro/sim/**", "repro/sim/network.py")
        assert path_matches("repro/sim/**", "repro/sim/sub/deep.py")
        assert not path_matches("repro/sim/**", "repro/mac/dcf.py")
        assert path_matches("repro/engine.py", "repro/engine.py")
        assert not path_matches("repro/engine.py", "repro/engine_extra.py")

    def test_scope_path_anchors_at_repro_segment(self) -> None:
        parts = ("/", "home", "x", "src", "repro", "sim", "network.py")
        assert scope_path(parts, "fallback") == "repro/sim/network.py"
        assert scope_path(("a", "b.py"), "b.py") == "b.py"

    def test_rule_only_fires_inside_its_scope(self, tmp_path: Path) -> None:
        wall_clock = """
        import time

        def stamp():
            return time.time()
        """
        _write(tmp_path, "repro/sim/clock.py", wall_clock)
        _write(tmp_path, "repro/experiment/batch_timing.py", wall_clock)
        report = lint_paths([tmp_path], LintConfig.default())
        findings = [f for f in report.findings if f.code == "RPL104"]
        assert len(findings) == 1
        assert "repro/sim/clock.py" in findings[0].path.replace("\\", "/")

    def test_excludes_beat_includes(self, tmp_path: Path) -> None:
        path = _write(tmp_path, "repro/sim/clock.py", "import time\nt = time.time()\n")
        config = LintConfig(
            rule_scopes={"RPL104": ("repro/sim/**",)},
            rule_excludes={"RPL104": ("repro/sim/clock.py",)},
        )
        assert lint_paths([path], config).findings == []

    def test_profiler_module_is_the_only_sim_wall_clock_carveout(
        self, tmp_path: Path
    ) -> None:
        """The production config sanctions exactly ``repro/sim/profile.py``
        for wall-clock reads (the engine's profiler hook); the same code
        anywhere else in the sim layers still fires RPL104."""
        wall_clock = """
        from time import perf_counter

        def clock():
            return perf_counter()
        """
        _write(tmp_path, "repro/sim/profile.py", wall_clock)
        _write(tmp_path, "repro/sim/other.py", wall_clock)
        _write(tmp_path, "repro/engine.py", wall_clock)
        report = lint_paths([tmp_path], LintConfig.default())
        flagged = sorted(
            f.path.replace("\\", "/").split("repro/", 1)[1]
            for f in report.findings
            if f.code == "RPL104"
        )
        assert flagged == ["engine.py", "sim/other.py"]

    def test_profiler_carveout_applies_via_config(self) -> None:
        config = LintConfig.default()
        assert not config.applies("RPL104", "repro/sim/profile.py")
        assert config.applies("RPL104", "repro/sim/network.py")
        assert config.applies("RPL104", "repro/engine.py")

    def test_broker_store_is_inside_the_atomic_io_scope(self) -> None:
        """The durability store is exactly the code RPL201/202/203 exist
        for: it must be in scope with zero suppressions, and its one
        deletion site (checkpoint compaction) must be a *blessed*
        helper, not an ad-hoc carveout of the rule."""
        config = LintConfig.default()
        store = "repro/experiment/broker_store.py"
        assert config.applies("RPL201", store)
        assert config.applies("RPL202", store)
        assert config.applies("RPL203", store)
        assert "_retire_journals" in config.blessed_unlink_functions

    def test_scheduler_is_inside_the_determinism_scope(self) -> None:
        """The calendar/heap scheduler is the engine's event store: it
        sits in the same determinism scope as ``repro/engine.py`` — a
        wall-clock read or unseeded RNG there would skew every
        simulation at once — and it earns that scope with zero
        suppressions and zero findings."""
        config = LintConfig.default()
        sched = "repro/scheduler.py"
        for code in ("RPL102", "RPL103", "RPL104"):
            assert config.applies(code, sched)
        source_path = REPO / "src" / "repro" / "scheduler.py"
        assert "repro-lint" not in source_path.read_text(encoding="utf-8")
        assert lint_paths([source_path], LintConfig.default()).findings == []

    def test_monitors_are_inside_the_determinism_scope(self) -> None:
        """Run-time monitors sample inside the event loop and their
        series land in experiment payloads, so the whole package sits in
        the determinism scope — wall clocks or unseeded RNG there would
        leak host noise into content-addressed results — and it earns
        that scope with zero suppressions and zero findings."""
        config = LintConfig.default()
        for module in (
            "repro/monitors/base.py",
            "repro/monitors/flows.py",
            "repro/monitors/__init__.py",
        ):
            for code in ("RPL102", "RPL103", "RPL104"):
                assert config.applies(code, module)
        package = REPO / "src" / "repro" / "monitors"
        sources = sorted(package.glob("*.py"))
        assert sources, "monitors package must exist"
        for source_path in sources:
            assert "repro-lint" not in source_path.read_text(encoding="utf-8")
        assert lint_paths(sources, LintConfig.default()).findings == []


class TestReportAndCli:
    def test_json_output_schema(self, tmp_path: Path) -> None:
        _write(tmp_path, "mod.py", HASH_VIOLATION)
        result = _cli(str(tmp_path), "--format", "json")
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        assert payload["summary"]["total"] == 1
        assert payload["summary"]["by_code"] == {"RPL101": 1}
        (finding,) = payload["findings"]
        assert set(finding) == {"path", "line", "col", "code", "message"}
        assert finding["code"] == "RPL101"
        assert finding["line"] == 2

    def test_exit_zero_on_clean_tree(self, tmp_path: Path) -> None:
        _write(tmp_path, "mod.py", "x = 1\n")
        result = _cli(str(tmp_path))
        assert result.returncode == 0
        assert "clean" in result.stdout

    def test_exit_two_on_missing_path(self) -> None:
        result = _cli("no/such/path")
        assert result.returncode == 2
        assert "error" in result.stderr

    def test_select_and_disable_filter_codes(self, tmp_path: Path) -> None:
        _write(
            tmp_path,
            "mod.py",
            """
            import os

            def key(name):
                return hash(name)

            def names(d):
                return [n for n in os.listdir(d)]
            """,
        )
        selected = _cli(str(tmp_path), "--select", "RPL101", "--format", "json")
        assert json.loads(selected.stdout)["summary"]["by_code"] == {"RPL101": 1}
        disabled = _cli(str(tmp_path), "--disable", "RPL101", "--format", "json")
        assert "RPL101" not in json.loads(disabled.stdout)["summary"]["by_code"]

    def test_rules_listing(self) -> None:
        result = _cli("--rules")
        assert result.returncode == 0
        for code in ("RPL101", "RPL105", "RPL201", "RPL301"):
            assert code in result.stdout

    def test_parse_error_is_a_finding(self, tmp_path: Path) -> None:
        _write(tmp_path, "broken.py", "def broken(:\n")
        report = lint_paths([tmp_path], LintConfig.unscoped())
        assert [f.code for f in report.findings] == [PARSE_ERROR_CODE]
        result = _cli(str(tmp_path))
        assert result.returncode == 1

    def test_findings_are_sorted_and_deduplicated(self, tmp_path: Path) -> None:
        _write(tmp_path, "b.py", HASH_VIOLATION)
        _write(tmp_path, "a.py", HASH_VIOLATION)
        report = lint_paths([tmp_path, tmp_path], LintConfig.unscoped())
        rendered = [f.render() for f in report.findings]
        assert rendered == sorted(rendered)
        assert len(report.findings) == 2  # double-scan does not double-report


class TestSrcTreeIsClean:
    """The acceptance gate, as a tier-1 test: the real tree lints clean
    under the production config."""

    def test_src_lints_clean(self) -> None:
        config = LintConfig(
            rule_scopes=LintConfig.default().rule_scopes,
            rule_excludes=LintConfig.default().rule_excludes,
            blessed_unlink_functions=LintConfig.default().blessed_unlink_functions,
            schema_fingerprint_path=str(
                REPO / "tests" / "experiment" / "golden"
                / "spec_schema_fingerprint.json"
            ),
        )
        report = lint_paths([REPO / "src"], config)
        assert report.findings == [], "\n".join(
            f.render() for f in report.findings
        )
