"""Violating fixture: unseeded RNGs and numpy's global-state API."""

import random

import numpy as np
from numpy.random import rand


def fresh_rng():
    return random.Random()  # seeded from OS entropy: unreproducible


def noise(n: int):
    np.random.seed(42)  # global state, shared across the whole process
    return np.random.normal(size=n)


def entropy_rng():
    return np.random.default_rng()  # no seed: OS entropy


def uniform_block(n: int):
    return rand(n)
