"""Clean fixture: explicit seeds and SeedSequence-derived streams."""

import random

import numpy as np
from numpy.random import SeedSequence, default_rng


def seeded_rng(seed: int) -> random.Random:
    return random.Random(seed)


def stream(seed: int, spawn_key: int) -> np.random.Generator:
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(spawn_key,))
    )


def direct(seed: int) -> np.random.Generator:
    return default_rng(SeedSequence(seed))
