"""Violating fixture: os.rename where os.replace semantics are required."""

import os
from pathlib import Path


def claim(task: Path, claimed: Path) -> None:
    os.rename(task, claimed)  # raises/races when the target exists


def publish(tmp: Path, target: Path) -> None:
    tmp.rename(target)
