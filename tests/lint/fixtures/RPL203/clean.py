"""Clean fixture: atomic-overwrite renames via os.replace."""

import os
from pathlib import Path


def claim(task: Path, claimed: Path) -> None:
    os.replace(task, claimed)


def publish(tmp: Path, target: Path) -> None:
    tmp.replace(target)
