"""RPL301 clean fixture: the recorded fingerprint next to this tree
matches these field sets at this ``SPEC_SCHEMA_VERSION``.
"""

from dataclasses import dataclass

SPEC_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class TopologySpec:
    kind: str = "chain"
    num_nodes: int = 3
    spacing_m: float = 60.0


@dataclass(frozen=True)
class ExperimentSpec:
    cycles: int = 1
    label: str = ""
