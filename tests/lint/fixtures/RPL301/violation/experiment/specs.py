"""RPL301 violating fixture: a field was added to the spec schema (the
``jitter_m`` knob) without bumping ``SPEC_SCHEMA_VERSION`` — the
recorded fingerprint next to this tree was taken before the field
existed, at the same version.
"""

from dataclasses import dataclass

SPEC_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class TopologySpec:
    kind: str = "chain"
    num_nodes: int = 3
    spacing_m: float = 60.0
    jitter_m: float = 6.0  # the un-versioned addition


@dataclass(frozen=True)
class ExperimentSpec:
    cycles: int = 1
    label: str = ""
