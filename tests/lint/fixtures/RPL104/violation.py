"""Violating fixture: host-clock reads inside simulation code."""

import time
from datetime import datetime
from time import perf_counter


def frame_timestamp() -> float:
    return time.time()  # host clock leaks into simulated state


def cycle_cost() -> float:
    start = perf_counter()
    return perf_counter() - start


def run_label() -> str:
    return datetime.now().isoformat()
