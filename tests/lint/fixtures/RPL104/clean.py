"""Clean fixture: virtual time comes from the simulator."""


class Simulator:
    def __init__(self) -> None:
        self.now = 0.0


def frame_timestamp(sim: Simulator) -> float:
    return sim.now


def deadline(sim: Simulator, timeout_s: float) -> float:
    return sim.now + timeout_s
