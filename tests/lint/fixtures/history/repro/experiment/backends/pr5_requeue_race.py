"""Regression corpus — the PR 5 write-then-unlink requeue race.

The original lease-repossession path wrote a *fresh* task file into
``tasks/`` and unlinked the expired claim afterwards.  A quick worker
could re-claim the freshly requeued task in between — its new claim
landing at exactly the old claimed path — and the trailing unlink then
destroyed the live claim, losing the task from every directory.  The
fix bumps the envelope in place and hands it over with one atomic
``os.replace``; deletion stays confined to the audited helpers.
``RPL202`` must flag the original pattern (an unlink in an unblessed
function) forever.
"""

import json
import os
from pathlib import Path

from repro.experiment.fsio import atomic_write_text


def requeue_expired(root: Path, entry_path: str, name: str, envelope: dict) -> None:
    # The bug as shipped: write a fresh task file, then unlink the claim.
    envelope["attempts"] = int(envelope.get("attempts", 0)) + 1
    atomic_write_text(root / "tasks" / name, json.dumps(envelope))
    os.unlink(entry_path)  # may delete a successor's brand-new claim
