"""Regression corpus — the PR 1 nondeterministic RNG-seeding bug.

The original ``Simulator.rng_stream`` derived per-component spawn keys
with builtin ``hash(name)``.  Python salts string hashes per process
(``PYTHONHASHSEED``), so every worker of a parallel batch run spawned a
*different* random stream for the same component and the same spec
produced different results across backends.  The fix (PR 1) switched to
``zlib.crc32``; ``RPL101`` must flag the original pattern forever.
"""

import numpy as np


def rng_spawn_key(name: str) -> int:
    # The bug as shipped: salted per process, different on every worker.
    return hash(name) & 0xFFFFFFFF


class Simulator:
    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: dict = {}

    def rng_stream(self, name: str) -> np.random.Generator:
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(
                np.random.SeedSequence(
                    entropy=self.seed, spawn_key=(rng_spawn_key(name),)
                )
            )
        return self._streams[name]
