"""Clean fixture: a private, seeded generator instance."""

from random import Random


def jitter_backoff(seed: int, slots: int) -> int:
    rng = Random(seed)
    return rng.randint(0, slots - 1)
