"""Violating fixture: the random module's process-global generator."""

import random
from random import shuffle


def jitter_backoff(slots: int) -> int:
    return random.randint(0, slots - 1)


def shuffled(items: list) -> list:
    out = list(items)
    shuffle(out)
    return out


random.seed(1234)  # seeding the global generator is still global state
