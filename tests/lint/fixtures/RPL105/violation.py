"""Violating fixture: unordered sources materialized into ordered output."""

import glob
import os
from pathlib import Path


def collect_names(queue_dir: str) -> list:
    return [name for name in os.listdir(queue_dir)]  # order is fs-dependent


def payload_paths(root: Path) -> list:
    return list(root.glob("*.json"))  # materialized unsorted


def first_member(items: list):
    for item in set(items):  # set order is salted per process
        return item


def write_manifest(root: Path, out) -> None:
    for entry in os.scandir(root):
        out.write(entry.name + "\n")  # manifest bytes differ run to run


def matching(pattern: str) -> tuple:
    return tuple(glob.glob(pattern))
