"""Clean fixture: sorted materialization and order-insensitive consumers."""

import os
from pathlib import Path


def collect_names(queue_dir: str) -> list:
    return sorted(os.listdir(queue_dir))


def payload_paths(root: Path) -> list:
    return sorted(root.glob("*.json"))


def candidates(tasks_dir: Path, match: str) -> list:
    # A generator over iterdir is fine when sorted() consumes it.
    return sorted(p for p in tasks_dir.iterdir() if p.name.startswith(match))


def present_names(results_dir: Path) -> set:
    # Building an unordered container from an unordered source is fine.
    return {entry.name for entry in os.scandir(results_dir)}


def depth(tasks_dir: Path, match: str) -> int:
    # Order-insensitive aggregation over an unordered source is fine.
    return sum(1 for entry in os.scandir(tasks_dir) if entry.name.startswith(match))


def total_size(root: Path) -> int:
    return sum(path.stat().st_size for path in root.glob("*.json"))
