"""Violating fixture: envelope deletion outside the blessed helpers."""

import os
from pathlib import Path


def drop_claim(claimed: Path) -> None:
    claimed.unlink()  # not a blessed repossession/collection helper


def tidy(results_dir: str, name: str) -> None:
    os.remove(os.path.join(results_dir, name))
