"""Clean fixture: deletion only inside blessed helpers, handover by rename."""

import os
from pathlib import Path


def requeue_expired_claims(root: Path, entry_path: str, name: str) -> None:
    # Blessed helper: repossession may drop a spent claim...
    os.unlink(entry_path)
    # ...and hands live ones back by atomic rename, never write+unlink.
    os.replace(entry_path, root / "tasks" / name)


def _scan_results(path: Path) -> None:
    path.unlink()  # blessed: the collector consumes result envelopes
