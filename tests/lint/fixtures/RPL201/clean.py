"""Clean fixture: envelope writes through the blessed atomic helper."""

import json
from pathlib import Path

from repro.experiment.fsio import atomic_write_text


def write_result(results_dir: Path, task_id: str, payload: dict) -> None:
    atomic_write_text(results_dir / f"{task_id}.json", json.dumps(payload))


def read_result(results_dir: Path, task_id: str) -> dict:
    # Reads need no blessing — atomic replace guarantees whole files.
    with open(results_dir / f"{task_id}.json", encoding="utf-8") as fh:
        return json.load(fh)


def append_log(log_path, line: str) -> None:
    # Append-only logs are streams, not envelopes: partial lines are
    # acceptable there and no reader parses them as JSON documents.
    with open(log_path, "ab") as fh:
        fh.write(line.encode("utf-8"))
