"""Violating fixture: non-atomic envelope writes in queue-protocol code."""

import json
from pathlib import Path


def write_result(results_dir: Path, task_id: str, payload: dict) -> None:
    # A reader polling results/ can observe this file half-written.
    with open(results_dir / f"{task_id}.json", "w", encoding="utf-8") as fh:
        json.dump(payload, fh)


def write_index(index_path: Path, index: dict) -> None:
    index_path.write_text(json.dumps(index))  # in-place overwrite


def append_envelope(path: str, line: str) -> None:
    with open(path + ".json", "a", encoding="utf-8") as fh:
        fh.write(line)
