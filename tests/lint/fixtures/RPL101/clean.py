"""Clean fixture: stable hashing, and hash() only where it belongs."""

import hashlib
import zlib


def rng_spawn_key(name: str) -> int:
    return zlib.crc32(name.encode("utf-8"))


def digest_of(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


class Key:
    def __init__(self, value: str) -> None:
        self.value = value

    def __hash__(self) -> int:
        # The one blessed site: objects must agree with == in-process.
        return hash(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Key) and other.value == self.value
