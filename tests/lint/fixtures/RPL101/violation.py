"""Violating fixture: builtin hash() outside __hash__."""


def rng_spawn_key(name: str) -> int:
    # Salted per process: two workers of one sweep disagree on the key.
    return hash(name) & 0xFFFFFFFF


def bucket_of(label: str, buckets: int) -> int:
    return hash(label) % buckets
