"""Calendar-queue / binary-heap scheduler equivalence.

The calendar queue exists for wall clock only: it must be impossible to
observe which scheduler a simulation ran on.  This suite pins that from
three directions:

* property tests drive both schedulers through the same randomized
  push/cancel/pop interleavings (times spanning bucket ties, window
  edges and the far spill tier) and assert identical pop sequences and
  identical raw/live accounting at every step;
* a Simulator-level workload (self-rescheduling callbacks that also
  cancel pending events) must dispatch in the same order under both
  kinds, through both the fused ``run_due`` path and the profiled
  ``pop_due`` path;
* the frozen sim-trace goldens must reproduce byte-for-byte under
  ``scheduler="heap"`` and ``scheduler="calendar"`` alike.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import SCHEDULER_ENV, Event, Simulator
from repro.scheduler import SCHEDULER_KINDS, make_scheduler

_GOLDEN_DIR = Path(__file__).resolve().parent / "sim" / "golden"


def _noop() -> None:
    return None


# --------------------------------------------------------------- properties
#: Delays mixing a continuum with exact grid points, so interleavings hit
#: same-time ties (seq must break them), bucket-width boundaries, the
#: 1 s window horizon, and the far spill tier beyond it.
_DELAYS = st.one_of(
    st.floats(min_value=0.0, max_value=3.0, allow_nan=False, allow_infinity=False),
    st.sampled_from([0.0, 2.0**-9, 2.0**-8, 0.5, 1.0 - 2.0**-9, 1.0, 1.5, 2.5]),
)


@settings(max_examples=200, deadline=None)
@given(st.data())
def test_random_interleavings_pop_identically(data) -> None:
    """Both schedulers, same operations, same observable behaviour.

    The driver respects the engine's contract: pushed times never
    precede the consumption frontier (the simulator clamps delays to be
    non-negative), and only queued, not-yet-popped events are cancelled.
    """
    heap = make_scheduler("heap")
    cal = make_scheduler("calendar")
    live: list[tuple[Event, Event]] = []  # queued, uncancelled pairs
    now = 0.0
    seq = 0
    for _ in range(data.draw(st.integers(min_value=10, max_value=120))):
        op = data.draw(st.sampled_from(["push", "push", "push", "cancel", "pop"]))
        if op == "push":
            seq += 1
            time = now + data.draw(_DELAYS)
            pair = (
                Event(time, seq, _noop, heap),
                Event(time, seq, _noop, cal),
            )
            heap.push(time, seq, pair[0])
            cal.push(time, seq, pair[1])
            live.append(pair)
        elif op == "cancel" and live:
            index = data.draw(st.integers(min_value=0, max_value=len(live) - 1))
            event_h, event_c = live.pop(index)
            event_h.cancel()
            event_c.cancel()
        else:
            limit = now + data.draw(_DELAYS)
            entry_h = heap.pop_due(limit)
            entry_c = cal.pop_due(limit)
            if entry_h is None:
                assert entry_c is None
                now = limit
            else:
                assert entry_c is not None
                assert (entry_h[0], entry_h[1]) == (entry_c[0], entry_c[1])
                assert entry_h[2].seq == entry_c[2].seq
                now = entry_h[0]
                live.remove((entry_h[2], entry_c[2]))
        # Raw and live accounting agree after every operation — the
        # compaction policy is shared, so even the cancelled-entry
        # bookkeeping must move in lockstep.
        assert len(heap) == len(cal)
        assert heap.live_count() == cal.live_count() == len(live)

    # Drain: the full remaining sequence matches, entry for entry.
    while True:
        entry_h = heap.pop_due(float("inf"))
        entry_c = cal.pop_due(float("inf"))
        if entry_h is None:
            assert entry_c is None
            break
        assert entry_c is not None
        assert (entry_h[0], entry_h[1]) == (entry_c[0], entry_c[1])
    assert len(heap) == len(cal) == 0


@settings(max_examples=60, deadline=None)
@given(
    kind=st.sampled_from(SCHEDULER_KINDS),
    delays=st.lists(_DELAYS, min_size=1, max_size=60),
)
def test_pop_order_is_time_seq_sorted(kind: str, delays: list[float]) -> None:
    """Each scheduler alone honours the kernel's total order exactly."""
    sched = make_scheduler(kind)
    expected = []
    for seq, delay in enumerate(delays, start=1):
        event = Event(delay, seq, _noop, sched)
        sched.push(delay, seq, event)
        expected.append((delay, seq))
    popped = []
    while (entry := sched.pop_due(float("inf"))) is not None:
        popped.append((entry[0], entry[1]))
    assert popped == sorted(expected)


# --------------------------------------------------------------- accounting
@pytest.mark.parametrize("kind", SCHEDULER_KINDS)
def test_cancel_is_idempotent(kind: str) -> None:
    sched = make_scheduler(kind)
    events = [Event(0.1 * seq, seq, _noop, sched) for seq in range(1, 4)]
    for event in events:
        sched.push(event.time, event.seq, event)
    events[1].cancel()
    events[1].cancel()  # double-cancel must not double-count
    assert sched.live_count() == 2
    drained = []
    while (entry := sched.pop_due(float("inf"))) is not None:
        drained.append(entry[1])
    assert drained == [1, 3]
    assert len(sched) == 0


@pytest.mark.parametrize("kind", SCHEDULER_KINDS)
def test_compaction_reclaims_dead_entries(kind: str) -> None:
    """Mass cancellation must shrink the raw structure (not just flag
    entries) and leave the survivors popping in exact order."""
    sched = make_scheduler(kind)
    events = []
    for seq in range(1, 401):
        # Spread across the current bucket, later buckets and (>1 s)
        # the calendar's far spill tier.
        time = (seq % 7) * 0.25
        event = Event(time, seq, _noop, sched)
        sched.push(time, seq, event)
        events.append(event)
    for event in events[:300]:
        event.cancel()
    assert sched.live_count() == 100
    assert len(sched) < 200, "compaction should have reclaimed dead entries"
    popped = []
    while (entry := sched.pop_due(float("inf"))) is not None:
        popped.append((entry[0], entry[1]))
    assert popped == sorted((event.time, event.seq) for event in events[300:])


# ---------------------------------------------------------- simulator level
def _drive_workload(kind: str, profiled: bool) -> tuple[list[tuple[str, int]], int, str]:
    """A seeded self-rescheduling workload with cancellations.

    Returns ``(dispatch log, processed event count, repr(final now))``.
    The RNG draws happen inside callbacks, so the log can only match
    across schedulers if the dispatch order matches exactly.
    """
    sim = Simulator(seed=5, scheduler=kind)
    if profiled:
        class _Profiler:
            clock = staticmethod(lambda: 0.0)

            def record(self, callback, elapsed_s: float) -> None:
                return None

        sim.profiler = _Profiler()
    rng = sim.rng_stream("workload")
    log: list[tuple[str, int]] = []
    pending: dict[int, Event] = {}
    counter = [0]

    def make_callback(ident: int):
        def callback() -> None:
            pending.pop(ident, None)
            log.append((repr(sim.now), ident))
            for _ in range(int(rng.integers(0, 3))):
                counter[0] += 1
                child = counter[0]
                scale = (0.0005, 0.02, 1.8)[int(rng.integers(0, 3))]
                delay = float(rng.random()) * scale
                pending[child] = sim.schedule(delay, make_callback(child))
            if pending and int(rng.integers(0, 4)) == 0:
                victim = list(pending)[int(rng.integers(0, len(pending)))]
                pending.pop(victim).cancel()

        return callback

    for _ in range(40):
        counter[0] += 1
        ident = counter[0]
        delay = float(rng.random()) * (0.01 if ident % 3 else 2.5)
        pending[ident] = sim.schedule(delay, make_callback(ident))
    sim.run_until(6.0)
    return log, sim.processed_events, repr(sim.now)


def test_simulator_workload_is_scheduler_invariant() -> None:
    runs = {
        (kind, profiled): _drive_workload(kind, profiled)
        for kind in SCHEDULER_KINDS
        for profiled in (False, True)
    }
    reference = runs[("calendar", False)]
    assert reference[0], "workload must actually dispatch events"
    for key, run in runs.items():
        assert run == reference, f"dispatch diverged under {key}"


# ------------------------------------------------------------- golden traces
def _load_golden_module():
    spec = importlib.util.spec_from_file_location(
        "sim_golden_regenerate_equivalence", _GOLDEN_DIR / "regenerate.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


golden = _load_golden_module()


@pytest.mark.parametrize("kind", SCHEDULER_KINDS)
@pytest.mark.parametrize("name", sorted(golden.GOLDEN_SCENARIOS))
def test_golden_traces_match_under_both_schedulers(
    name: str, kind: str, monkeypatch: pytest.MonkeyPatch
) -> None:
    """The frozen per-event digests reproduce under either queue — the
    scheduler choice is invisible at event granularity."""
    monkeypatch.setenv(SCHEDULER_ENV, kind)
    record, _ = golden.compute(name)
    frozen = golden.golden_path(name).read_text(encoding="utf-8")
    assert golden.canonical_json(record) == frozen, (
        f"sim trace {name!r} drifted under scheduler={kind!r}"
    )
