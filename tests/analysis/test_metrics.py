"""Tests for evaluation metrics and reporting helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    ExperimentReport,
    cdf_fraction_below,
    empirical_cdf,
    feasibility_ratio,
    format_cdf_summary,
    format_table,
    jain_fairness_index,
    relative_error,
    rmse,
    stability_deviations,
)


class TestJainIndex:
    def test_equal_allocation_is_one(self):
        assert jain_fairness_index([2.0, 2.0, 2.0]) == pytest.approx(1.0)

    def test_single_winner_is_one_over_n(self):
        assert jain_fairness_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_is_one(self):
        assert jain_fairness_index([0.0, 0.0]) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            jain_fairness_index([])
        with pytest.raises(ValueError):
            jain_fairness_index([-1.0, 1.0])

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=20))
    def test_bounds_property(self, values):
        index = jain_fairness_index(values)
        assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9


class TestErrorMetrics:
    def test_rmse(self):
        assert rmse([1.0, 2.0], [1.0, 4.0]) == pytest.approx(np.sqrt(2.0))

    def test_rmse_zero_for_identical(self):
        assert rmse([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_rmse_validation(self):
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            rmse([], [])

    def test_relative_error(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == float("inf")


class TestCdfHelpers:
    def test_empirical_cdf(self):
        xs, fractions = empirical_cdf([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert list(fractions) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_fraction_below(self):
        assert cdf_fraction_below([1, 2, 3, 4], 2.5) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])


class TestIsolationMetrics:
    def test_feasibility_ratio(self):
        assert feasibility_ratio(0.9e6, 1e6) == pytest.approx(0.9)
        assert feasibility_ratio(1.0, 0.0) == 1.0

    def test_stability_deviations(self):
        deviations = stability_deviations([1.0, 1.0, 1.0])
        assert deviations == [0.0, 0.0, 0.0]
        deviations = stability_deviations([0.5, 1.5])
        assert deviations == pytest.approx([0.5, 0.5])

    def test_stability_zero_mean(self):
        assert stability_deviations([0.0, 0.0]) == [0.0, 0.0]


class TestReporting:
    def test_format_table_contains_cells(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", "y"]], title="T")
        assert "T" in text
        assert "2.500" in text
        assert "x" in text

    def test_format_cdf_summary(self):
        text = format_cdf_summary("metric", [1.0, 2.0, 3.0])
        assert "metric" in text and "mean=" in text

    def test_experiment_report(self):
        report = ExperimentReport("Fig. X", "demo")
        report.add("line one")
        report.add_comparison("quantity", "1.0", "1.1")
        rendered = report.render()
        assert "Fig. X" in rendered and "paper=1.0" in rendered and "line one" in rendered
        # emit() writes to the real stdout (bypassing pytest capture); it
        # must not raise.
        report.emit()
