"""Golden-result fixtures: one frozen ExperimentResult per scenario.

This module is the single source of truth for the golden regression
suite: it defines the spec grid (one small experiment per registered
scenario), the canonical serialization, and the regeneration entry
point.  ``tests/experiment/test_golden.py`` imports it to re-run the
same specs and compare byte-for-byte against the committed JSON.

The fixtures freeze the *full simulation stack*: any change to the
engine, PHY/MAC/transport models, estimators, optimizer, or spec
semantics that alters results will fail the golden test.  When such a
change is intentional:

1. bump ``SPEC_SCHEMA_VERSION`` in ``repro/experiment/specs.py`` if the
   change invalidates cached results (it almost certainly does);
2. regenerate the fixtures::

       PYTHONPATH=src python tests/experiment/golden/regenerate.py

3. commit the refreshed JSON together with the change, and say in the
   commit message *why* the goldens moved.

Never regenerate to silence a failure you cannot explain — a moved
golden with no intentional semantics change is a determinism bug.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent

if __name__ == "__main__":  # running as a script from a source checkout
    _SRC = GOLDEN_DIR.parents[2] / "src"
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro import (  # noqa: E402
    ControllerSpec,
    ExperimentResult,
    ExperimentSpec,
    FlowSpec,
    ProbingSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    run_experiment,
)

#: One deliberately small experiment per registered scenario, plus extra
#: regression grids (multi-cycle controller convergence).  Keep these
#: cheap (a few seconds each at most): they run in every tier-1 pass.
GOLDEN_SPECS: dict[str, ExperimentSpec] = {
    "chain": ExperimentSpec(
        scenario=ScenarioSpec(
            scenario="chain",
            seed=2,
            flows=(FlowSpec("udp", (0, 1, 2)), FlowSpec("udp", (1, 2))),
        ),
        probing=ProbingSpec(warmup_s=5.0),
        controller=ControllerSpec(alpha=1.0, probing_window=40),
        cycles=1,
        cycle_measure_s=3.0,
        settle_s=0.5,
        label="golden-chain",
    ),
    "testbed": ExperimentSpec(
        scenario=ScenarioSpec(
            scenario="testbed", seed=3, flows=(FlowSpec("udp", (0, 1)),)
        ),
        controller=ControllerSpec(enabled=False),
        cycles=1,
        cycle_measure_s=3.0,
        settle_s=0.5,
        label="golden-testbed",
    ),
    "random_multiflow": ExperimentSpec(
        scenario=ScenarioSpec(
            scenario="random_multiflow",
            seed=5,
            num_flows=2,
            max_hops=3,
            rate_mode="11",
            transport="udp",
        ),
        probing=ProbingSpec(warmup_s=5.0),
        controller=ControllerSpec(alpha=1.0, probing_window=40),
        cycles=1,
        cycle_measure_s=3.0,
        settle_s=0.5,
        label="golden-random_multiflow",
    ),
    "starvation": ExperimentSpec(
        scenario=ScenarioSpec(scenario="starvation", seed=0, data_rate_mbps=1),
        probing=ProbingSpec(warmup_s=8.0),
        controller=ControllerSpec(alpha=1.0, probing_window=60),
        cycles=1,
        cycle_measure_s=5.0,
        settle_s=1.0,
        label="golden-starvation",
    ),
    # The declarative generator composition: grid topology x mixed
    # TCP/UDP workload, all randomness from named seed-derived streams.
    "generated": ExperimentSpec(
        scenario=ScenarioSpec(
            scenario="generated",
            seed=4,
            topology=TopologySpec(kind="grid", rows=2, cols=2, spacing_m=55.0),
            workload=WorkloadSpec(
                generator="mixed_tcp_udp", num_flows=2, max_hops=2, rate_bps=0.0
            ),
            rate_mode="11",
        ),
        probing=ProbingSpec(warmup_s=5.0),
        controller=ControllerSpec(alpha=1.0, probing_window=40),
        cycles=1,
        cycle_measure_s=3.0,
        settle_s=0.5,
        label="golden-generated",
    ),
    # Multi-cycle RC regression: freezes controller *convergence* across
    # optimizer cycles, not just the single-cycle outcome — every cycle's
    # targets and achieved rates are in the fixture.
    "chain_multicycle": ExperimentSpec(
        scenario=ScenarioSpec(
            scenario="chain",
            seed=2,
            flows=(FlowSpec("udp", (0, 1, 2)), FlowSpec("udp", (1, 2))),
        ),
        probing=ProbingSpec(warmup_s=5.0),
        controller=ControllerSpec(alpha=1.0, probing_window=40),
        cycles=3,
        cycle_measure_s=2.0,
        settle_s=0.5,
        label="golden-chain-multicycle",
    ),
}


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


def canonical_json(result: ExperimentResult) -> str:
    """The frozen byte representation: runtime excluded (host-dependent),
    keys sorted, trailing newline — so fixtures diff cleanly in git."""
    return (
        json.dumps(result.to_dict(include_runtime=False), indent=2, sort_keys=True)
        + "\n"
    )


def compute(name: str) -> str:
    """Run the golden experiment ``name`` and return its canonical JSON."""
    return canonical_json(
        run_experiment(GOLDEN_SPECS[name], keep_decisions=False, cache=False)
    )


def main() -> int:
    for name in GOLDEN_SPECS:
        path = golden_path(name)
        text = compute(name)
        changed = not path.exists() or path.read_text(encoding="utf-8") != text
        path.write_text(text, encoding="utf-8")
        print(f"{'rewrote' if changed else 'unchanged'}  {path.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
