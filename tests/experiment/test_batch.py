"""BatchRunner: seed sweeps, parallel/sequential equivalence, reports."""

from __future__ import annotations

import pytest

from repro.experiment import (
    BatchRunner,
    ControllerSpec,
    ExperimentSpec,
    FlowSpec,
    ProbingSpec,
    ScenarioSpec,
    seed_sweep,
)

BASE_SPEC = ExperimentSpec(
    scenario=ScenarioSpec(
        scenario="chain",
        seed=1,
        flows=(FlowSpec("udp", (0, 1, 2)), FlowSpec("udp", (1, 2))),
    ),
    probing=ProbingSpec(warmup_s=10.0),
    controller=ControllerSpec(alpha=1.0, probing_window=40),
    cycles=1,
    cycle_measure_s=4.0,
    settle_s=1.0,
    label="batch-smoke",
)


class TestSeedSweep:
    def test_sweep_re_seeds_each_spec(self):
        sweep = seed_sweep(BASE_SPEC, [3, 5, 8])
        assert [s.scenario.seed for s in sweep] == [3, 5, 8]
        assert all(s.scenario.run_seed is None for s in sweep)

    def test_stability_sweep_varies_only_run_seed(self):
        sweep = seed_sweep(BASE_SPEC, [100, 101], vary_topology=False)
        assert [s.scenario.seed for s in sweep] == [1, 1]
        assert [s.scenario.run_seed for s in sweep] == [100, 101]

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            BatchRunner([])


class TestExecution:
    @pytest.fixture(scope="class")
    def sweep(self):
        return seed_sweep(BASE_SPEC, range(4))

    # cache=False throughout: this class asserts on *which processes ran*,
    # which a warm REPRO_CACHE_DIR cache would legitimately change.
    # Backends are named explicitly so a REPRO_BATCH_BACKEND matrix run
    # cannot reroute what these tests deliberately pin down.
    @pytest.fixture(scope="class")
    def sequential(self, sweep):
        return BatchRunner(sweep, parallel=False, cache=False).run()

    def test_results_in_submission_order(self, sweep, sequential):
        assert [r.spec.scenario.seed for r in sequential] == [0, 1, 2, 3]
        assert len(sequential) == len(sweep)
        assert sequential.backend == "serial" and not sequential.parallel

    def test_parallel_matches_sequential_bit_for_bit(self, sweep, sequential):
        parallel = BatchRunner(
            sweep, backend="process", max_workers=2, cache=False
        ).run()
        assert parallel.parallel  # the pool genuinely engaged
        assert parallel.backend == "process"
        assert parallel.to_dicts(include_runtime=False) == sequential.to_dicts(
            include_runtime=False
        )

    def test_planner_stats_attached(self, sequential):
        stats = sequential.planner
        assert stats.total == stats.unique == stats.executed == 4
        assert stats.duplicates == 0 and stats.cache_hit_rate == 0.0

    def test_aggregations(self, sequential):
        aggregates = sequential.aggregate_throughputs_bps()
        assert len(aggregates) == 4 and all(a > 0 for a in aggregates)
        assert all(0.0 < j <= 1.0 for j in sequential.jain_indices())

    def test_report_renders_one_row_per_run(self, sequential):
        rendered = sequential.report("sweep").render()
        assert "aggregate kb/s" in rendered
        assert rendered.count("batch-smoke") == 4
