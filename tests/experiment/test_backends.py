"""Execution backends: resolution, the work-queue protocol, and the
cross-backend determinism guarantee the ROADMAP's distributed ambitions
rest on — serial, process-pool and work-queue sweeps of the same specs
must return byte-equal payloads, cold and cache-warm.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Mapping, Sequence

import pytest

from repro.experiment import (
    BackendError,
    BatchRunner,
    BrokerBackend,
    ExecutionBackend,
    ProcessPoolBackend,
    ResultCache,
    SerialBackend,
    WorkQueueBackend,
    backend_names,
    resolve_backend,
    run_spec_payload,
    seed_sweep,
)
from repro.experiment.backends import BACKEND_ENV_VAR, TASKS_DIR, ensure_queue_dirs
from repro.experiment.worker import claim_next_task, drain_queue

from _helpers import FAST_SPEC, canonical, strip_runtime as _strip_runtime


class RecordingBackend(SerialBackend):
    """Serial backend that records every payload it was asked to run."""

    def __init__(self) -> None:
        self.executed: list[dict[str, Any]] = []

    def run(self, payloads: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
        self.executed.extend(dict(p) for p in payloads)
        return super().run(payloads)


class TestResolution:
    def test_names(self):
        assert backend_names() == ["broker", "process", "serial", "work_queue"]

    def test_instance_passthrough(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_by_name(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        process = resolve_backend("process", max_workers=3)
        assert isinstance(process, ProcessPoolBackend)
        assert process.max_workers == 3
        queue = resolve_backend("work_queue", max_workers=2)
        assert isinstance(queue, WorkQueueBackend)
        assert queue.workers == 2
        broker = resolve_backend("broker", max_workers=2)
        assert isinstance(broker, BrokerBackend)
        assert broker.workers == 2

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("quantum")

    def test_default_is_process_pool(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert isinstance(resolve_backend(None), ProcessPoolBackend)

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "serial")
        assert isinstance(resolve_backend(None), SerialBackend)

    def test_parallel_false_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "work_queue")
        assert isinstance(resolve_backend(None, parallel=False), SerialBackend)

    def test_workers_for(self, tmp_path):
        assert SerialBackend().workers_for(8) == 1
        assert ProcessPoolBackend(max_workers=4).workers_for(8) == 4
        assert ProcessPoolBackend(max_workers=4).workers_for(1) == 1
        assert WorkQueueBackend(workers=2).workers_for(8) == 2
        # External drain: parallelism is the remote fleet's, unknown here.
        assert WorkQueueBackend(tmp_path, workers=0).workers_for(8) == 1

    def test_external_drain_requires_a_visible_queue(self, monkeypatch):
        with pytest.raises(ValueError, match="external drain"):
            WorkQueueBackend(workers=0)
        monkeypatch.delenv("REPRO_BROKER_URL", raising=False)
        with pytest.raises(ValueError, match="external drain"):
            BrokerBackend(workers=0)
        # With a discoverable broker URL, external drain is legitimate.
        monkeypatch.setenv("REPRO_BROKER_URL", "http://example:8123")
        assert BrokerBackend(workers=0).workers_for(8) == 1

    def test_empty_submission_is_a_noop(self):
        assert SerialBackend().run([]) == []
        assert ProcessPoolBackend().run([]) == []
        assert WorkQueueBackend(workers=1).run([]) == []


class TestWorkQueueProtocol:
    """The file protocol itself, drained in-process (no subprocesses)."""

    def test_claim_is_exclusive_and_ordered(self, tmp_path):
        root = ensure_queue_dirs(tmp_path)
        for task_id in ("b-00001", "a-00000"):
            (root / TASKS_DIR / f"{task_id}.json").write_text(
                json.dumps({"id": task_id, "spec": {}}), encoding="utf-8"
            )
        first = claim_next_task(root)
        assert first is not None and first.stem == "a-00000"  # oldest name first
        assert not (root / TASKS_DIR / "a-00000.json").exists()
        second = claim_next_task(root)
        assert second is not None and second.stem == "b-00001"
        assert claim_next_task(root) is None

    def test_claim_respects_match_prefix(self, tmp_path):
        """A submitter's own drainers must leave other submissions'
        tasks alone, or terminating them could kill foreign work."""
        root = ensure_queue_dirs(tmp_path)
        for task_id in ("mine-00000", "theirs-00000"):
            (root / TASKS_DIR / f"{task_id}.json").write_text(
                json.dumps({"id": task_id, "spec": {}}), encoding="utf-8"
            )
        claimed = claim_next_task(root, match="mine-")
        assert claimed is not None and claimed.stem == "mine-00000"
        assert claim_next_task(root, match="mine-") is None
        assert (root / TASKS_DIR / "theirs-00000.json").exists()

    def test_drain_executes_and_writes_result(self, tmp_path):
        root = ensure_queue_dirs(tmp_path)
        payload = FAST_SPEC.to_dict()
        (root / TASKS_DIR / "t-00000.json").write_text(
            json.dumps({"id": "t-00000", "spec": payload}), encoding="utf-8"
        )
        assert drain_queue(root, exit_when_empty=True) == 1
        envelope = json.loads(
            (root / "results" / "t-00000.json").read_text(encoding="utf-8")
        )
        assert envelope["id"] == "t-00000"
        expected = run_spec_payload(payload)
        assert (
            canonical([_strip_runtime(envelope["result"])])
            == canonical([_strip_runtime(expected)])
        )

    def test_drain_reports_bad_spec_as_error_envelope(self, tmp_path):
        root = ensure_queue_dirs(tmp_path)
        (root / TASKS_DIR / "t-00000.json").write_text(
            json.dumps({"id": "t-00000", "spec": {"not": "a spec"}}),
            encoding="utf-8",
        )
        assert drain_queue(root, exit_when_empty=True) == 1
        envelope = json.loads(
            (root / "results" / "t-00000.json").read_text(encoding="utf-8")
        )
        assert "SpecError" in envelope["error"]

    def test_drain_writes_back_to_shared_cache(self, tmp_path):
        root = ensure_queue_dirs(tmp_path / "queue")
        cache = ResultCache(tmp_path / "store")
        payload = FAST_SPEC.to_dict()
        (root / TASKS_DIR / "t-00000.json").write_text(
            json.dumps({"id": "t-00000", "spec": payload}), encoding="utf-8"
        )
        assert drain_queue(root, exit_when_empty=True, cache=cache) == 1
        shared = ResultCache(tmp_path / "store")  # a different handle
        assert shared.get_payload(payload) is not None

    def test_stale_orphan_results_are_reaped(self, tmp_path):
        """Results abandoned by a timed-out submission are collected by
        the next submission sharing the directory."""
        root = ensure_queue_dirs(tmp_path / "queue")
        orphan = root / "results" / "dead-00000.json"
        fresh = root / "results" / "live-00000.json"
        for path in (orphan, fresh):
            path.write_text("{}", encoding="utf-8")
        ancient = time.time() - 30 * 24 * 3600  # far past the week horizon
        os.utime(orphan, (ancient, ancient))
        backend = WorkQueueBackend(tmp_path / "queue", workers=1, timeout_s=60.0)
        backend.run([FAST_SPEC.to_dict()])
        # Reaped past the fixed one-week horizon (_STALE_RESULT_S —
        # deliberately independent of timeout_s, see _reap_stale_results).
        assert not orphan.exists()
        assert fresh.exists()  # could belong to a live submission: kept
        fresh.unlink()

    def test_backend_surfaces_worker_failure(self, tmp_path):
        backend = WorkQueueBackend(tmp_path / "queue", workers=1, timeout_s=60.0)
        with pytest.raises(BackendError, match="SpecError"):
            backend.run([{"cycles": -1}, FAST_SPEC.to_dict()])
        # The failed submission withdrew its leftovers: a shared queue's
        # external workers must not burn compute on an abandoned sweep.
        assert not any((tmp_path / "queue" / TASKS_DIR).iterdir())
        assert not any((tmp_path / "queue" / "results").iterdir())


class TestCrossBackendDeterminism:
    """The acceptance bar: identical payloads from every backend,
    cold and cache-warm, with duplicated specs simulated exactly once."""

    @pytest.fixture(scope="class")
    def sweep(self):
        # Three unique cells plus a duplicate of the first.
        sweep = seed_sweep(FAST_SPEC, range(3))
        return sweep + [FAST_SPEC.with_seed(0)]

    @pytest.fixture(scope="class")
    def reference(self, sweep):
        return BatchRunner(sweep, backend=SerialBackend(), cache=False).run()

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "backend_name", ["serial", "process", "work_queue", "broker"]
    )
    def test_cold_and_warm_runs_are_byte_equal(
        self, backend_name, sweep, reference, tmp_path
    ):
        def make_backend():
            if backend_name == "process":
                return ProcessPoolBackend(max_workers=2)
            if backend_name == "work_queue":
                return WorkQueueBackend(tmp_path / "queue", workers=2)
            if backend_name == "broker":
                return BrokerBackend(workers=2)
            return SerialBackend()

        cache = ResultCache(tmp_path / "cache")
        cold = BatchRunner(sweep, backend=make_backend(), cache=cache).run()
        warm = BatchRunner(sweep, backend=make_backend(), cache=cache).run()

        expected = canonical(reference.to_dicts(include_runtime=False))
        assert canonical(cold.to_dicts(include_runtime=False)) == expected
        assert canonical(warm.to_dicts(include_runtime=False)) == expected
        # Warm runs replay the exact cold payloads, runtime block included.
        assert canonical(warm.to_dicts()) == canonical(cold.to_dicts())
        assert cold.backend == backend_name == warm.backend
        assert (cold.cache_hits, cold.cache_misses) == (0, len(sweep))
        assert (warm.cache_hits, warm.cache_misses) == (len(sweep), 0)
        # Dedup: 4 submitted cells, 3 unique — one simulation per unique
        # spec (cold), zero dispatches at all when warm.
        assert cold.planner.executed == 3 and cold.planner.duplicates == 1
        assert warm.planner.executed == 0
        assert cache.stats.puts == 3

    def test_duplicated_specs_never_reach_the_backend_twice(self, sweep):
        recorder = RecordingBackend()
        result = BatchRunner(sweep, backend=recorder, cache=False).run()
        assert len(result) == len(sweep) == 4
        assert len(recorder.executed) == 3
        digests = {json.dumps(p, sort_keys=True) for p in recorder.executed}
        assert len(digests) == 3
        # The duplicate slots received equal results all the same.
        dicts = result.to_dicts(include_runtime=False)
        assert dicts[0] == dicts[3]

    def test_backend_results_scatter_in_submission_order(self, sweep):
        result = BatchRunner(sweep, backend=SerialBackend(), cache=False).run()
        assert [r.spec.scenario.seed for r in result] == [0, 1, 2, 0]


class TestBatchRunnerIntegration:
    def test_custom_backend_instance(self):
        recorder = RecordingBackend()
        batch = BatchRunner([FAST_SPEC], backend=recorder, cache=False).run()
        assert batch.backend == "serial" and not batch.parallel
        assert len(recorder.executed) == 1

    def test_env_var_drives_default_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "serial")
        batch = BatchRunner([FAST_SPEC], cache=False).run()
        assert batch.backend == "serial"

    def test_cold_sweep_through_the_ambient_default_backend(self):
        """Deliberately does NOT pin a backend or touch the environment:
        under the CI backend matrix (REPRO_BATCH_BACKEND exported) this
        cold sweep genuinely dispatches jobs through each backend and
        must still match the serial reference bit for bit."""
        sweep = seed_sweep(FAST_SPEC, range(2))
        ambient = BatchRunner(sweep, cache=False).run()
        reference = BatchRunner(sweep, backend="serial", cache=False).run()
        expected = os.environ.get(BACKEND_ENV_VAR) or "process"
        assert ambient.backend == expected
        assert ambient.planner.executed == 2
        assert canonical(ambient.to_dicts(include_runtime=False)) == canonical(
            reference.to_dicts(include_runtime=False)
        )

    def test_short_returning_backend_is_named_in_the_error(self):
        class Truncating(SerialBackend):
            def run(self, payloads):
                return super().run(payloads)[:-1]

        with pytest.raises(BackendError, match="'serial' returned 1"):
            BatchRunner(
                seed_sweep(FAST_SPEC, range(2)), backend=Truncating(), cache=False
            ).run()

    def test_isinstance_of_abc(self):
        for name in backend_names():
            assert isinstance(resolve_backend(name), ExecutionBackend)
        assert not isinstance(object(), ExecutionBackend)

    def test_worker_subprocess_env_and_cli(self, tmp_path):
        """End-to-end: backend spawns real `python -m repro.experiment.worker`
        subprocesses that must import repro from this checkout."""
        backend = WorkQueueBackend(tmp_path / "queue", workers=1)
        payload = FAST_SPEC.to_dict()
        results = backend.run([payload])
        assert _strip_runtime(results[0]) == _strip_runtime(run_spec_payload(payload))
        # The queue directory is left reusable: no stale tasks or results.
        assert not any((tmp_path / "queue" / TASKS_DIR).iterdir())
        assert not any((tmp_path / "queue" / "results").iterdir())
        assert os.path.isdir(tmp_path / "queue" / "claimed")
